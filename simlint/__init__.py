"""Launcher shim: the real package lives in ``tools/simlint/``.

``python -m simlint ...`` resolves modules from the current directory,
so this one-file package at the repo root redirects the import system to
``tools/simlint`` — letting the linter run from a fresh checkout with no
``PYTHONPATH`` setup (the tier-1 test command only adds ``src``).  All
submodules (``simlint.cli``, ``simlint.rules``, ``simlint.__main__``)
load from ``tools/simlint`` through the rewritten ``__path__``.
"""

from pathlib import Path as _Path

__path__ = [str(_Path(__file__).resolve().parent.parent / "tools" / "simlint")]

from simlint.engine import (  # noqa: E402
    DEFAULT_EXCLUDES,
    LintFinding,
    lint_file,
    lint_paths,
    lint_source,
)
from simlint.rules import RULE_REGISTRY, default_rules  # noqa: E402

__all__ = [
    "DEFAULT_EXCLUDES",
    "LintFinding",
    "RULE_REGISTRY",
    "default_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
]

__version__ = "1.0.0"
