"""Launcher shim: the real package lives in ``tools/simlint/``.

``python -m simlint ...`` resolves modules from the current directory,
so this one-file package at the repo root redirects the import system to
``tools/simlint`` — letting the linter run from a fresh checkout with no
``PYTHONPATH`` setup (the tier-1 test command only adds ``src``).  All
submodules (``simlint.cli``, ``simlint.rules``, ``simlint.project``,
``simlint.__main__``) load from ``tools/simlint`` through the rewritten
``__path__``.
"""

from pathlib import Path as _Path

__path__ = [str(_Path(__file__).resolve().parent.parent / "tools" / "simlint")]

from simlint.cache import LintCache, compute_salt  # noqa: E402
from simlint.config import (  # noqa: E402
    SimlintSettings,
    find_config_file,
    load_settings,
)
from simlint.engine import (  # noqa: E402
    DEFAULT_EXCLUDES,
    SEVERITIES,
    LintFinding,
    LintRun,
    lint_file,
    lint_paths,
    lint_source,
    lint_tree,
)
from simlint.project import ModuleInfo, ProjectModel, build_module_info  # noqa: E402
from simlint.rules import RULE_REGISTRY, default_rules  # noqa: E402

__all__ = [
    "DEFAULT_EXCLUDES",
    "SEVERITIES",
    "LintCache",
    "LintFinding",
    "LintRun",
    "ModuleInfo",
    "ProjectModel",
    "RULE_REGISTRY",
    "SimlintSettings",
    "build_module_info",
    "compute_salt",
    "default_rules",
    "find_config_file",
    "lint_file",
    "lint_paths",
    "lint_source",
    "lint_tree",
    "load_settings",
]

__version__ = "2.0.0"
