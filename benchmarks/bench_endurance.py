"""Endurance — cell wear per scheme, and Start-Gap leveling on top.

Not a paper figure, but the endurance story behind Table I: comparison-
based schemes (DCW / FNW / 3SW / Tetris) program ~20-110 cells per line
write where the conventional and 2-Stage schemes program all 512, an
order-of-magnitude difference in wear.  The second part shows Start-Gap
(the paper's ref [5]) flattening the hot-line skew of a real workload.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.experiments.fullsystem import precompute_write_service
from repro.pcm.wear import StartGapLeveler, WearTracker

from _bench_utils import emit


def test_endurance_per_scheme(benchmark, traces):
    trace = traces["dedup"]

    def run():
        rows = []
        for scheme in ("conventional", "two_stage", "dcw", "flip_n_write",
                       "three_stage", "tetris"):
            table = precompute_write_service(trace, scheme)
            if scheme in ("conventional", "two_stage"):
                per_write = np.full(trace.n_writes, 512.0)
            else:
                counts = trace.write_counts.astype(np.int64)
                per_write = counts[..., 0].sum(axis=1) + counts[..., 1].sum(axis=1)
            rows.append([scheme, float(per_write.mean()),
                         float(per_write.sum()), table.mean_units()])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["scheme", "cells/write", "total cells", "write units"],
        rows,
        title="Endurance — cells programmed per cache-line write (dedup)",
    )
    emit("endurance_schemes", table)

    by = {r[0]: r[1] for r in rows}
    assert by["conventional"] == 512.0
    assert by["two_stage"] == 512.0
    assert by["tetris"] < 512.0 / 3
    assert by["tetris"] == by["dcw"] == by["three_stage"]


def test_endurance_start_gap(benchmark, traces):
    """Hot-line wear of a real workload, with and without Start-Gap."""
    trace = traces["vips"]
    counts = trace.write_counts.astype(np.int64)
    per_write = counts[..., 0].sum(axis=1) + counts[..., 1].sum(axis=1)
    lines = trace.records["line"][trace.records["op"] == 1]
    # Fold the stream into one Start-Gap region and repeat it to model a
    # long-running execution: Start-Gap levels on the timescale of
    # region_size x gap_interval writes (a full rotation here).
    region = 128
    repeats = 20

    def run():
        flat = WearTracker()
        leveled = WearTracker()
        sg = StartGapLeveler(num_lines=region, gap_interval=8)
        mean_cells = max(int(per_write.mean()), 1)
        for _ in range(repeats):
            for w in range(trace.n_writes):
                la = int(lines[w]) % region
                cells = int(per_write[w])
                flat.record(la, cells, 0)
                leveled.record(sg.physical_of(la), cells, 0)
                moved = sg.on_write(la)
                if moved is not None:
                    leveled.record(moved, mean_cells, 0)
        return flat.stats(), leveled.stats()

    flat, leveled = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["metric", "no leveling", "start-gap"],
        [
            ["lines touched", flat.lines_touched, leveled.lines_touched],
            ["max programs/line", flat.max_programs, leveled.max_programs],
            ["mean programs/line", flat.mean_programs, leveled.mean_programs],
            ["wear CoV", flat.cov, leveled.cov],
            ["relative lifetime", 1.0,
             leveled.lifetime_writes() / max(flat.lifetime_writes(), 1e-9)],
        ],
        title="Endurance — Start-Gap leveling on vips write stream",
    )
    emit("endurance_startgap", table)

    assert leveled.max_programs <= flat.max_programs
    assert leveled.cov < flat.cov
