"""Extension — cost-aware flip (CAFO, the paper's ref [22]).

Flip-N-Write's rule minimizes programmed-cell *count*; at the paper's
operating point a SET costs ~4x a RESET in energy, so the count-optimal
encoding is not the energy-optimal one.  This bench measures the energy
CAFO's weighted rule saves over the plain rule on content where the two
disagree: writes near the flip threshold and SET-heavy rewrites.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.core.read_stage import cost_aware_flip, read_stage
from repro.pcm.energy import EnergyModel

from _bench_utils import emit


def _energy(rs, em):
    return float(
        (rs.n_set.astype(float) * em.e_set + rs.n_reset.astype(float) * em.e_reset).sum()
    )


def test_cafo_energy_savings(benchmark):
    em = EnergyModel()
    rng = np.random.default_rng(0)

    def run():
        rows = []
        scenarios = {
            # Fig-3-like small updates: flip rarely fires, no difference.
            "workload-typical": lambda old: old ^ rng.integers(
                0, 1 << 10, size=8, dtype=np.uint64
            ),
            # Full random rewrites: ~half the units sit near the
            # threshold where the rules disagree.
            "full-rewrite": lambda old: rng.integers(
                0, np.iinfo(np.uint64).max, size=8, dtype=np.uint64
            ),
            # SET-heavy: mostly-ones payloads (e.g. sentinel patterns).
            "set-heavy": lambda old: ~rng.integers(
                0, 1 << 22, size=8, dtype=np.uint64
            ),
        }
        for name, mutate in scenarios.items():
            count_e = cost_e = 0.0
            n = 400
            for _ in range(n):
                old = rng.integers(0, np.iinfo(np.uint64).max, size=8, dtype=np.uint64)
                flips = np.zeros(8, dtype=bool)
                new = mutate(old)
                count_e += _energy(read_stage(old, flips, new), em)
                cost_e += _energy(cost_aware_flip(old, flips, new), em)
            rows.append([
                name, count_e / n, cost_e / n,
                100.0 * (1 - cost_e / count_e) if count_e else 0.0,
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["content", "count-flip energy", "cost-flip energy", "saving (%)"],
        rows,
        title="Extension — CAFO cost-aware flip vs. count-based flip",
    )
    table += (
        "\nOn the paper's workload profile the rules agree (changes stay"
        "\nbelow the threshold); CAFO pays off on threshold-straddling"
        "\nand SET-heavy content."
    )
    emit("cafo_flip", table)

    by = {r[0]: r for r in rows}
    # Never worse anywhere...
    for r in rows:
        assert r[2] <= r[1] * 1.001, r[0]
    # ...identical on typical workload content, strictly better on
    # full rewrites.
    assert abs(by["workload-typical"][3]) < 0.5
    assert by["full-rewrite"][3] > 0.5
