"""Extension — Tetris scheduling generalized to 2-bit MLC PCM.

The paper restricts itself to SLC "for its better write performance";
this bench shows the idea transfers: with four program classes (one per
MLC level, each its own duration/current), the generalized earliest-fit
packer hides the short high-current RESETs and mid-length P&V staircases
inside the long full-SET bursts, recovering a large factor over the
serial baseline — and the unaligned SLC variant slightly improves on
Algorithm 2's write-unit-aligned packing.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.config import default_config
from repro.core.analysis import analyze
from repro.core.generalized import BurstClass, GeneralizedScheduler
from repro.experiments.fullsystem import (
    PrecomputedServiceModel,
    WriteServiceTable,
    run_fullsystem,
)
from repro.pcm.mlc import MLCModel
from repro.pcm.state import MemoryImage
from repro.trace.content import realize_payload
from repro.trace.synthetic import generate_trace

from _bench_utils import emit


def test_mlc_generalized_tetris(benchmark, traces):
    rng = np.random.default_rng(0)
    model = MLCModel()

    def run():
        serial_total = tetris_total = 0.0
        n = 300
        for _ in range(n):
            old = rng.integers(0, 1 << 63, size=8, dtype=np.uint64)
            # MLC content churn: a few symbol rewrites per unit.
            new = old ^ rng.integers(0, 1 << 24, size=8, dtype=np.uint64)
            serial_total += model.serial_ns(old, new)
            tetris_total += model.tetris_ns(old, new)
        return serial_total / n, tetris_total / n

    serial_ns, tetris_ns = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = serial_ns / tetris_ns if tetris_ns else float("inf")

    table = format_table(
        ["variant", "mean write-stage (ns)"],
        [["serial MLC baseline", serial_ns],
         ["generalized Tetris MLC", tetris_ns]],
        title="Extension — MLC (2-bit) write scheduling, 300 random writes",
    )
    table += f"\nspeedup: {speedup:.2f}x"
    emit("mlc_extension", table)

    assert tetris_ns < serial_ns
    assert speedup > 2.0


def test_slc_alignment_cost(benchmark, traces):
    """How much does Algorithm 2's write-unit alignment cost vs. the
    unaligned earliest-fit relaxation, on real SLC workload demands?"""
    trace = traces["vips"]
    W1 = BurstClass("write1", 8, 1.0)
    W0 = BurstClass("write0", 1, 2.0)
    relaxed = GeneralizedScheduler(128.0, 430.0 / 8)

    def run():
        aligned_total = relaxed_total = 0.0
        n = 400
        for w in range(n):
            n_set = trace.write_counts[w, :, 0].astype(int)
            n_reset = trace.write_counts[w, :, 1].astype(int)
            aligned_total += analyze(
                n_set, n_reset, power_budget=128.0
            ).service_time_ns(430.0)
            relaxed_total += relaxed.schedule(
                {W1: n_set, W0: n_reset}
            ).completion_ns()
        return aligned_total / n, relaxed_total / n

    aligned_ns, relaxed_ns = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["packer", "mean write-stage (ns)"],
        [["Algorithm 2 (write-unit aligned)", aligned_ns],
         ["generalized earliest-fit (unaligned)", relaxed_ns]],
        title="Extension — cost of write-unit alignment on vips demands",
    )
    table += (
        f"\nalignment overhead: "
        f"{100.0 * (aligned_ns / relaxed_ns - 1.0):.1f}% "
        "(the hardware-simple aligned FSM gives up this much)"
    )
    emit("slc_alignment_cost", table)
    assert relaxed_ns <= aligned_ns + 1e-9


def test_mlc_fullsystem(benchmark):
    """MLC at system level: price every write of a small trace with the
    MLC model (payloads realized against an evolving image) and replay
    through the DES — scheduled vs. serial MLC."""
    cfg = default_config()
    trace = generate_trace("dedup", requests_per_core=120, seed=9)
    model = MLCModel(power_budget=cfg.bank_power_budget)

    def price(mode: str) -> WriteServiceTable:
        image = MemoryImage(seed=trace.seed)
        lines = trace.records["line"][trace.records["op"] == 1]
        service = np.zeros(trace.n_writes)
        for w in range(trace.n_writes):
            state = image.line(int(lines[w]))
            rng = np.random.default_rng(np.random.SeedSequence([trace.seed, w]))
            new = realize_payload(rng, state.logical, trace.write_counts[w])
            old = state.logical.copy()
            state.store(new, np.zeros(8, dtype=bool))
            service[w] = (
                model.tetris_ns(old, new) if mode == "tetris"
                else model.serial_ns(old, new)
            )
        return WriteServiceTable(
            scheme=f"mlc_{mode}", service_ns=service,
            units=service / cfg.timings.t_set_ns,
            energy=np.zeros_like(service),
        )

    def run():
        out = {}
        for mode in ("serial", "tetris"):
            table = price(mode)
            service = PrecomputedServiceModel(table, cfg)
            from repro.cpu.system import CMPSystem

            res = CMPSystem(trace, cfg, service, scheme_name=table.scheme).run()
            out[mode] = res
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [mode, r.mean_read_latency_ns, r.mean_write_latency_ns,
         r.runtime_ns / 1e6]
        for mode, r in results.items()
    ]
    table = format_table(
        ["MLC write path", "read lat (ns)", "write lat (ns)", "runtime (ms)"],
        rows,
        title="Extension — MLC at full-system level (dedup, 2-bit cells)",
    )
    emit("mlc_fullsystem", table)

    assert (
        results["tetris"].mean_read_latency_ns
        < results["serial"].mean_read_latency_ns
    )
    assert results["tetris"].runtime_ns < results["serial"].runtime_ns
