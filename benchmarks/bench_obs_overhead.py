"""Cost of the observability subsystem on the scheme hot path.

The tracing PR's bargain mirrors the fault subsystem's: full Perfetto
timelines + a metric registry when you ask for them, (near) zero cost
when you don't.  Checked here:

1. **Disabled is <2% overhead.**  With ``trace.enabled=False`` (the
   default) every instrumented component resolves ``self._obs`` to
   ``None`` at construction and the write path pays exactly one
   ``if self._obs is not None`` test, so per-write time must stay
   within 2% of a direct ``_write_once`` loop — the pristine
   pre-instrumentation path, which still exists verbatim as the
   template-method hook and is the honest baseline to time.
2. **Enabled cost is bounded and visible.**  A traced run (scheme spans
   + FSM schedule slices + metrics, ManualClock so no syscalls) is
   reported alongside, normalized both per write and per emitted event,
   so the price of a recording run stays on the dashboard.

Interleaved best-of-REPEATS minima, as in ``bench_faults``: minima
discard scheduler noise and interleaving keeps the configurations
comparable on a loaded machine.
"""

from __future__ import annotations

import time

import numpy as np

from repro.config import TraceConfig, default_config
from repro.obs import ManualClock, Tracer
from repro.obs.runtime import tracing
from repro.pcm.state import LineState
from repro.schemes.base import get_scheme

from _bench_utils import emit
from repro.analysis.report import format_table

N_WRITES = 800
REPEATS = 3
SEED = 20160816
TRACED_CFG = default_config().replace(
    trace=TraceConfig(enabled=True, buffer_events=1 << 16, clock="sim")
)


def _make_workload(n_writes: int) -> np.ndarray:
    rng = np.random.default_rng(SEED)
    lines = rng.integers(0, 1 << 63, size=(n_writes + 1, 8), dtype=np.uint64)
    masks = rng.integers(0, 1 << 16, size=(n_writes + 1, 8), dtype=np.uint64)
    return lines ^ masks


def _one_run(mode: str, payload: np.ndarray) -> tuple[float, int]:
    """(per-write ns, events recorded) for one TetrisWrite loop."""
    n = payload.shape[0] - 1
    if mode == "enabled":
        with tracing(Tracer(capacity=1 << 16, clock=ManualClock())) as tr:
            scheme = get_scheme("tetris", TRACED_CFG)
            state = LineState.from_logical(payload[0])
            t0 = time.perf_counter()
            for row in payload[1:]:
                scheme.write(state, row, line=0)
            elapsed = time.perf_counter() - t0
        return elapsed / n * 1e9, tr.recorded

    scheme = get_scheme("tetris", default_config())
    state = LineState.from_logical(payload[0])
    t0 = time.perf_counter()
    if mode == "pristine":
        for row in payload[1:]:
            scheme._write_once(state, row)
    else:  # "disabled": the full wrapped write path, tracing off
        for row in payload[1:]:
            scheme.write(state, row, line=0)
    elapsed = time.perf_counter() - t0
    return elapsed / n * 1e9, 0


def test_disabled_trace_path_does_no_obs_work():
    """Flag off ⇒ the scheme holds no tracer and records no events."""
    payload = _make_workload(50)
    scheme = get_scheme("tetris", default_config())
    assert scheme._obs is None
    state = LineState.from_logical(payload[0])
    for row in payload[1:]:
        scheme.write(state, row, line=0)


def test_enabled_trace_path_records():
    """Sanity: the enabled leg of the bench actually traces."""
    payload = _make_workload(20)
    _, events = _one_run("enabled", payload)
    assert events > 0


def test_disabled_trace_path_overhead(monkeypatch):
    monkeypatch.delenv("REPRO_VERIFY", raising=False)
    payload = _make_workload(N_WRITES)

    # Global minima accumulated over interleaved rounds; keep measuring
    # until the disabled minimum has converged below the bound (or the
    # round budget runs out and the bench reports honestly).
    best = {"pristine_a": float("inf"), "disabled": float("inf"),
            "enabled": float("inf"), "pristine_b": float("inf")}
    events = 0
    for _ in range(8):
        for _ in range(REPEATS):
            best["pristine_a"] = min(best["pristine_a"], _one_run("pristine", payload)[0])
            best["disabled"] = min(best["disabled"], _one_run("disabled", payload)[0])
            enabled_ns, events = _one_run("enabled", payload)
            best["enabled"] = min(best["enabled"], enabled_ns)
            best["pristine_b"] = min(best["pristine_b"], _one_run("pristine", payload)[0])
        pristine_so_far = min(best["pristine_a"], best["pristine_b"])
        if best["disabled"] <= pristine_so_far * 1.02:
            break

    pristine = min(best["pristine_a"], best["pristine_b"])
    disabled_pct = (best["disabled"] - pristine) / pristine * 100.0
    enabled_pct = (best["enabled"] - pristine) / pristine * 100.0
    events_per_write = events / N_WRITES
    ns_per_event = (
        (best["enabled"] - best["disabled"]) / events_per_write
        if events_per_write else 0.0
    )

    rows = [
        ("pristine _write_once (run A)", f"{best['pristine_a']:9.1f}", ""),
        ("pristine _write_once (run B)", f"{best['pristine_b']:9.1f}", ""),
        ("tracing disabled (default)", f"{best['disabled']:9.1f}",
         f"{disabled_pct:+.2f}%"),
        ("tracing enabled (ManualClock)", f"{best['enabled']:9.1f}",
         f"{enabled_pct:+.2f}%"),
        (f"  -> {events_per_write:.1f} events/write",
         f"{ns_per_event:9.1f}", "ns/event"),
    ]
    emit(
        "obs_overhead",
        format_table(
            ["configuration", "ns/write", "vs pristine"],
            rows,
            title="Observability — TetrisWrite hot-path cost",
        ),
    )

    assert best["disabled"] <= pristine * 1.02, (
        f"tracing-disabled overhead {disabled_pct:.2f}% exceeds 2% "
        f"({best['disabled']:.1f} vs {pristine:.1f} ns/write)"
    )
    # Recording does real work (spans, schedule slices, metrics); keep a
    # loose ceiling so a pathological regression trips the bench.
    assert best["enabled"] <= pristine * 5.0, (
        f"enabled-path overhead exploded: {enabled_pct:.0f}%"
    )
