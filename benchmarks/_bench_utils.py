"""Shared helpers for the experiment benches (imported as a module)."""

from __future__ import annotations

from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"

SCHEMES = ("dcw", "flip_n_write", "two_stage", "three_stage", "tetris")
REQUESTS_PER_CORE = 2000
SEED = 20160816


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/out/."""
    print()
    print(text)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
