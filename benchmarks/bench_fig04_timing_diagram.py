"""Figure 4 — chip-level timing diagram of the four schemes.

The paper's worked example: 64 B line, four X16 chips, per-chip budget 32
(32 SETs / 16 RESETs concurrently), RESET:SET current ratio 2.  Write-1
currents 8+7+7+6+3 = 31 < 32 share write unit 1; the remaining write-1s
(6, 6, 5) run in write unit 2, whose interspace absorbs every write-0.
Completion: Tetris T1 = 2 units < 3SW T2 = 2.5 < 2SW T3 = 3 < FNW T4 = 4.
"""

import numpy as np

from repro.analysis.timing_diagram import render_timing_diagram, scheme_timeline

from _bench_utils import emit

N_SET = np.array([8, 7, 7, 6, 6, 6, 5, 3])
N_RESET = np.array([1, 1, 1, 2, 3, 2, 2, 5])


def test_fig04_worked_example(benchmark):
    tl = benchmark.pedantic(
        lambda: scheme_timeline(N_SET, N_RESET, power_budget=32.0),
        rounds=3,
        iterations=1,
    )
    diagram = render_timing_diagram(N_SET, N_RESET, power_budget=32.0)
    diagram += (
        "\n\npaper ordering: T1(tetris) < T2(3SW)=2.5 < T3(2SW)=3 < T4(FNW)=4"
    )
    emit("fig04_timing_diagram", diagram)

    assert tl.tetris == 2.0            # T1: two write units, nothing extra
    assert tl.three_stage == 2.5       # T2
    assert tl.two_stage == 3.0         # T3
    assert tl.flip_n_write == 4.0      # T4
    assert tl.conventional == 8.0      # not drawn in the figure
    assert tl.tetris_schedule.subresult == 0


def test_fig04_write0s_hide_in_interspace(benchmark):
    """Every write-0 of the example fits the write-1 interspace: the
    paper's three in-a-row groupings all satisfy the budget."""
    sched = benchmark.pedantic(
        lambda: scheme_timeline(N_SET, N_RESET, power_budget=32.0).tetris_schedule,
        rounds=3,
        iterations=1,
    )
    occ = sched.occupancy()
    assert occ.max() <= 32.0
    assert len(sched.write0_queue) == 8   # all units have RESETs
    assert all(op.slot < sched.result * sched.K for op in sched.write0_queue)
