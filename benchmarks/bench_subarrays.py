"""Extension — subarray read-under-write vs. write-scheme quality.

The paper's refs [13]/[15] attack write-blocked reads with intra-bank
parallelism: a read proceeds through a free subarray while a write
occupies another.  Like write pausing, this helps the slow-write
baseline far more than Tetris — the scheme's short writes leave little
read blockage to bypass.
"""

from repro.analysis.report import format_table
from repro.config import PCMOrganization, default_config
from repro.experiments.fullsystem import run_fullsystem

from _bench_utils import emit


def test_subarray_bypass(benchmark, traces):
    trace = traces["canneal"]  # read-heavy: bypass matters most
    flat_cfg = default_config()
    sub_cfg = flat_cfg.replace(
        organization=PCMOrganization(subarrays_per_bank=4)
    )

    def run():
        rows = []
        for scheme in ("dcw", "tetris"):
            plain = run_fullsystem(trace, scheme, flat_cfg)
            bypass = run_fullsystem(trace, scheme, sub_cfg)
            gain = 1.0 - bypass.mean_read_latency_ns / plain.mean_read_latency_ns
            rows.append([
                scheme,
                plain.mean_read_latency_ns,
                bypass.mean_read_latency_ns,
                100.0 * gain,
                bypass.controller.subarray_reads,
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["scheme", "read lat (1 subarray)", "read lat (4 subarrays)",
         "gain (%)", "bypassed reads"],
        rows,
        title="Extension — subarray read-under-write (canneal)",
    )
    emit("subarrays", table)

    by = {r[0]: r for r in rows}
    assert by["dcw"][4] > 0
    assert by["dcw"][3] > 5.0                  # real gain for the baseline
    # In absolute nanoseconds the baseline has far more blockage for the
    # bypass to reclaim (the relative gains can land within noise of
    # each other on read-heavy canneal).
    reclaimed_dcw = by["dcw"][1] - by["dcw"][2]
    reclaimed_tetris = by["tetris"][1] - by["tetris"][2]
    assert reclaimed_dcw > 2 * reclaimed_tetris
    # Bypass never hurts.
    for r in rows:
        assert r[2] <= r[1] * 1.02
