"""Extended Figure 10 — write units including the extension schemes.

The paper's Figure 10 plus our two extra rows: PreSET (demand writes are
RESET-only after background pre-SETting) and Tetris-Relaxed (earliest-
fit without write-unit alignment).  PreSET beats even Tetris on *demand*
units — its catch is the deferred background SETs (energy/endurance,
see ``bench_endurance``); Tetris-Relaxed confirms the aligned FSMs give
nothing away.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.experiments.fullsystem import precompute_write_service

from _bench_utils import emit

SCHEMES = ("dcw", "flip_n_write", "three_stage", "tetris",
           "tetris_relaxed", "preset")


def test_fig10_extended(benchmark, traces):
    picks = ("blackscholes", "dedup", "ferret", "vips")

    def run():
        rows = []
        for wl in picks:
            trace = traces[wl]
            row = [wl]
            for scheme in SCHEMES:
                table = precompute_write_service(trace, scheme)
                row.append(table.mean_units())
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["workload", "DCW", "FNW", "3SW", "Tetris", "Relaxed", "PreSET"],
        rows,
        title="Extended Figure 10 — write units incl. extension schemes",
    )
    table += (
        "\nPreSET's demand units exclude its background SET debt (it"
        "\ntrades energy and endurance for latency); Relaxed == Tetris"
        "\nconfirms alignment costs nothing at this operating point."
    )
    emit("fig10_extended", table)

    by = {r[0]: dict(zip(SCHEMES, r[1:])) for r in rows}
    for wl, units in by.items():
        assert units["tetris_relaxed"] <= units["tetris"] + 1e-9, wl
        assert units["tetris"] < units["three_stage"], wl
        # PreSET's RESET-only demand write is extremely short.
        assert units["preset"] < units["three_stage"], wl
