"""Diagnostics — bank load balance and utilization across workloads.

The line-interleaved address map should spread traffic evenly over the
eight banks; this bench verifies the load balance holds on every
workload (a skewed map would silently serialize the system and corrupt
every other figure) and reports each scheme's total bank utilization —
Tetris completes the same work with a fraction of the busy time, which
is the capacity headroom it frees.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.experiments.fullsystem import run_fullsystem

from _bench_utils import emit


def test_bank_balance_and_utilization(benchmark, traces):
    def run():
        rows = []
        for workload in ("canneal", "dedup", "vips"):
            trace = traces[workload]
            # Structural balance of the trace itself.
            banks = trace.records["line"] % 8
            counts = np.bincount(banks.astype(int), minlength=8)
            imbalance = counts.max() / max(counts.mean(), 1.0)
            for scheme in ("dcw", "tetris"):
                res = run_fullsystem(trace, scheme)
                busy = np.array([
                    res.controller.bank_busy_ns.get(b, 0.0) for b in range(8)
                ])
                rows.append([
                    workload,
                    scheme,
                    imbalance,
                    busy.sum() / (8 * res.runtime_ns),
                    busy.max() / max(busy.mean(), 1e-9),
                ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["workload", "scheme", "traffic imbalance", "mean bank util",
         "busy imbalance"],
        rows,
        title="Diagnostics — bank load balance and utilization",
    )
    table += (
        "\n(imbalance = max/mean; 1.0 is perfect.  Utilization is busy"
        "\ntime over runtime x banks — Tetris frees the difference.)"
    )
    emit("bank_balance", table)

    for workload, scheme, imbalance, util, busy_imb in rows:
        assert imbalance < 1.5, (workload, "traffic skew")
        assert busy_imb < 2.0, (workload, scheme, "service skew")
        assert 0.0 < util <= 1.0
    # Tetris's bank utilization is far below DCW's for the same work.
    by = {(r[0], r[1]): r[3] for r in rows}
    for workload in ("canneal", "dedup", "vips"):
        assert by[(workload, "tetris")] < by[(workload, "dcw")]
