"""Figure 14 — normalized application running time vs. the DCW baseline.

Paper: Tetris earns > 46 % running-time reduction on average and beats
Flip-N-Write / 2-Stage-Write / Three-Stage-Write by 22 / 12 / 7 points.
"""

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.report import format_table
from repro.experiments.fullsystem import run_fullsystem

from _bench_utils import SCHEMES, emit


def test_fig14_running_time(benchmark, traces, fullsystem_grid, grid_baseline):
    benchmark.pedantic(
        lambda: run_fullsystem(traces["canneal"], "tetris"), rounds=1, iterations=1
    )

    compared = [s for s in SCHEMES if s != "dcw"]
    rows, norm = [], {s: [] for s in compared}
    for wl in traces:
        base = grid_baseline[wl]
        row = [wl]
        for s in compared:
            r = next(x for x in fullsystem_grid if x.workload == wl and x.scheme == s)
            v = r.normalized(base)["running_time"]
            norm[s].append(v)
            row.append(v)
        rows.append(row)
    rows.append(["AVERAGE"] + [arithmetic_mean(norm[s]) for s in compared])

    table = format_table(
        ["workload", "FNW", "2SW", "3SW", "Tetris"],
        rows,
        title="Figure 14 — running time normalized to DCW (lower is better)",
    )
    table += "\npaper: Tetris 46% avg reduction; +22/+12/+7 pts over FNW/2SW/3SW"
    table += "\nmeasured average reductions: " + ", ".join(
        f"{s} {100 * (1 - arithmetic_mean(norm[s])):.0f}%" for s in compared
    )
    emit("fig14_running_time", table)

    # Shape: strict ranking on the memory-bound workloads; the near-idle
    # pair moves < 2 % total, where drain-timing noise can reorder
    # neighbours.
    for i, wl in enumerate(list(traces)):
        fnw, tsw2, tsw3, tet = rows[i][1:]
        if wl in ("blackscholes", "swaptions"):
            assert tet <= 1.0 + 1e-9 and fnw <= 1.0 + 1e-9, wl
        else:
            assert tet <= tsw3 <= tsw2 <= fnw <= 1.0 + 1e-9, wl
    heavy = [v for wl, v in zip(traces, norm["tetris"])
             if wl not in ("blackscholes", "swaptions")]
    assert arithmetic_mean(heavy) < 0.65
