"""Figure 3 — the number of RESET and SET operations per data unit.

Paper series (read off the figure / pinned by the text): average 9.6
bit-writes per 64-bit unit = 6.7 SET + 2.9 RESET; blackscholes ~2 total,
vips ~19; ferret and vips near fifty-fifty, the rest SET-dominant.
"""

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.report import format_table
from repro.experiments.fig03 import measure_bit_profile

from _bench_utils import emit


def test_fig03_bit_profile(benchmark, traces):
    rows = benchmark.pedantic(
        lambda: [measure_bit_profile(t) for t in traces.values()],
        rounds=1,
        iterations=1,
    )
    table = format_table(
        ["workload", "SET/unit", "RESET/unit", "total", "paper-total"],
        [
            [r.workload, r.mean_set, r.mean_reset, r.total,
             {"blackscholes": "~2", "vips": "~19"}.get(r.workload, "-")]
            for r in rows
        ],
        title="Figure 3 — bit-writes per 64-bit data unit (post-inversion)",
    )
    avg_set = arithmetic_mean([r.mean_set for r in rows])
    avg_reset = arithmetic_mean([r.mean_reset for r in rows])
    table += (
        f"\naverage: {avg_set:.2f} SET + {avg_reset:.2f} RESET ="
        f" {avg_set + avg_reset:.2f}   (paper: 6.7 + 2.9 = 9.6)"
    )
    emit("fig03_bit_profile", table)

    # Shape assertions: Observation 1 & 2.
    assert 7.0 <= avg_set + avg_reset <= 12.0
    assert avg_set > avg_reset
    by_name = {r.workload: r for r in rows}
    assert by_name["blackscholes"].total < 4
    assert by_name["vips"].total > 14
