"""Sweep-engine scaling: serial vs. process pool, cold vs. warm cache.

Three contracts from ISSUE 4, in one bench:

* ``workers=4`` rows are byte-identical to serial (always asserted);
* a cache-warm re-run replays every cell with **zero DES invocations**
  and identical rows (always asserted);
* 4 workers give a >= 2x wall-clock speedup on the 4-workload x
  5-scheme grid — asserted only on hosts with >= 4 cores (single-core
  CI runners physically cannot show it; the measured ratio is still
  reported in the emitted table).

Since ISSUE 7 the pool is the supervised one (docs/RESILIENCE.md), so
the bench also pins the zero-fault contract: a clean sweep takes zero
retries/timeouts/worker-deaths/serial-fallbacks, and journaling every
cell for --resume stays in the same wall-clock class as running bare.
"""

from __future__ import annotations

import dataclasses
import json
import os

from _bench_utils import SCHEMES, emit

from repro.analysis.report import format_table
from repro.parallel import ResultCache, SweepEngine, SweepJournal

WORKLOADS = ("dedup", "vips", "canneal", "ferret")
REQUESTS = 800


def _rows_bytes(result) -> list[str]:
    return [json.dumps(dataclasses.asdict(r), sort_keys=True) for r in result.rows]


def _assert_zero_fault(result, label: str) -> None:
    s = result.stats
    counters = {
        "retries": s.retries,
        "timeouts": s.timeouts,
        "worker_deaths": s.worker_deaths,
        "replacements": s.replacements,
        "serial_cells": s.serial_cells,
    }
    assert not any(counters.values()), (
        f"{label}: zero-fault sweep tripped the supervisor: {counters}"
    )


def test_sweep_scaling(tmp_path):
    grid = (SCHEMES, WORKLOADS)

    serial = SweepEngine(
        requests_per_core=REQUESTS, workers=1, cache=False
    ).run(*grid)
    serial.raise_errors()

    parallel = SweepEngine(
        requests_per_core=REQUESTS, workers=4, cache=False
    ).run(*grid)
    parallel.raise_errors()
    assert _rows_bytes(parallel) == _rows_bytes(serial), (
        "workers=4 must be bit-identical to serial"
    )
    _assert_zero_fault(parallel, "pool (workers=4)")

    journaled = SweepEngine(
        requests_per_core=REQUESTS, workers=4, cache=False,
        journal=SweepJournal(tmp_path / "journal.jsonl"),
    ).run(*grid)
    journaled.raise_errors()
    _assert_zero_fault(journaled, "journaled pool")
    assert _rows_bytes(journaled) == _rows_bytes(serial), (
        "journaling must not change the rows"
    )

    store = tmp_path / "store"
    cold = SweepEngine(
        requests_per_core=REQUESTS, workers=4, cache=ResultCache(store)
    ).run(*grid)
    cold.raise_errors()
    warm = SweepEngine(
        requests_per_core=REQUESTS, workers=4, cache=ResultCache(store)
    ).run(*grid)
    warm.raise_errors()
    assert warm.stats.executed == 0, "warm re-run must not invoke the DES"
    assert warm.stats.cache_hits == warm.stats.cells
    assert _rows_bytes(warm) == _rows_bytes(serial)

    cells = serial.stats.cells
    speedup = serial.stats.wall_s / parallel.stats.wall_s
    journal_speedup = serial.stats.wall_s / journaled.stats.wall_s
    warm_speedup = serial.stats.wall_s / warm.stats.wall_s
    rows = [
        ["serial (workers=1)", cells, serial.stats.wall_s,
         serial.stats.wall_s / cells, 1.0],
        ["pool (workers=4)", cells, parallel.stats.wall_s,
         parallel.stats.wall_s / cells, speedup],
        ["journaled pool", cells, journaled.stats.wall_s,
         journaled.stats.wall_s / cells, journal_speedup],
        ["warm cache", cells, warm.stats.wall_s,
         warm.stats.wall_s / cells, warm_speedup],
    ]
    table = format_table(
        ["mode", "cells", "wall s", "s/cell", "speedup"],
        rows,
        title=(
            f"Sweep scaling — {len(WORKLOADS)} workloads x {len(SCHEMES)} "
            f"schemes, {REQUESTS} req/core ({os.cpu_count()} host cores)"
        ),
    )
    emit("sweep_scaling", table)

    assert warm_speedup > 10.0, "cache replay should be orders faster than DES"
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x at 4 workers on a >= 4-core host, got {speedup:.2f}x"
        )
