"""Extension — multiprogrammed mixes: interference through the controller.

Each core runs a *different* application (disjoint address spaces), so
the only coupling is the shared queues and banks.  A write-heavy
neighbour (vips) poisons a read-mostly neighbour's (canneal) latency
under the DCW baseline; Tetris shrinks the drains and with them the
cross-application interference.
"""

from repro.analysis.report import format_table
from repro.experiments.fullsystem import run_fullsystem
from repro.trace.mixer import generate_mix

from _bench_utils import emit

MIXES = (
    ["canneal", "canneal", "vips", "vips"],
    ["blackscholes", "dedup", "ferret", "vips"],
)


def test_multiprogrammed_mixes(benchmark):
    def run():
        rows = []
        for workloads in MIXES:
            mix = generate_mix(workloads, requests_per_core=1200)
            dcw = run_fullsystem(mix, "dcw")
            tetris = run_fullsystem(mix, "tetris")
            # Per-core completion speedups: heterogeneous mixes are gated
            # by their most compute-bound member, so the makespan hides
            # what the memory-bound co-runners gained.
            speedups = [
                d.finish_ns / t.finish_ns if t.finish_ns > 0 else 1.0
                for d, t in zip(dcw.cores[: len(workloads)],
                                tetris.cores[: len(workloads)])
            ]
            rows.append([
                "+".join(w[:4] for w in workloads),
                dcw.mean_read_latency_ns,
                tetris.mean_read_latency_ns,
                tetris.runtime_ns / dcw.runtime_ns,
                max(speedups),
                min(speedups),
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["mix", "read lat DCW", "read lat Tetris", "makespan",
         "best core speedup", "worst core speedup"],
        rows,
        title="Extension — multiprogrammed mixes (Tetris vs DCW)",
    )
    table += (
        "\nHeterogeneous mixes expose a makespan effect: the compute-"
        "\nbound member gates total runtime, but every memory-bound"
        "\nco-runner individually finishes much earlier under Tetris."
    )
    emit("multiprogrammed", table)

    for row in rows:
        mix, rd_dcw, rd_tet, makespan, best, worst = row
        assert rd_tet < rd_dcw, mix          # interference shrinks
        assert makespan <= 1.0 + 1e-9, mix   # never slower overall
        assert best > 1.5, mix               # memory-bound cores gain big
        assert worst > 0.99, mix             # nobody loses
