"""Figure 3 cross-check — measured through the real read stage.

The fast Fig-3 bench trusts the trace's drawn counts; this one realizes
actual payloads against an evolving memory image and measures the
SET/RESET counts through Algorithm 1, per workload — the measurement
path the paper used.  Agreement between the two pins the content model's
central claim (drawn counts are post-inversion by construction).
"""

from repro.analysis.report import format_table
from repro.experiments.fig03 import measure_bit_profile

from _bench_utils import emit

MAX_WRITES = 80  # payload realization is the slow path


def test_fig03_functional_crosscheck(benchmark, traces):
    picks = ("blackscholes", "dedup", "ferret", "vips")

    def run():
        rows = []
        for wl in picks:
            trace = traces[wl]
            fast = measure_bit_profile(trace)
            slow = measure_bit_profile(
                trace, functional=True, max_writes=MAX_WRITES
            )
            rows.append([
                wl, fast.total, slow.total,
                fast.mean_set, slow.mean_set,
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["workload", "total (counts)", "total (functional)",
         "SET (counts)", "SET (functional)"],
        rows,
        title=(
            "Figure 3 cross-check — drawn counts vs. realized payloads "
            f"through Algorithm 1 (first {MAX_WRITES} writes)"
        ),
    )
    emit("fig03_functional", table)

    for wl, t_fast, t_slow, s_fast, s_slow in rows:
        # The functional sample is small (80 writes) and the fast figure
        # averages the whole trace: compare loosely but meaningfully.
        assert abs(t_slow - t_fast) / max(t_fast, 1e-9) < 0.35, wl
        assert abs(s_slow - s_fast) / max(s_fast, 1e-9) < 0.4, wl
