"""Extension — read tail latency (p50 / p95 / p99) per scheme.

Mean read latency understates what write-blocking does: the *tail* is
where reads stuck behind a drain of 3.4 us DCW writes live.  Tetris's
short writes compress the tail even more than the mean — the p99 tells
the interactive-workload story the averages hide.
"""

from repro.analysis.report import format_table
from repro.experiments.fullsystem import run_fullsystem

from _bench_utils import emit

SCHEMES = ("dcw", "flip_n_write", "two_stage", "three_stage", "tetris")


def test_read_tail_latency(benchmark, traces):
    trace = traces["ferret"]

    def run():
        rows = []
        for scheme in SCHEMES:
            res = run_fullsystem(trace, scheme)
            hist = res.controller.read_hist
            rows.append([
                scheme,
                res.mean_read_latency_ns,
                hist.percentile(50),
                hist.percentile(95),
                hist.percentile(99),
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["scheme", "mean", "p50", "p95", "p99"],
        rows,
        float_fmt="{:.0f}",
        title="Extension — read latency distribution, ns (ferret)",
    )
    table += (
        "\nThe tail compresses faster than the mean: drains of short"
        "\nTetris writes release blocked reads ~8x sooner than DCW's."
    )
    emit("tail_latency", table)

    by = {r[0]: r for r in rows}
    # Tails ordered like the means, and Tetris's p99 is a large multiple
    # better than the baseline's.
    assert by["tetris"][4] < by["three_stage"][4] <= by["dcw"][4]
    assert by["dcw"][4] / by["tetris"][4] > 2.0
    # Every scheme's p99 >= its p50 (sanity of the histogram math).
    for r in rows:
        assert r[4] >= r[2]
