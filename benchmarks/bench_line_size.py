"""Extension — cache-line-size sweep (the paper's §I motivation).

The introduction argues the problem *worsens* with modern last-level
caches: IBM POWER7 uses 128 B lines and zEnterprise 256 B, doubling and
quadrupling the sequential write units.  This bench sweeps the line size
and shows that Tetris's measured unit count grows far slower than every
worst-case baseline — the more data units per line, the more slack for
the packer to exploit (and the analysis overhead scales by the §IV.D
cycle model).
"""

import numpy as np

from repro.analysis.report import format_table
from repro.config import default_config, theoretical_write_units
from repro.core.batch import pack_batch
from repro.core.overhead import AnalysisOverheadModel
from repro.trace.synthetic import generate_trace

from _bench_utils import emit

LINE_SIZES = (64, 128, 256)


def test_line_size_sweep(benchmark):
    overhead = AnalysisOverheadModel()

    def run():
        rows = []
        for line_bytes in LINE_SIZES:
            units = line_bytes * 8 // 64
            cfg = default_config().replace(cache_line_bytes=line_bytes)
            trace = generate_trace(
                "dedup", requests_per_core=800, units_per_line=units, seed=5
            )
            packed = pack_batch(
                trace.write_counts[..., 0].astype(int),
                trace.write_counts[..., 1].astype(int),
                K=cfg.K,
                L=cfg.L,
                power_budget=cfg.bank_power_budget,
            )
            theory = theoretical_write_units(cfg)
            tetris = float(packed.service_units().mean())
            rows.append([
                f"{line_bytes}B",
                theory["dcw"],
                theory["flip_n_write"],
                theory["three_stage"],
                tetris,
                theory["dcw"] / tetris,
                overhead.estimated_ns(units),
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["line", "DCW", "FNW", "3SW", "Tetris", "Tetris gain", "analysis (ns)"],
        rows,
        title="Extension — write units vs. cache-line size (dedup profile)",
    )
    table += (
        "\n§I: POWER7 uses 128 B and zEnterprise 256 B LLC lines — the"
        "\nworst-case baselines scale linearly while Tetris's measured"
        "\ncount grows sublinearly, so its advantage widens."
    )
    emit("line_size_sweep", table)

    gains = [r[5] for r in rows]
    assert gains[0] < gains[1] < gains[2]   # advantage widens with line size
    # Baselines double per step; Tetris must grow strictly slower.
    tetris = [r[4] for r in rows]
    assert tetris[1] < 2 * tetris[0]
    assert tetris[2] < 2 * tetris[1]
