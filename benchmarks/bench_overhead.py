"""§IV.D — overhead analysis of the Tetris Write logic.

Paper figures: the analysis stage worst-cases at 41 cycles @ 400 MHz
(102.5 ns) for 8 data units; the added logic draws < 4 mW against the
pump's 125 mW division-write power (~3.2 %).  This bench reproduces both
and additionally measures the *software* cost of Algorithm 2 per write
(our Python stand-in for the HLS measurement).
"""

import math

import numpy as np

from repro.analysis.report import format_table
from repro.core.analysis import TetrisScheduler
from repro.core.overhead import AnalysisOverheadModel

from _bench_utils import emit


def test_overhead_model(benchmark):
    model = AnalysisOverheadModel()

    rng = np.random.default_rng(0)
    scheduler = TetrisScheduler(8, 2.0, 128.0)
    n_set = rng.poisson(6.7, size=8)
    n_reset = rng.poisson(2.9, size=8)

    benchmark(scheduler.schedule, n_set, n_reset)

    rows = [
        ["worst-case analysis latency", f"{model.measured_worst_ns:.1f} ns",
         "41 cycles @ 400 MHz (paper)"],
        ["read-before-write", "50.0 ns", "Tread (paper)"],
        ["logic power overhead", f"{model.power_overhead_fraction * 100:.1f} %",
         "4 mW / 125 mW (paper ~3.2 %)"],
        ["est. cycles @ 16 units (128 B line)", str(model.estimated_cycles(16)),
         "scaling model"],
        ["est. cycles @ 32 units (256 B line)", str(model.estimated_cycles(32)),
         "scaling model"],
    ]
    table = format_table(
        ["overhead", "value", "source"],
        rows,
        title="§IV.D — Tetris Write overhead analysis",
    )
    emit("overhead", table)

    assert math.isclose(model.measured_worst_ns, 102.5)
    assert abs(model.power_overhead_fraction - 0.032) < 1e-9
    assert model.estimated_cycles(8) == 41
