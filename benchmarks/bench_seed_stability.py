"""Statistical rigor — are the headline numbers stable across seeds?

One seeded trace per workload could get lucky.  This bench repeats the
key comparison (Tetris vs. DCW on the memory-bound workloads) over
several trace seeds and reports mean ± std of the normalized metrics:
the conclusions must hold for *every* seed, not on average.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.experiments.fullsystem import run_fullsystem
from repro.trace.synthetic import generate_trace

from _bench_utils import emit

SEEDS = (11, 22, 33, 44)
WORKLOADS = ("dedup", "vips")


def test_seed_stability(benchmark):
    def run():
        rows = []
        for workload in WORKLOADS:
            ipc_x, rt, units = [], [], []
            for seed in SEEDS:
                trace = generate_trace(workload, requests_per_core=1200, seed=seed)
                dcw = run_fullsystem(trace, "dcw")
                tet = run_fullsystem(trace, "tetris")
                ipc_x.append(tet.ipc / dcw.ipc)
                rt.append(tet.runtime_ns / dcw.runtime_ns)
            rows.append([
                workload,
                float(np.mean(ipc_x)), float(np.std(ipc_x)),
                float(np.mean(rt)), float(np.std(rt)),
                float(np.min(ipc_x)),
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["workload", "IPC-x mean", "IPC-x std", "runtime mean",
         "runtime std", "IPC-x worst seed"],
        rows,
        title=f"Seed stability — Tetris vs DCW over {len(SEEDS)} trace seeds",
    )
    emit("seed_stability", table)

    for workload, ipc_mean, ipc_std, rt_mean, rt_std, ipc_worst in rows:
        assert ipc_worst > 1.3, workload       # wins on every seed
        assert ipc_std / ipc_mean < 0.1, workload   # tight spread
        assert rt_std / rt_mean < 0.1, workload
