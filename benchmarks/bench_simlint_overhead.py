"""Cost of the runtime invariant verifier on the scheme hot path.

Two claims from docs/SIMLINT.md are checked here:

1. **Disabled is (near) zero-cost.**  With verification off the write
   path pays a single ``if self.verify`` attribute test, so per-write
   time must be within 10% of a control run of the identical loop
   (the control re-measures the same disabled configuration, which
   bounds the check by the timer's own run-to-run noise — the honest
   baseline, since the pre-verifier code no longer exists to time).
   Semantically, zero-cost is asserted exactly: with the flag off the
   verifier functions are never entered at all.
2. **Enabled overhead is bounded and visible.**  The verified run's
   per-write cost is reported next to the disabled run so regressions
   in the checker itself show up in benchmarks/out/.

The workload mirrors ``bench_core_throughput``'s scalar scheme loop:
per-write ``TetrisWrite.write`` over synthetic content, the path every
full-system experiment exercises per serviced write.
"""

from __future__ import annotations

import time

import numpy as np

from repro.config import default_config
from repro.pcm.state import LineState
from repro.schemes.base import get_scheme
from repro.verify import invariants

from _bench_utils import emit
from repro.analysis.report import format_table

N_WRITES = 800
REPEATS = 3


def _make_workload(n_writes: int) -> np.ndarray:
    rng = np.random.default_rng(20160816)
    lines = rng.integers(0, 1 << 63, size=(n_writes + 1, 8), dtype=np.uint64)
    # Realistic partial-change writes: flip a limited bit window.
    masks = rng.integers(0, 1 << 16, size=(n_writes + 1, 8), dtype=np.uint64)
    return lines ^ masks


def _one_run(verify: bool, payload: np.ndarray) -> float:
    """Per-write time (ns) for one TetrisWrite loop over the payload."""
    scheme = get_scheme("tetris", default_config(verify_invariants=verify))
    state = LineState.from_logical(payload[0])
    t0 = time.perf_counter()
    for row in payload[1:]:
        scheme.write(state, row)
    elapsed = time.perf_counter() - t0
    return elapsed / (payload.shape[0] - 1) * 1e9


def _measure(payload: np.ndarray) -> tuple[float, float, float]:
    """Interleaved best-of-REPEATS for (off-A, on, off-B).

    Interleaving the configurations and taking minima makes the numbers
    comparable even when the whole benchmark session loads the machine;
    the two off runs bound the residual timer noise.
    """
    off_a = on = off_b = float("inf")
    for _ in range(REPEATS):
        off_a = min(off_a, _one_run(False, payload))
        on = min(on, _one_run(True, payload))
        off_b = min(off_b, _one_run(False, payload))
    return off_a, on, off_b


def test_disabled_verifier_is_zero_cost(monkeypatch):
    """Flag off ⇒ the verifier is never entered (exact zero-cost check)."""
    monkeypatch.delenv("REPRO_VERIFY", raising=False)
    calls = {"schedule": 0, "outcome": 0}
    real_schedule = invariants.verify_schedule
    real_outcome = invariants.verify_outcome

    def counting_schedule(*args, **kwargs):
        calls["schedule"] += 1
        return real_schedule(*args, **kwargs)

    def counting_outcome(*args, **kwargs):
        calls["outcome"] += 1
        return real_outcome(*args, **kwargs)

    # Patch at both the definition and the call sites.
    import repro.schemes.base as base_mod
    import repro.schemes.tetris as tetris_mod

    monkeypatch.setattr(invariants, "verify_schedule", counting_schedule)
    monkeypatch.setattr(invariants, "verify_outcome", counting_outcome)
    monkeypatch.setattr(tetris_mod, "verify_schedule", counting_schedule)
    monkeypatch.setattr(tetris_mod, "verify_outcome", counting_outcome)
    monkeypatch.setattr(base_mod, "verify_outcome", counting_outcome)

    payload = _make_workload(50)
    scheme = get_scheme("tetris", default_config())
    assert scheme.verify is False
    state = LineState.from_logical(payload[0])
    for row in payload[1:]:
        scheme.write(state, row)
    assert calls == {"schedule": 0, "outcome": 0}

    scheme_on = get_scheme("tetris", default_config(verify_invariants=True))
    state = LineState.from_logical(payload[0])
    for row in payload[1:]:
        scheme_on.write(state, row)
    # 50 writes: one schedule check each; outcome checked twice (component
    # pass in _outcome, state-diff pass in TetrisWrite.write).
    assert calls["schedule"] == 50 and calls["outcome"] == 100


def test_verifier_overhead(monkeypatch):
    monkeypatch.delenv("REPRO_VERIFY", raising=False)
    payload = _make_workload(N_WRITES)

    # A loaded machine can make even two identical runs diverge; retry
    # the full interleaved measurement a few times before declaring the
    # disabled path non-zero-cost.
    for _ in range(3):
        off_a, on, off_b = _measure(payload)
        if max(off_a, off_b) <= min(off_a, off_b) * 1.10:
            break

    off = min(off_a, off_b)
    noise_pct = abs(off_a - off_b) / off * 100.0
    on_pct = (on - off) / off * 100.0

    rows = [
        ("verify off (run A)", f"{off_a:9.1f}", ""),
        ("verify off (run B)", f"{off_b:9.1f}", f"noise {noise_pct:.1f}%"),
        ("verify on", f"{on:9.1f}", f"+{on_pct:.1f}%"),
    ]
    emit(
        "simlint_overhead",
        format_table(
            ["configuration", "ns/write", "delta"],
            rows,
            title="Runtime invariant verifier — TetrisWrite hot-path cost",
        ),
    )

    # Disabled must stay within 10% of the control run of the same
    # disabled loop; generous slack because CI timers jitter.
    assert max(off_a, off_b) <= min(off_a, off_b) * 1.10, (
        f"disabled-path runs diverge: {off_a:.1f} vs {off_b:.1f} ns/write"
    )
    # The enabled path does real work; just bound it loosely so a
    # pathological regression (e.g. accidental O(n^2) check) trips.
    assert on <= off * 5.0, f"verifier overhead exploded: {on_pct:.0f}%"
