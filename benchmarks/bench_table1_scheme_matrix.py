"""Table I — qualitative comparison of the write schemes, quantified.

The paper's Table I claims per scheme: does it reduce latency?  does it
reduce energy?  This bench quantifies both columns on one workload:
latency via the measured mean service time, energy via the per-write
normalized energy of the precompute tables.
"""

from repro.analysis.report import format_table
from repro.experiments.fullsystem import precompute_write_service

from _bench_utils import emit

PAPER_TABLE1 = {
    # scheme: (reduces latency?, reduces energy?) per paper Table I.
    "flip_n_write": (True, True),
    "two_stage": (True, False),
    "three_stage": (True, True),
    "tetris": (True, True),
}


def test_table1_scheme_matrix(benchmark, traces):
    trace = traces["dedup"]
    tables = benchmark.pedantic(
        lambda: {
            s: precompute_write_service(trace, s)
            for s in ("dcw", "conventional", "flip_n_write", "two_stage",
                      "three_stage", "tetris")
        },
        rounds=1,
        iterations=1,
    )
    base = tables["dcw"]
    base_latency = float(base.service_ns.mean())
    base_energy = float(base.energy.mean())

    rows = []
    for name, (lat_claim, en_claim) in PAPER_TABLE1.items():
        t = tables[name]
        lat = float(t.service_ns.mean()) / base_latency
        en = float(t.energy.mean()) / base_energy
        rows.append([
            name, lat, en,
            "YES" if lat_claim else "NO",
            "YES" if en_claim else "NO",
        ])
    table = format_table(
        ["scheme", "latency/DCW", "energy/DCW", "paper:lat?", "paper:energy?"],
        rows,
        title="Table I — latency & energy vs. the DCW baseline (dedup)",
    )
    table += (
        "\nDCW already writes changed cells only, so Table I's energy"
        "\ncolumn reads as: does the scheme stay at comparison-level"
        "\nenergy (YES) or pay for every cell like 2-Stage-Write (NO)?"
    )
    emit("table1_scheme_matrix", table)

    by = {r[0]: r for r in rows}
    # Latency column: every scheme reduces service time vs. DCW.
    for name in PAPER_TABLE1:
        assert by[name][1] < 1.0, name
    # Energy column: comparison-based schemes stay ~at DCW level while
    # 2-Stage-Write pays for all 512 cells.
    assert by["two_stage"][2] > 2.0
    assert by["flip_n_write"][2] < 1.5
    assert by["three_stage"][2] < 1.5
    assert by["tetris"][2] < 1.5
