"""Fastpath lane contracts: analytic speedup + vectorized kernel gates.

Two ISSUE 9 acceptance gates, measured and enforced in one bench:

* **Analytic lane >= 10x.**  The full Fig 11-14 grid priced by the
  oracle-certified fastpath must be at least 10x faster than the same
  grid through the discrete-event simulator, with every cell inside the
  envelope and zero differential-recheck divergences.  The two phases
  share one throwaway result store so the recheck's DES references are
  cache hits — the fastpath wall clock is the analytic lane's own cost.
* **Vectorized read stage >= 3x.**  The numpy ``read_stage_batch``
  kernel must beat the pure-Python scalar reference
  (``REPRO_NO_VECTOR=1``) by at least 3x on a trace-sized payload
  matrix, while staying bit-identical to it.

Emits ``BENCH_fastpath.json`` at the repo root (the machine-readable
sibling of ``BENCH_sweep.json``) plus the usual table under
``benchmarks/out/``.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from _bench_utils import SEED, emit

from repro.core.read_stage import read_stage_batch
from repro.parallel import ResultCache, SweepEngine, code_salt
from repro.schemes import COMPARED_SCHEMES
from repro.trace.workloads import WORKLOAD_NAMES
from repro.util import kernelstats

WORKLOADS = tuple(WORKLOAD_NAMES)
SCHEMES = ("dcw",) + tuple(COMPARED_SCHEMES)
REQUESTS = 4000
MIN_SWEEP_SPEEDUP = 10.0
MIN_KERNEL_SPEEDUP = 3.0

# Trace-sized payload matrix for the kernel micro-bench: a 4000-request
# workload writes ~4-8k lines of 8 data units each.
KERNEL_WRITES = 8192
KERNEL_UNITS = 8

OUT_PATH = Path(__file__).parent.parent / "BENCH_fastpath.json"


def _measure_sweep() -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-fastpath-") as tmp:
        store = Path(tmp) / "store"
        des = SweepEngine(
            requests_per_core=REQUESTS, root_seed=SEED, workers=1,
            cache=ResultCache(store), fastpath="off",
        ).run(SCHEMES, WORKLOADS)
        des.raise_errors()
        fast = SweepEngine(
            requests_per_core=REQUESTS, root_seed=SEED, workers=1,
            cache=ResultCache(store), fastpath="auto",
            certificate_path=Path(tmp) / "certificate.json",
        ).run(SCHEMES, WORKLOADS)
        fast.raise_errors()
    return {
        "cells": des.stats.cells,
        "des_wall_s": round(des.stats.wall_s, 4),
        "fastpath_wall_s": round(fast.stats.wall_s, 4),
        "fastpath_cells": fast.stats.fastpath_cells,
        "des_cells": fast.stats.des_cells,
        "recheck_samples": fast.stats.recheck_samples,
        "recheck_divergences": fast.stats.recheck_divergences,
        "speedup": round(des.stats.wall_s / fast.stats.wall_s, 2),
    }


def _measure_kernel() -> dict:
    rng = np.random.default_rng(SEED)
    shape = (KERNEL_WRITES, KERNEL_UNITS)
    old = rng.integers(0, 1 << 64, size=shape, dtype=np.uint64)
    new = rng.integers(0, 1 << 64, size=shape, dtype=np.uint64)
    flip = rng.integers(0, 2, size=shape).astype(bool)

    saved = os.environ.pop("REPRO_NO_VECTOR", None)
    try:
        before = kernelstats.snapshot()
        t0 = time.perf_counter()
        vec = read_stage_batch(old, flip, new)
        vec_s = time.perf_counter() - t0
        after = kernelstats.snapshot()
        assert after["vectorized"] == before["vectorized"] + 1

        os.environ["REPRO_NO_VECTOR"] = "1"
        t0 = time.perf_counter()
        ref = read_stage_batch(old, flip, new)
        scalar_s = time.perf_counter() - t0
        assert kernelstats.snapshot()["scalar"] == after["scalar"] + 1
    finally:
        if saved is None:
            os.environ.pop("REPRO_NO_VECTOR", None)
        else:
            os.environ["REPRO_NO_VECTOR"] = saved

    for field in ("flip", "physical", "n_set", "n_reset"):
        assert np.array_equal(getattr(vec, field), getattr(ref, field)), (
            f"vectorized read stage diverged from scalar reference: {field}"
        )
    return {
        "writes": KERNEL_WRITES,
        "units_per_write": KERNEL_UNITS,
        "vectorized_s": round(vec_s, 6),
        "scalar_s": round(scalar_s, 6),
        "speedup": round(scalar_s / vec_s, 1),
    }


def test_fastpath_contracts():
    sweep = _measure_sweep()
    kernel = _measure_kernel()

    doc = {
        "grid": {
            "workloads": list(WORKLOADS),
            "schemes": list(SCHEMES),
            "requests_per_core": REQUESTS,
            "seed": SEED,
        },
        "code_version": code_salt()[:16],
        "sweep": sweep,
        "read_stage_batch": kernel,
    }
    with open(OUT_PATH, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")

    lines = [
        "fastpath lane contracts",
        "=======================",
        f"grid: {len(WORKLOADS)} workloads x {len(SCHEMES)} schemes "
        f"@ {REQUESTS} req/core ({sweep['cells']} cells)",
        f"DES-only wall:    {sweep['des_wall_s']:.2f}s",
        f"fastpath wall:    {sweep['fastpath_wall_s']:.2f}s "
        f"({sweep['fastpath_cells']} analytic / {sweep['des_cells']} DES, "
        f"{sweep['recheck_samples']} rechecked, "
        f"{sweep['recheck_divergences']} divergences)",
        f"sweep speedup:    {sweep['speedup']:.1f}x "
        f"(contract: >= {MIN_SWEEP_SPEEDUP:.0f}x)",
        "",
        f"read_stage_batch {KERNEL_WRITES}x{KERNEL_UNITS}: "
        f"vector {kernel['vectorized_s'] * 1e3:.1f}ms, "
        f"scalar {kernel['scalar_s'] * 1e3:.1f}ms -> "
        f"{kernel['speedup']:.0f}x (contract: >= {MIN_KERNEL_SPEEDUP:.0f}x, "
        f"bit-identical)",
        f"wrote {OUT_PATH.name}",
    ]
    emit("bench_fastpath", "\n".join(lines))

    assert sweep["fastpath_cells"] == sweep["cells"], (
        "auto mode left cells outside the envelope at the paper's "
        "operating point"
    )
    assert sweep["recheck_divergences"] == 0, (
        "differential recheck diverged from the DES"
    )
    assert sweep["speedup"] >= MIN_SWEEP_SPEEDUP, (
        f"fastpath speedup {sweep['speedup']}x is below the "
        f"{MIN_SWEEP_SPEEDUP:.0f}x contract"
    )
    assert kernel["speedup"] >= MIN_KERNEL_SPEEDUP, (
        f"vectorized read stage {kernel['speedup']}x is below the "
        f"{MIN_KERNEL_SPEEDUP:.0f}x contract"
    )


def main() -> int:
    test_fastpath_contracts()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
