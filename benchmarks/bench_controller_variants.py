"""Extension — controller-variant sensitivity: row buffer, coalescing, GCP.

Three controller/device knobs the paper holds fixed:

* **row buffer** — Table II uses flat 50 ns PCM reads; a row buffer
  (hit 30 ns / miss 60 ns) shifts read latency but not the scheme
  ranking.
* **write coalescing** — absorbing same-line writes in the queue reduces
  bank work for rewrite-heavy streams.
* **GCP granularity** — without the Global Charge Pump each chip packs
  its own 16-bit slices against a private budget of 32; the bank
  finishes with the slowest chip, costing Tetris some of its headroom.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.config import MemCtrlConfig, default_config
from repro.cpu.system import CMPSystem
from repro.experiments.fullsystem import (
    PrecomputedServiceModel,
    precompute_write_service,
    run_fullsystem,
)
from repro.memctrl.frfcfs import RowBufferModel
from repro.pcm.state import LineState, initial_line_content
from repro.schemes import get_scheme

from _bench_utils import emit


def test_row_buffer_sensitivity(benchmark, traces):
    trace = traces["canneal"]  # read-heavy: row locality matters most
    cfg = default_config()

    def run():
        rows = []
        for scheme in ("dcw", "tetris"):
            table = precompute_write_service(trace, scheme, cfg)
            flat = run_fullsystem(trace, scheme, cfg, table=table)
            rb_system = CMPSystem(
                trace, cfg, PrecomputedServiceModel(table, cfg),
                scheme_name=scheme,
                row_buffer=RowBufferModel(lines_per_row=32),
            )
            rb = rb_system.run()
            rows.append([scheme, flat.mean_read_latency_ns,
                         rb.mean_read_latency_ns])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["scheme", "flat 50ns reads", "row buffer 30/60ns"],
        rows,
        title="Extension — row-buffer model vs. flat PCM reads (canneal)",
    )
    emit("controller_row_buffer", table)
    # The ranking is insensitive to the read-path model.
    assert rows[1][1] < rows[0][1]
    assert rows[1][2] < rows[0][2]


def test_write_coalescing_sensitivity(benchmark, traces):
    trace = traces["vips"]  # write-heavy with hot lines
    plain_cfg = default_config()
    coal_cfg = plain_cfg.replace(memctrl=MemCtrlConfig(write_coalescing=True))

    def run():
        rows = []
        for scheme in ("dcw", "tetris"):
            plain = run_fullsystem(trace, scheme, plain_cfg)
            merged = run_fullsystem(trace, scheme, coal_cfg)
            rows.append([
                scheme,
                plain.mean_read_latency_ns, merged.mean_read_latency_ns,
                merged.controller.coalesced_writes,
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["scheme", "read lat", "read lat (coalescing)", "absorbed"],
        rows,
        title="Extension — write coalescing (vips)",
    )
    emit("controller_coalescing", table)
    assert rows[0][3] > 0          # hot lines do coalesce
    for r in rows:
        assert r[2] <= r[1] * 1.05  # never meaningfully worse


def test_gcp_granularity(benchmark, traces):
    """Bank-pooled (GCP) vs. per-chip Tetris scheduling on real lines."""
    cfg = default_config()
    rng = np.random.default_rng(4)
    bank_scheme = get_scheme("tetris", cfg)
    chip_scheme = get_scheme("tetris", cfg, granularity="chip")

    def run():
        bank_units = chip_units = 0.0
        n = 250
        for w in range(n):
            old = initial_line_content(9, w)
            new = old ^ rng.integers(0, 1 << 22, size=8, dtype=np.uint64)
            bank_units += bank_scheme.write(
                LineState.from_logical(old.copy()), new
            ).units
            chip_units += chip_scheme.write(
                LineState.from_logical(old.copy()), new
            ).units
        return bank_units / n, chip_units / n

    bank_units, chip_units = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["granularity", "mean write units"],
        [["bank (GCP pooled, budget 128)", bank_units],
         ["chip (private budgets of 32)", chip_units]],
        title="Extension — GCP pooling vs. per-chip scheduling",
    )
    table += (
        "\nWithout GCP, data skew across chips stalls the bank on its"
        "\nbusiest chip — the reason §IV adopts the global charge pump."
    )
    emit("controller_gcp", table)
    assert chip_units >= bank_units - 1e-9
