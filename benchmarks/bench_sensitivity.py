"""Sensitivity — organization knobs the paper fixes (banks, queues, MLP).

Does the Tetris-vs-baseline conclusion depend on Table II's particular
organization?  Three sweeps say no:

* **bank count** — more banks dilute per-bank queueing for everyone;
* **write-queue depth** — deeper queues defer drains for everyone;
* **MLP window** — an O3-like core hides some read latency, validating
  the DESIGN.md §4 substitution of blocking timing cores.
"""

from repro.analysis.report import format_table
from repro.config import CPUConfig, MemCtrlConfig, PCMOrganization, default_config
from repro.experiments.fullsystem import run_fullsystem

from _bench_utils import emit


def _speedup(trace, cfg):
    dcw = run_fullsystem(trace, "dcw", cfg)
    tetris = run_fullsystem(trace, "tetris", cfg)
    return (
        dcw.runtime_ns / tetris.runtime_ns,
        dcw.mean_read_latency_ns / tetris.mean_read_latency_ns,
    )


def test_bank_count_sensitivity(benchmark, traces):
    trace = traces["dedup"]

    def run():
        rows = []
        for banks in (4, 8, 16):
            cfg = default_config().replace(
                organization=PCMOrganization(num_banks=banks)
            )
            rt, rd = _speedup(trace, cfg)
            rows.append([banks, rt, rd])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["banks", "runtime speedup", "read-latency speedup"],
        rows,
        title="Sensitivity — Tetris vs DCW across bank counts (dedup)",
    )
    emit("sensitivity_banks", table)
    for banks, rt, rd in rows:
        assert rt > 1.0 and rd > 1.0, banks


def test_write_queue_depth_sensitivity(benchmark, traces):
    trace = traces["vips"]

    def run():
        rows = []
        for depth, hi, lo in ((16, 14, 4), (32, 28, 8), (64, 56, 16)):
            cfg = default_config().replace(
                memctrl=MemCtrlConfig(
                    write_queue_entries=depth,
                    drain_high_watermark=hi,
                    drain_low_watermark=lo,
                )
            )
            rt, rd = _speedup(trace, cfg)
            rows.append([depth, rt, rd])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["write queue", "runtime speedup", "read-latency speedup"],
        rows,
        title="Sensitivity — Tetris vs DCW across queue depths (vips)",
    )
    emit("sensitivity_queue", table)
    for depth, rt, rd in rows:
        assert rt > 1.0 and rd > 1.0, depth


def test_mlp_sensitivity(benchmark, traces):
    trace = traces["ferret"]

    def run():
        rows = []
        for mlp in (1, 2, 4, 8):
            cfg = default_config().replace(
                cpu=CPUConfig(max_outstanding_reads=mlp)
            )
            rt, rd = _speedup(trace, cfg)
            rows.append([mlp, rt, rd])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["MLP window", "runtime speedup", "read-latency speedup"],
        rows,
        title="Sensitivity — Tetris vs DCW across MLP windows (ferret)",
    )
    table += (
        "\nAn O3-like window hides some latency for every scheme, but"
        "\nthe Tetris advantage persists — the blocking-core substitute"
        "\nof DESIGN.md §4 does not manufacture the paper's result."
    )
    emit("sensitivity_mlp", table)
    for mlp, rt, rd in rows:
        assert rt > 1.0 and rd > 1.0, mlp