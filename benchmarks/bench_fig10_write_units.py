"""Figure 10 — the average number of write units per cache-line write.

Paper series: DCW baseline 8, Flip-N-Write 4, 2-Stage-Write 3,
Three-Stage-Write 2.5 (worst-case constants); Tetris Write measured at
1.06-1.46 depending on workload, highest where many cells change (dedup,
vips) and ~1 for the light workloads.
"""

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.report import format_table
from repro.experiments.fig10 import measure_write_units

from _bench_utils import emit


def test_fig10_write_units(benchmark, traces):
    rows = benchmark.pedantic(
        lambda: [measure_write_units(t) for t in traces.values()],
        rounds=1,
        iterations=1,
    )
    table = format_table(
        ["workload", "DCW", "FNW", "2SW", "3SW", "Tetris", "result", "subres"],
        [
            [r.workload, r.dcw, r.flip_n_write, r.two_stage, r.three_stage,
             r.tetris, r.tetris_result, r.tetris_subresult]
            for r in rows
        ],
        title="Figure 10 — average write units per cache-line write",
    )
    avg = arithmetic_mean([r.tetris for r in rows])
    table += f"\nTetris average: {avg:.3f}   (paper: 1.06 - 1.46 across workloads)"
    emit("fig10_write_units", table)

    # Shape: Tetris beats every baseline on every workload; its band
    # matches the paper's; the heavy workloads sit at the top.
    for r in rows:
        assert r.tetris < r.three_stage < r.two_stage < r.flip_n_write < r.dcw
    assert 0.95 <= avg <= 1.5
    by_name = {r.workload: r for r in rows}
    assert by_name["dedup"].tetris >= by_name["blackscholes"].tetris
    assert by_name["vips"].tetris >= by_name["canneal"].tetris
