"""Extension — process variation: does the conclusion survive slow dies?

Per-region lognormal cell-speed factors (unit mean) stretch every
scheme's pulses alike, so the Fig 11-14 ranking must be — and is —
invariant; what variation does change is the *tail*: slow regions make
the baseline's already-long drains pathological while Tetris's short
writes keep the p99 bounded.
"""

from repro.analysis.report import format_table
from repro.experiments.fullsystem import precompute_write_service, run_fullsystem
from repro.pcm.variation import ProcessVariation

from _bench_utils import emit


def test_variation_robustness(benchmark, traces):
    trace = traces["dedup"]

    def run():
        rows = []
        for sigma in (0.0, 0.15, 0.3):
            pv = ProcessVariation(sigma=sigma) if sigma else None
            res = {}
            for scheme in ("dcw", "tetris"):
                table = precompute_write_service(trace, scheme, variation=pv)
                res[scheme] = run_fullsystem(trace, scheme, table=table)
            rows.append([
                sigma,
                res["dcw"].mean_read_latency_ns,
                res["tetris"].mean_read_latency_ns,
                res["dcw"].controller.read_hist.percentile(99),
                res["tetris"].controller.read_hist.percentile(99),
                res["dcw"].runtime_ns / res["tetris"].runtime_ns,
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["sigma", "read lat DCW", "read lat Tetris", "p99 DCW",
         "p99 Tetris", "runtime speedup"],
        rows,
        title="Extension — cell-speed variation (dedup, per-region lognormal)",
    )
    emit("variation", table)

    for sigma, rd_d, rd_t, p99_d, p99_t, speedup in rows:
        assert rd_t < rd_d, sigma        # ranking invariant
        assert speedup > 1.5, sigma
    # Variation inflates the baseline's mean read latency more than
    # Tetris's in absolute ns (DCW's p99 already saturates the histogram
    # even without variation, so the means carry the comparison).
    growth_dcw = rows[-1][1] - rows[0][1]
    growth_tetris = rows[-1][2] - rows[0][2]
    assert growth_dcw >= growth_tetris