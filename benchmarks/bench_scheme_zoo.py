"""Scheme-zoo cross-paper grid: all registered schemes x all workloads.

The ISSUE 10 acceptance grid: every registered scheme (the paper's six,
the two extensions, and the WIRE / DATACON / PALP zoo) across the eight
PARSEC-like workloads through the SweepEngine on the ``auto`` lane —
priced schemes ride the oracle-certified fastpath, ``palp`` exercises
the DES routing of unpriced schemes.  Emits ``BENCH_scheme_zoo.json``
at the repo root with one normalized-vs-DCW row per (scheme, workload)
cell, and enforces the zoo's headline cross-paper guarantee on the full
grid: WIRE's mean write energy never exceeds Flip-N-Write's in any
workload column.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from _bench_utils import REQUESTS_PER_CORE, SEED, emit

from repro.parallel import ResultCache, SweepEngine, code_salt
from repro.schemes import SCHEME_REGISTRY
from repro.trace.workloads import WORKLOAD_NAMES

WORKLOADS = tuple(WORKLOAD_NAMES)
SCHEMES = tuple(sorted(SCHEME_REGISTRY))
BASELINE = "dcw"

OUT_PATH = Path(__file__).parent.parent / "BENCH_scheme_zoo.json"

#: Normalized-vs-DCW row fields (ratio < 1 is better for all but ipc).
METRICS = ("runtime_ns", "read_latency_ns", "write_latency_ns", "ipc",
           "mean_write_units", "mean_write_energy")


def _run_grid():
    with tempfile.TemporaryDirectory(prefix="bench-zoo-") as tmp:
        res = SweepEngine(
            requests_per_core=REQUESTS_PER_CORE, root_seed=SEED, workers=1,
            cache=ResultCache(Path(tmp) / "store"), fastpath="auto",
            certificate_path=Path(tmp) / "certificate.json",
        ).run(SCHEMES, WORKLOADS)
        res.raise_errors()
    return res


def test_scheme_zoo_grid():
    res = _run_grid()
    cells = {(r.workload, r.scheme): r for r in res.rows}
    assert len(cells) == len(SCHEMES) * len(WORKLOADS), "grid has holes"

    rows = []
    for workload in WORKLOADS:
        base = cells[(workload, BASELINE)]
        for scheme in SCHEMES:
            r = cells[(workload, scheme)]
            norm = {}
            for m in METRICS:
                b = getattr(base, m)
                norm[m] = round(getattr(r, m) / b, 4) if b else None
            rows.append({
                "workload": workload,
                "scheme": scheme,
                "lane": "des" if r.events else "fastpath",
                **{m: getattr(r, m) for m in METRICS},
                "normalized_vs_dcw": norm,
            })

    # Cross-paper guarantee on the full grid: WIRE's energy column never
    # exceeds Flip-N-Write's (equality allowed — without payloads the
    # count tables price both identically; the strict win is pinned
    # per-line by the wire_vs_fnw_energy metamorphic relation).
    for workload in WORKLOADS:
        wire = cells[(workload, "wire")].mean_write_energy
        fnw = cells[(workload, "flip_n_write")].mean_write_energy
        assert wire <= fnw + 1e-9, (
            f"{workload}: WIRE energy {wire} exceeds FNW {fnw}"
        )
    # And PALP never schedules a longer write stage than Tetris.
    for workload in WORKLOADS:
        palp = cells[(workload, "palp")].mean_write_units
        tetris = cells[(workload, "tetris")].mean_write_units
        assert palp <= tetris + 1e-9, (
            f"{workload}: PALP units {palp} exceed Tetris {tetris}"
        )

    doc = {
        "grid": {
            "workloads": list(WORKLOADS),
            "schemes": list(SCHEMES),
            "requests_per_core": REQUESTS_PER_CORE,
            "seed": SEED,
            "baseline": BASELINE,
        },
        "code_version": code_salt()[:16],
        "lanes": {
            "fastpath": res.stats.fastpath_cells,
            "des": res.stats.des_cells,
        },
        "rows": rows,
    }
    with open(OUT_PATH, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")

    by_scheme = {
        s: [r for r in rows if r["scheme"] == s] for s in SCHEMES
    }
    lines = [
        "scheme zoo — cross-paper grid (normalized to dcw, geomean "
        "across workloads)",
        "=" * 68,
        f"{'scheme':<15} {'lane':<9} {'runtime':>8} {'ipc':>8} "
        f"{'units':>8} {'energy':>8}",
    ]

    def _geomean(vals):
        vals = [v for v in vals if v]
        if not vals:
            return float("nan")
        prod = 1.0
        for v in vals:
            prod *= v
        return prod ** (1.0 / len(vals))

    for scheme in SCHEMES:
        rs = by_scheme[scheme]
        lane = rs[0]["lane"]
        g = {
            m: _geomean([r["normalized_vs_dcw"][m] for r in rs])
            for m in ("runtime_ns", "ipc", "mean_write_units",
                      "mean_write_energy")
        }
        lines.append(
            f"{scheme:<15} {lane:<9} {g['runtime_ns']:>8.3f} "
            f"{g['ipc']:>8.3f} {g['mean_write_units']:>8.3f} "
            f"{g['mean_write_energy']:>8.3f}"
        )
    lines.append("")
    lines.append(
        f"{len(rows)} cells ({res.stats.fastpath_cells} fastpath / "
        f"{res.stats.des_cells} DES); WIRE <= FNW energy and "
        f"PALP <= Tetris units hold on the full grid"
    )
    lines.append(f"wrote {OUT_PATH.name}")
    emit("bench_scheme_zoo", "\n".join(lines))


def main() -> int:
    test_scheme_zoo_grid()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
