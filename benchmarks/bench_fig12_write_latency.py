"""Figure 12 — normalized write latency vs. the DCW baseline.

Paper: Tetris reduces write latency by > 40 % on average and beats
Flip-N-Write / 2-Stage-Write / Three-Stage-Write by 15 / 7 / 5 points.
In blackscholes and swaptions the improvement is "not that obvious":
their write queues rarely fill, so queue waiting (identical across
schemes) dominates the scheme-dependent service time.
"""

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.report import format_table
from repro.experiments.fullsystem import run_fullsystem

from _bench_utils import SCHEMES, emit

LIGHT = ("blackscholes", "swaptions")


def test_fig12_write_latency(benchmark, traces, fullsystem_grid, grid_baseline):
    benchmark.pedantic(
        lambda: run_fullsystem(traces["vips"], "tetris"), rounds=1, iterations=1
    )

    compared = [s for s in SCHEMES if s != "dcw"]
    rows, norm = [], {s: [] for s in compared}
    for wl in traces:
        base = grid_baseline[wl]
        row = [wl]
        for s in compared:
            r = next(x for x in fullsystem_grid if x.workload == wl and x.scheme == s)
            v = r.normalized(base)["write_latency"]
            norm[s].append(v)
            row.append(v)
        rows.append(row)
    rows.append(["AVERAGE"] + [arithmetic_mean(norm[s]) for s in compared])

    table = format_table(
        ["workload", "FNW", "2SW", "3SW", "Tetris"],
        rows,
        title="Figure 12 — write latency normalized to DCW (lower is better)",
    )
    table += "\npaper: Tetris > 40% reduction; +15/+7/+5 pts over FNW/2SW/3SW"
    table += "\npaper nuance: blackscholes/swaptions barely improve (wait-dominated)"
    emit("fig12_write_latency", table)

    heavy = [wl for wl in traces if wl not in LIGHT]
    wl_list = list(traces)
    for wl in heavy:
        i = wl_list.index(wl)
        fnw, tsw2, tsw3, tet = rows[i][1:]
        assert tet < tsw3 <= tsw2 < fnw, wl
        assert tet < 0.7, wl
    # The read-dominant nuance: light workloads barely improve.
    for wl in LIGHT:
        i = wl_list.index(wl)
        assert rows[i][4] > 0.85, wl
    # Average reduction is substantial overall.
    assert arithmetic_mean(norm["tetris"]) < 0.75
