"""Cost of the fault subsystem on the scheme hot path (docs/FAULTS.md).

The robustness PR's bargain is: full program-and-verify machinery when
you ask for it, (near) zero cost when you don't.  Checked here:

1. **Disabled is <2% overhead.**  With ``faults.enabled=False`` the
   write path pays one ``if self.faults is None`` test plus the O(1)
   wear counter, so per-write time must stay within 2% of a direct
   ``_write_once`` loop — the pristine pre-fault-subsystem path, which
   still exists verbatim as the template-method hook and is the honest
   baseline to time.
2. **Enabled overhead is bounded and visible.**  The zero-rate enabled
   run (every write verified once, no retries) is reported alongside so
   the price of always-on verification stays on the dashboard.

Interleaved best-of-REPEATS minima, as in ``bench_simlint_overhead``:
minima discard scheduler noise and interleaving keeps the
configurations comparable on a loaded machine.
"""

from __future__ import annotations

import time

import numpy as np

from repro.config import FaultConfig, default_config
from repro.pcm.state import LineState
from repro.schemes.base import get_scheme

from _bench_utils import emit
from repro.analysis.report import format_table

N_WRITES = 800
REPEATS = 3
SEED = 20160816


def _make_workload(n_writes: int) -> np.ndarray:
    rng = np.random.default_rng(SEED)
    lines = rng.integers(0, 1 << 63, size=(n_writes + 1, 8), dtype=np.uint64)
    masks = rng.integers(0, 1 << 16, size=(n_writes + 1, 8), dtype=np.uint64)
    return lines ^ masks


def _config(mode: str):
    if mode == "pristine":
        return default_config().replace(track_wear=False)
    if mode == "disabled":
        return default_config()
    if mode == "zero_rate":
        return default_config().replace(
            faults=FaultConfig(enabled=True, seed=SEED)
        )
    raise ValueError(mode)


def _one_run(mode: str, payload: np.ndarray) -> float:
    """Per-write time (ns) for one TetrisWrite loop over the payload."""
    scheme = get_scheme("tetris", _config(mode))
    state = LineState.from_logical(payload[0])
    t0 = time.perf_counter()
    if mode == "pristine":
        for row in payload[1:]:
            scheme._write_once(state, row)
    else:
        for row in payload[1:]:
            scheme.write(state, row, line=0)
    elapsed = time.perf_counter() - t0
    return elapsed / (payload.shape[0] - 1) * 1e9


def test_disabled_fault_path_does_no_fault_work():
    """Flag off ⇒ no FaultModel exists and no retry pass ever runs."""
    payload = _make_workload(50)
    scheme = get_scheme("tetris", _config("disabled"))
    assert scheme.faults is None
    state = LineState.from_logical(payload[0])
    for row in payload[1:]:
        out = scheme.write(state, row, line=0)
        assert out.attempts == 1 and out.retried_bits == 0


def test_disabled_fault_path_overhead(monkeypatch):
    monkeypatch.delenv("REPRO_VERIFY", raising=False)
    payload = _make_workload(N_WRITES)

    # Global minima accumulated over interleaved rounds: a shared/loaded
    # machine adds noise an order of magnitude above the wrapper's real
    # cost (one attribute test + an O(1) wear counter per ~100us write),
    # so keep measuring until the minima have converged below the bound
    # (or the round budget runs out and the bench reports honestly).
    best = {"pristine_a": float("inf"), "disabled": float("inf"),
            "zero_rate": float("inf"), "pristine_b": float("inf")}
    for _ in range(8):
        for _ in range(REPEATS):
            best["pristine_a"] = min(best["pristine_a"], _one_run("pristine", payload))
            best["disabled"] = min(best["disabled"], _one_run("disabled", payload))
            best["zero_rate"] = min(best["zero_rate"], _one_run("zero_rate", payload))
            best["pristine_b"] = min(best["pristine_b"], _one_run("pristine", payload))
        pristine_so_far = min(best["pristine_a"], best["pristine_b"])
        if best["disabled"] <= pristine_so_far * 1.02:
            break

    pristine = min(best["pristine_a"], best["pristine_b"])
    disabled_pct = (best["disabled"] - pristine) / pristine * 100.0
    zero_rate_pct = (best["zero_rate"] - pristine) / pristine * 100.0

    rows = [
        ("pristine _write_once (run A)", f"{best['pristine_a']:9.1f}", ""),
        ("pristine _write_once (run B)", f"{best['pristine_b']:9.1f}", ""),
        ("faults disabled (default)", f"{best['disabled']:9.1f}",
         f"{disabled_pct:+.2f}%"),
        ("faults enabled, rate 0", f"{best['zero_rate']:9.1f}",
         f"{zero_rate_pct:+.2f}%"),
    ]
    emit(
        "fault_overhead",
        format_table(
            ["configuration", "ns/write", "vs pristine"],
            rows,
            title="Fault subsystem — TetrisWrite hot-path cost",
        ),
    )

    assert best["disabled"] <= pristine * 1.02, (
        f"zero-fault path overhead {disabled_pct:.2f}% exceeds 2% "
        f"({best['disabled']:.1f} vs {pristine:.1f} ns/write)"
    )
    # Zero-rate verification does real work (model pass per write); keep
    # a loose ceiling so a pathological regression trips the bench.
    assert best["zero_rate"] <= pristine * 5.0, (
        f"verify-path overhead exploded: {zero_rate_pct:.0f}%"
    )
