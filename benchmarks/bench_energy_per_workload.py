"""Energy per workload — quantifying Table I's energy column everywhere.

Normalized write energy per cache-line write (SET = 430, RESET = 106
units, the current x time products at the Table II operating point),
across all eight workloads.  Comparison-based schemes track the actual
bit-change profile (Fig 3), so light workloads (blackscholes) cost a
tiny fraction of the cell-oblivious schemes; 2-Stage-Write pays for all
512 cells regardless.
"""

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.report import format_table
from repro.experiments.fullsystem import precompute_write_service

from _bench_utils import emit

SCHEMES = ("conventional", "two_stage", "dcw", "flip_n_write",
           "three_stage", "tetris")


def test_energy_per_workload(benchmark, traces):
    def run():
        rows = []
        for name, trace in traces.items():
            row = [name]
            for scheme in SCHEMES:
                table = precompute_write_service(trace, scheme)
                row.append(float(table.energy.mean()))
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    avg = ["AVERAGE"] + [
        arithmetic_mean([r[i] for r in rows]) for i in range(1, len(SCHEMES) + 1)
    ]
    table = format_table(
        ["workload", "conv", "2SW", "DCW", "FNW", "3SW", "Tetris"],
        rows + [avg],
        float_fmt="{:.0f}",
        title="Write energy per cache-line write (normalized units)",
    )
    table += (
        "\nTable I quantified on every workload: conventional and"
        "\n2-Stage-Write pay for all 512 cells; the comparison-based"
        "\nfamily pays only for the Fig-3 change profile."
    )
    emit("energy_per_workload", table)

    by_wl = {r[0]: dict(zip(SCHEMES, r[1:])) for r in rows}
    for wl, e in by_wl.items():
        # Energy column of Table I: 2SW/conv >> comparison family.
        assert e["two_stage"] > 3 * e["tetris"], wl
        assert e["conventional"] > 3 * e["dcw"], wl
        # The flip family all pay the same change profile + read.
        assert abs(e["tetris"] - e["three_stage"]) < 1e-6, wl
    # blackscholes (2 bits/unit) is far cheaper than vips (~17).
    assert by_wl["blackscholes"]["tetris"] < by_wl["vips"]["tetris"] / 4
