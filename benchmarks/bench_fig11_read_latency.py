"""Figure 11 — normalized read latency vs. the DCW baseline.

Paper averages: Tetris 65 % reduction; Flip-N-Write 39 %, 2-Stage-Write
50 %, Three-Stage-Write 56 %.  Tetris wins on every workload; three of
eight workloads beat Three-Stage-Write by > 10 %.
"""

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.report import format_table
from repro.experiments.fullsystem import run_fullsystem

from _bench_utils import SCHEMES, emit

PAPER_AVG_REDUCTION = {
    "flip_n_write": 39.0, "two_stage": 50.0, "three_stage": 56.0, "tetris": 65.0,
}


def test_fig11_read_latency(benchmark, traces, fullsystem_grid, grid_baseline):
    benchmark.pedantic(
        lambda: run_fullsystem(traces["dedup"], "tetris"), rounds=1, iterations=1
    )

    compared = [s for s in SCHEMES if s != "dcw"]
    rows = []
    norm = {s: [] for s in compared}
    for wl in traces:
        base = grid_baseline[wl]
        row = [wl]
        for s in compared:
            r = next(x for x in fullsystem_grid if x.workload == wl and x.scheme == s)
            v = r.normalized(base)["read_latency"]
            norm[s].append(v)
            row.append(v)
        rows.append(row)
    avg_row = ["AVERAGE"] + [arithmetic_mean(norm[s]) for s in compared]
    rows.append(avg_row)

    table = format_table(
        ["workload", "FNW", "2SW", "3SW", "Tetris"],
        rows,
        title="Figure 11 — read latency normalized to DCW (lower is better)",
    )
    table += "\npaper average reductions: FNW 39%, 2SW 50%, 3SW 56%, Tetris 65%"
    table += "\nmeasured average reductions: " + ", ".join(
        f"{s} {100 * (1 - arithmetic_mean(norm[s])):.0f}%" for s in compared
    )
    emit("fig11_read_latency", table)

    # Shape: the paper's full ranking on every workload, Tetris on top.
    for i, wl in enumerate(traces):
        fnw, tsw2, tsw3, tet = rows[i][1:]
        assert tet < tsw3 < tsw2 < fnw < 1.0 + 1e-9, wl
    # Tetris's average reduction is substantial (paper: 65 %).
    assert arithmetic_mean(norm["tetris"]) < 0.6
