"""``make bench-quick``: the full Fig 11-14 grid -> ``BENCH_sweep.json``.

Runs the paper's full comparison grid (all eight PARSEC workloads x the
baseline + four compared schemes) twice through one shared result store:

1. **DES phase** — ``fastpath="off"``: every cell goes through the
   discrete-event simulator.  This is the reference wall clock and the
   source of the DES events/s hot-path metric.
2. **Fastpath phase** — ``fastpath="auto"``: the oracle-certified
   analytic lane prices every in-envelope cell; the seeded differential
   recheck re-runs a sample of them through the DES.  The shared store
   means those recheck rows are cache hits from phase 1, so the phase
   wall clock is the analytic lane's own cost.

The emitted ``BENCH_sweep.json`` carries the per-lane breakdown and the
headline ``speedup_vs_des`` ratio; the process exits non-zero if the
fastpath misses the >= 10x contract, any recheck sample diverges, or a
cell falls out of the envelope at the paper's operating point.

The grid is pinned (workloads, schemes, requests, seed) so the numbers
are comparable across commits; the cache store is a throwaway temp
directory so results never alias the user's store.

Run from the repo root::

    make bench-quick          # writes ./BENCH_sweep.json
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
from pathlib import Path

from repro.parallel import ResultCache, SweepEngine, code_salt
from repro.schemes import COMPARED_SCHEMES
from repro.trace.workloads import WORKLOAD_NAMES

# Pinned grid — change it and the baseline stops being comparable.
WORKLOADS = tuple(WORKLOAD_NAMES)
SCHEMES = ("dcw",) + tuple(COMPARED_SCHEMES)
REQUESTS = 4000
SEED = 20160816
WORKERS = 1

MIN_SPEEDUP = 10.0


def main(out_path: str = "BENCH_sweep.json") -> int:
    with tempfile.TemporaryDirectory(prefix="bench-sweep-") as tmp:
        store = Path(tmp) / "store"
        cert = Path(tmp) / "certificate.json"
        des = SweepEngine(
            requests_per_core=REQUESTS, root_seed=SEED, workers=WORKERS,
            cache=ResultCache(store), fastpath="off",
        ).run(SCHEMES, WORKLOADS)
        des.raise_errors()
        fast = SweepEngine(
            requests_per_core=REQUESTS, root_seed=SEED, workers=WORKERS,
            cache=ResultCache(store), fastpath="auto",
            certificate_path=cert,
        ).run(SCHEMES, WORKLOADS)
        fast.raise_errors()

    total_events = sum(r.events for r in des.rows)
    speedup = des.stats.wall_s / fast.stats.wall_s
    doc = {
        "grid": {
            "workloads": list(WORKLOADS),
            "schemes": list(SCHEMES),
            "requests_per_core": REQUESTS,
            "seed": SEED,
            "workers": WORKERS,
        },
        "host": {"cpu_count": os.cpu_count()},
        "code_version": code_salt()[:16],
        "cells": des.stats.cells,
        "des": {
            "wall_s": round(des.stats.wall_s, 4),
            "wall_s_per_cell": round(des.stats.wall_s / des.stats.cells, 4),
            "des_events": total_events,
            "events_per_sec": round(total_events / des.stats.wall_s, 1),
        },
        "fastpath": {
            "wall_s": round(fast.stats.wall_s, 4),
            "wall_s_per_cell": round(
                fast.stats.wall_s / fast.stats.cells, 4
            ),
            "lanes": {
                "fastpath": fast.stats.fastpath_cells,
                "des": fast.stats.des_cells,
            },
            "recheck_samples": fast.stats.recheck_samples,
            "recheck_divergences": fast.stats.recheck_divergences,
            "speedup_vs_des": round(speedup, 2),
        },
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out_path}: "
          f"DES {doc['des']['wall_s']}s "
          f"({doc['des']['events_per_sec']:,.0f} events/s), "
          f"fastpath {doc['fastpath']['wall_s']}s "
          f"({doc['fastpath']['lanes']['fastpath']}/{doc['cells']} cells "
          f"analytic, {doc['fastpath']['recheck_samples']} rechecked, "
          f"{doc['fastpath']['recheck_divergences']} divergences) "
          f"-> {speedup:.1f}x")
    failed = False
    if fast.stats.fastpath_cells != fast.stats.cells:
        print("ERROR: auto mode left cells outside the envelope at the "
              "paper's operating point", file=sys.stderr)
        failed = True
    if fast.stats.recheck_divergences != 0:
        print("ERROR: differential recheck diverged from the DES",
              file=sys.stderr)
        failed = True
    if speedup < MIN_SPEEDUP:
        print(f"ERROR: fastpath speedup {speedup:.1f}x is below the "
              f"{MIN_SPEEDUP:.0f}x contract", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:]))
