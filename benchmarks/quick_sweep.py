"""``make bench-quick``: a pinned small sweep -> ``BENCH_sweep.json``.

Emits a machine-readable perf baseline so future PRs have a trajectory
to compare against: wall-clock per cell, DES events per second (the
hot-path metric the Event/LRU tuning moves), and the warm-run cache hit
rate.  The grid is pinned (workloads, schemes, requests, seed) so the
numbers are comparable across commits; the cache store is a throwaway
temp directory so results never alias the user's store.

Run from the repo root::

    make bench-quick          # writes ./BENCH_sweep.json
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
from pathlib import Path

from repro.parallel import ResultCache, SweepEngine, code_salt

# Pinned grid — change it and the baseline stops being comparable.
WORKLOADS = ("dedup", "vips")
SCHEMES = ("dcw", "three_stage", "tetris")
REQUESTS = 600
SEED = 20160816
WORKERS = 2


def main(out_path: str = "BENCH_sweep.json") -> int:
    with tempfile.TemporaryDirectory(prefix="bench-sweep-") as tmp:
        store = Path(tmp) / "store"
        cold = SweepEngine(
            requests_per_core=REQUESTS, root_seed=SEED, workers=WORKERS,
            cache=ResultCache(store),
        ).run(SCHEMES, WORKLOADS)
        cold.raise_errors()
        warm = SweepEngine(
            requests_per_core=REQUESTS, root_seed=SEED, workers=WORKERS,
            cache=ResultCache(store),
        ).run(SCHEMES, WORKLOADS)
        warm.raise_errors()

    total_events = sum(r.events for r in cold.rows)
    doc = {
        "grid": {
            "workloads": list(WORKLOADS),
            "schemes": list(SCHEMES),
            "requests_per_core": REQUESTS,
            "seed": SEED,
            "workers": WORKERS,
        },
        "host": {"cpu_count": os.cpu_count()},
        "code_version": code_salt()[:16],
        "cells": cold.stats.cells,
        "cold": {
            "wall_s": round(cold.stats.wall_s, 4),
            "wall_s_per_cell": round(cold.stats.wall_s / cold.stats.cells, 4),
            "des_events": total_events,
            "events_per_sec": round(total_events / cold.stats.wall_s, 1),
        },
        "warm": {
            "wall_s": round(warm.stats.wall_s, 4),
            "cache_hit_rate": round(
                warm.stats.cache_hits / warm.stats.cells, 4
            ),
            "des_invocations": warm.stats.executed,
        },
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out_path}: "
          f"{doc['cold']['wall_s_per_cell']}s/cell cold, "
          f"{doc['cold']['events_per_sec']:,.0f} events/s, "
          f"warm hit rate {doc['warm']['cache_hit_rate']:.0%}")
    if warm.stats.executed != 0:
        print("ERROR: warm re-run invoked the DES", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:]))
