"""Extension — write pausing (the paper's refs [23-24]) vs. Tetris Write.

Write pausing attacks the same problem as Tetris — reads stuck behind
multi-microsecond writes — from the controller side.  This bench shows
the two are complementary but unequal: pausing rescues the DCW baseline's
read latency substantially, while Tetris leaves little for pausing to
reclaim because its writes are already short.
"""

from repro.analysis.report import format_table
from repro.config import MemCtrlConfig, default_config
from repro.experiments.fullsystem import run_fullsystem

from _bench_utils import emit


def test_write_pausing_interaction(benchmark, traces):
    trace = traces["dedup"]
    plain_cfg = default_config()
    pause_cfg = plain_cfg.replace(memctrl=MemCtrlConfig(write_pausing=True))

    def run():
        rows = []
        for scheme in ("dcw", "three_stage", "tetris"):
            base = run_fullsystem(trace, scheme, plain_cfg)
            paused = run_fullsystem(trace, scheme, pause_cfg)
            gain = 1.0 - paused.mean_read_latency_ns / base.mean_read_latency_ns
            rows.append([
                scheme,
                base.mean_read_latency_ns,
                paused.mean_read_latency_ns,
                100.0 * gain,
                paused.controller.write_pauses,
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["scheme", "read lat (ns)", "with pausing", "gain (%)", "pauses"],
        rows,
        title="Extension — write pausing x write scheme (dedup)",
    )
    table += (
        "\nPausing reclaims most when writes are long (DCW); Tetris's"
        "\nshort writes leave it little to do — scheduling at the chip"
        "\nattacks the root cause the controller-side fix works around."
    )
    emit("write_pausing", table)

    by = {r[0]: r for r in rows}
    # Pausing helps the baseline substantially...
    assert by["dcw"][3] > 10.0
    assert by["dcw"][4] > 0
    # ...and helps Tetris less (in relative terms).
    assert by["tetris"][3] < by["dcw"][3]
