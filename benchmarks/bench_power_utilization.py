"""§III motivation — power-budget utilization per scheme.

The paper's core observation: existing schemes reserve the worst-case
current for every write unit while the actual draw is tiny (9.6 changed
bits per 64), so "the current is often excessively supplied but is not
used effectively" — it pins Flip-N-Write at ≈ 30 % in its bit-count
metric.  This bench computes the time-integrated utilization for every
scheme and workload: Tetris's packing is precisely a utilization
maximizer, and the measured gap between it and the baselines *is* the
paper's Figure-10 gap seen from the power side.
"""

import numpy as np

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.power_util import power_utilization
from repro.analysis.report import format_table

from _bench_utils import emit

SCHEMES = ("dcw", "flip_n_write", "two_stage", "three_stage", "tetris")


def test_power_utilization(benchmark, traces):
    def run():
        rows = []
        for name, trace in traces.items():
            n_set = trace.write_counts[..., 0].astype(int)
            n_reset = trace.write_counts[..., 1].astype(int)
            row = [name]
            for scheme in SCHEMES:
                util = power_utilization(n_set, n_reset, scheme)
                row.append(100.0 * float(util.mean()))
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    avg = ["AVERAGE"] + [
        arithmetic_mean([r[i] for r in rows]) for i in range(1, len(SCHEMES) + 1)
    ]
    table = format_table(
        ["workload", "DCW", "FNW", "2SW", "3SW", "Tetris"],
        rows + [avg],
        float_fmt="{:.1f}",
        title="Power-budget utilization per write, % (§III motivation)",
    )
    table += (
        "\nPaper anchor: FNW ~30% in the bit-count metric.  Caveats the"
        "\nnumbers surface: 2SW scores 'high' only because it programs"
        "\nall 512 cells (inflated useful work, not efficiency), and"
        "\nTetris's residual waste is the one-write-unit floor — a tiny"
        "\nblackscholes write still reserves a full Tset."
    )
    emit("power_utilization", table)

    by = {r[0]: dict(zip(SCHEMES, r[1:])) for r in rows}
    for wl, u in by.items():
        # Ordering: each scheme's tighter reservation raises utilization
        # (2SW excluded: programming all cells inflates its numerator).
        assert u["dcw"] < u["flip_n_write"] < u["three_stage"] < u["tetris"], wl
        assert u["tetris"] <= 100.0
    # The motivation's magnitude: baselines sit far below half-used,
    # Tetris recovers a multiple of the best baseline.
    assert avg[1] < 15.0          # DCW
    assert avg[2] < 30.0          # FNW
    assert avg[5] > 2 * avg[4]    # Tetris >> 3SW