"""Ablation benches — sensitivity of Tetris Write to its design inputs.

Not in the paper; these quantify the design choices DESIGN.md calls out:
the power budget (incl. the §I mobile modes), the two asymmetries, and
the flip stage's contribution.
"""

from repro.analysis.report import format_table
from repro.experiments.ablation import (
    sweep_no_flip,
    sweep_power_asymmetry,
    sweep_power_budget,
    sweep_time_asymmetry,
    sweep_write_unit_width,
)

from _bench_utils import emit


def _table(points, title):
    return format_table(
        ["parameter", "value", "mean units", "result", "subresult"],
        [[p.parameter, p.value, p.mean_units, p.mean_result, p.mean_subresult]
         for p in points],
        title=title,
    )


def test_ablation_power_budget(benchmark, traces):
    points = benchmark.pedantic(
        lambda: sweep_power_budget(traces["dedup"]), rounds=1, iterations=1
    )
    emit("ablation_budget", _table(points, "Ablation — bank power budget (dedup)"))
    units = [p.mean_units for p in points]
    assert all(a >= b - 1e-9 for a, b in zip(units, units[1:]))
    # At the paper's budget (128) dedup sits in the Fig-10 band.
    at128 = next(p for p in points if p.value == 128.0)
    assert 1.0 <= at128.mean_units <= 1.6


def test_ablation_time_asymmetry(benchmark, traces):
    points = benchmark.pedantic(
        lambda: sweep_time_asymmetry(traces["ferret"]), rounds=1, iterations=1
    )
    emit("ablation_K", _table(points, "Ablation — time asymmetry K (ferret)"))
    by_K = {int(p.value): p.mean_units for p in points}
    # Larger K shrinks each appended write-0 sub-slot: units non-increasing.
    assert by_K[16] <= by_K[1] + 1e-9


def test_ablation_power_asymmetry(benchmark, traces):
    points = benchmark.pedantic(
        lambda: sweep_power_asymmetry(traces["vips"]), rounds=1, iterations=1
    )
    emit("ablation_L", _table(points, "Ablation — power asymmetry L (vips)"))
    units = [p.mean_units for p in points]
    assert all(b >= a - 1e-9 for a, b in zip(units, units[1:]))


def test_ablation_mobile_write_units(benchmark, traces):
    points = benchmark.pedantic(
        lambda: sweep_write_unit_width(traces["dedup"]), rounds=1, iterations=1
    )
    emit(
        "ablation_mobile",
        _table(points, "Ablation — §I mobile division modes (dedup)"),
    )
    by_w = {int(p.value): p.mean_units for p in points}
    assert by_w[2] > by_w[4] > by_w[8] > by_w[16]


def test_ablation_flip_contribution(benchmark, traces):
    points = benchmark.pedantic(
        lambda: sweep_no_flip(traces["vips"]), rounds=1, iterations=1
    )
    emit("ablation_flip", _table(points, "Ablation — flip stage contribution (vips)"))
    flip_pt = next(p for p in points if p.value == 1.0)
    noflip_pt = next(p for p in points if p.value == 0.0)
    assert noflip_pt.mean_units >= flip_pt.mean_units
