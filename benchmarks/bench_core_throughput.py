"""Micro-benchmarks of the hot kernels (classic pytest-benchmark usage).

These are the pieces a user extending the library will call in bulk:
the vectorized read stage, the batch Algorithm-2 packer, and a single
full-system DES run.  They track regressions rather than paper results.
"""

import numpy as np

from repro.core.batch import pack_batch
from repro.core.read_stage import read_stage_batch
from repro.experiments.fullsystem import precompute_write_service, run_fullsystem
from repro.trace.synthetic import generate_trace


def test_read_stage_batch_throughput(benchmark):
    rng = np.random.default_rng(0)
    n = 20000
    old = rng.integers(0, 1 << 63, size=(n, 8), dtype=np.uint64)
    flips = np.zeros((n, 8), dtype=bool)
    new = old ^ rng.integers(0, 1 << 16, size=(n, 8), dtype=np.uint64)
    result = benchmark(read_stage_batch, old, flips, new)
    assert result.n_set.shape == (n, 8)


def test_pack_batch_throughput(benchmark):
    rng = np.random.default_rng(0)
    n_set = rng.poisson(6.7, size=(20000, 8))
    n_reset = rng.poisson(2.9, size=(20000, 8))
    packed = benchmark(pack_batch, n_set, n_reset)
    assert packed.result.shape == (20000,)


def test_precompute_tetris_throughput(benchmark):
    trace = generate_trace("vips", requests_per_core=2000, seed=1)
    table = benchmark(precompute_write_service, trace, "tetris")
    assert table.service_ns.size == trace.n_writes


def test_fullsystem_run_throughput(benchmark):
    trace = generate_trace("ferret", requests_per_core=1000, seed=1)
    result = benchmark.pedantic(
        lambda: run_fullsystem(trace, "tetris"), rounds=2, iterations=1
    )
    assert result.total_instructions > 0
