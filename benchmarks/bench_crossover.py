"""Crossover — memory intensity at which write scheduling starts to pay.

Sweeps the arrival intensity of the dedup workload (factor 1.0 = its
Table III rates) and reports every scheme's runtime against DCW.  The
shape the task cares about: all curves at ~1.0 when compute-bound, the
paper's ordering once write-bound, and the knee in between.
"""

from repro.analysis.report import format_table
from repro.experiments.crossover import find_knee, sweep_intensity

from _bench_utils import emit


def test_intensity_crossover(benchmark):
    points = benchmark.pedantic(
        lambda: sweep_intensity("dedup", requests_per_core=1200),
        rounds=1,
        iterations=1,
    )
    rows = [
        [p.intensity,
         p.runtime_ratio["flip_n_write"],
         p.runtime_ratio["three_stage"],
         p.runtime_ratio["tetris"]]
        for p in points
    ]
    knee = find_knee(points)
    table = format_table(
        ["intensity (x Table III)", "FNW", "3SW", "Tetris"],
        rows,
        title="Crossover — runtime vs DCW across memory intensity (dedup)",
    )
    table += (
        f"\nknee: Tetris first beats DCW by >5% at intensity {knee}"
        "\n(below it the cores are compute-bound and the scheme is moot)"
    )
    emit("crossover", table)

    by_intensity = {p.intensity: p for p in points}
    # Compute-bound end: everything within a few percent of the baseline.
    assert by_intensity[0.05].runtime_ratio["tetris"] > 0.93
    # Write-bound end: the paper's full ordering and a large gap.
    heavy = by_intensity[4.0].runtime_ratio
    assert heavy["tetris"] < heavy["three_stage"] < heavy["flip_n_write"] < 1.0
    assert heavy["tetris"] < 0.6
    # The knee exists and sits between the extremes.
    assert knee is not None and 0.05 < knee <= 4.0
    # Monotone separation: Tetris's advantage never shrinks as intensity
    # grows (allowing small simulation noise).
    ratios = [p.runtime_ratio["tetris"] for p in points]
    assert all(b <= a + 0.03 for a, b in zip(ratios, ratios[1:]))
