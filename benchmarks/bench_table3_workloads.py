"""Table III — workload characteristics (RPKI / WPKI) of the 8 PARSEC apps.

The synthetic generator is calibrated to the paper's measured rates; this
bench regenerates the table from the traces themselves and checks the
measured rates land on the published ones.
"""

import pytest

from repro.analysis.report import format_table
from repro.trace.workloads import PARSEC_WORKLOADS

from _bench_utils import emit


def test_table3_workload_characteristics(benchmark, traces):
    measured = benchmark.pedantic(
        lambda: {name: t.measured_rpki_wpki() for name, t in traces.items()},
        rounds=1,
        iterations=1,
    )
    rows = []
    for name, profile in PARSEC_WORKLOADS.items():
        rpki, wpki = measured[name]
        rows.append([
            name, profile.domain, profile.sharing, profile.exchange,
            profile.rpki, rpki, profile.wpki, wpki,
        ])
    table = format_table(
        ["program", "domain", "sharing", "exchange",
         "RPKI(paper)", "RPKI(meas)", "WPKI(paper)", "WPKI(meas)"],
        rows,
        float_fmt="{:.2f}",
        title="Table III — multi-threaded workloads (paper vs. measured)",
    )
    emit("table3_workloads", table)

    for name, profile in PARSEC_WORKLOADS.items():
        rpki, wpki = measured[name]
        assert rpki == pytest.approx(profile.rpki, rel=0.12), name
        assert wpki == pytest.approx(profile.wpki, rel=0.18), name
