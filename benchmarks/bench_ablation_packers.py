"""Ablation — how close is Algorithm 2's greedy FFD to optimal packing?

Algorithm 2 is a first-fit-decreasing heuristic; hardware cannot afford
an exact bin packer.  This bench measures, over real workload demand
distributions, how often FFD's write-unit count (`result`) equals the
exact optimum (subset-DP), and compares the best-fit and worst-fit
greedy alternatives.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.core.packers import (
    best_fit_decreasing_bins,
    ffd_bins,
    optimal_bins,
    worst_fit_decreasing_bins,
)

from _bench_utils import emit

BUDGET = 128.0
SAMPLES = 400


def test_ablation_packer_optimality(benchmark, traces):
    def run():
        rows = []
        for workload in ("blackscholes", "dedup", "ferret", "vips"):
            n_set = traces[workload].write_counts[:SAMPLES, :, 0].astype(float)
            ffd_total = bfd_total = wfd_total = opt_total = 0
            ffd_opt_hits = 0
            for demands in n_set:
                opt = optimal_bins(demands, BUDGET)
                ffd = ffd_bins(demands, BUDGET)
                ffd_total += ffd
                bfd_total += best_fit_decreasing_bins(demands, BUDGET)
                wfd_total += worst_fit_decreasing_bins(demands, BUDGET)
                opt_total += opt
                ffd_opt_hits += ffd == opt
            n = len(n_set)
            rows.append([
                workload,
                ffd_total / n, bfd_total / n, wfd_total / n, opt_total / n,
                100.0 * ffd_opt_hits / n,
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["workload", "FFD", "BFD", "WFD", "optimal", "FFD=opt (%)"],
        rows,
        title=(
            "Ablation — write-1 bins per write: Algorithm 2's FFD vs. "
            "alternatives (bank budget 128)"
        ),
    )
    table += (
        "\nAt the paper's operating point per-unit demands are far below"
        "\nthe budget, so the greedy FFD is effectively optimal — the"
        "\nhardware-friendly choice loses nothing."
    )
    emit("ablation_packers", table)

    for row in rows:
        workload, ffd, bfd, wfd, opt, hit_rate = row
        assert ffd >= opt - 1e-9
        assert bfd >= opt - 1e-9
        # FFD must be optimal on essentially every real write.
        assert hit_rate >= 99.0, workload
