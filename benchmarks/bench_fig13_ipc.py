"""Figure 13 — IPC improvement over the DCW baseline (Equation 6).

Paper averages: Tetris 2.0x, Three-Stage-Write 1.8x, 2-Stage-Write 1.6x,
Flip-N-Write 1.4x.  Tetris shows the largest improvement on every
workload.
"""

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.report import format_table
from repro.experiments.fullsystem import run_fullsystem

from _bench_utils import SCHEMES, emit

PAPER_AVG = {"flip_n_write": 1.4, "two_stage": 1.6, "three_stage": 1.8, "tetris": 2.0}


def test_fig13_ipc_improvement(benchmark, traces, fullsystem_grid, grid_baseline):
    benchmark.pedantic(
        lambda: run_fullsystem(traces["ferret"], "tetris"), rounds=1, iterations=1
    )

    compared = [s for s in SCHEMES if s != "dcw"]
    rows, norm = [], {s: [] for s in compared}
    for wl in traces:
        base = grid_baseline[wl]
        row = [wl]
        for s in compared:
            r = next(x for x in fullsystem_grid if x.workload == wl and x.scheme == s)
            v = r.normalized(base)["ipc_improvement"]
            norm[s].append(v)
            row.append(v)
        rows.append(row)
    rows.append(["AVERAGE"] + [arithmetic_mean(norm[s]) for s in compared])

    table = format_table(
        ["workload", "FNW", "2SW", "3SW", "Tetris"],
        rows,
        title="Figure 13 — IPC improvement over DCW (higher is better)",
    )
    table += "\npaper averages: FNW 1.4x, 2SW 1.6x, 3SW 1.8x, Tetris 2.0x"
    emit("fig13_ipc", table)

    # Shape: strict ranking on the memory-bound workloads; the two
    # near-idle ones (blackscholes/swaptions) differ by < 1 % between
    # schemes, where drain-timing noise can reorder neighbours.
    wl_list = list(traces)
    for i, wl in enumerate(wl_list):
        fnw, tsw2, tsw3, tet = rows[i][1:]
        if wl in ("blackscholes", "swaptions"):
            assert tet >= 0.99 and fnw >= 0.99, wl
        else:
            assert tet >= tsw3 >= tsw2 >= fnw >= 1.0 - 1e-9, wl
    # Tetris's average improvement is substantial; the memory-bound
    # workloads dominate the paper's 2x average.
    heavy = [v for wl, v in zip(traces, norm["tetris"])
             if wl not in ("blackscholes", "swaptions")]
    assert arithmetic_mean(heavy) > 1.6
