"""Extension — shortest-job-first write drains on top of Tetris Write.

A side benefit of the analysis stage the paper leaves on the table: by
the time a write sits in the controller's queue, its exact service time
``(result + subresult/K)·Tset`` is already known.  Draining a bank's
writes shortest-first instead of oldest-first minimizes mean queue wait
within each drain burst at zero hardware cost (the comparator already
exists for the queues' age ordering).
"""

from repro.analysis.report import format_table
from repro.config import MemCtrlConfig, default_config
from repro.experiments.fullsystem import run_fullsystem

from _bench_utils import emit


def test_sjf_drain_extension(benchmark, traces):
    fifo_cfg = default_config()
    sjf_cfg = fifo_cfg.replace(memctrl=MemCtrlConfig(drain_order="sjf"))

    def run():
        rows = []
        for workload in ("dedup", "ferret", "vips"):
            trace = traces[workload]
            fifo = run_fullsystem(trace, "tetris", fifo_cfg)
            sjf = run_fullsystem(trace, "tetris", sjf_cfg)
            rows.append([
                workload,
                fifo.mean_write_latency_ns,
                sjf.mean_write_latency_ns,
                fifo.mean_read_latency_ns,
                sjf.mean_read_latency_ns,
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["workload", "write lat FIFO", "write lat SJF",
         "read lat FIFO", "read lat SJF"],
        rows,
        title="Extension — FIFO vs. shortest-job-first write drains (Tetris)",
    )
    table += (
        "\nSJF exploits the analysis stage's exact service prediction;"
        "\nmean write wait within a drain burst shrinks, reads are"
        "\nessentially unaffected (drain total time is unchanged)."
    )
    emit("sjf_drain", table)

    for workload, wf, ws, rf, rs in rows:
        assert ws <= wf * 1.02, workload      # mean write wait not worse
        assert rs <= rf * 1.10, workload      # reads not penalized
