"""``make bench-service``: the job server end to end -> ``BENCH_service.json``.

Drives a live :class:`repro.service.SweepService` over its unix socket
with two concurrent tenants and emits a machine-readable baseline
(same contract as ``quick_sweep.py`` -> ``BENCH_sweep.json``):

* **jobs/s and cells/s** through the full submit -> schedule ->
  execute -> journal -> reply path;
* **p50/p99 submit-to-first-result latency** (submit frame sent to the
  first ``watch`` frame reporting a completed cell);
* **warm-cache replay ratio** — the same grids resubmitted by a third
  tenant must resolve entirely from the shared cache/journal with zero
  DES invocations.

The grid set is pinned so numbers are comparable across commits; state
lives in a throwaway temp directory.  Run from the repo root::

    make bench-service        # writes ./BENCH_service.json
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.parallel import ResultCache, code_salt
from repro.service import ServiceClient, SweepService

# Pinned job set — change it and the baseline stops being comparable.
SCHEMES = ("dcw", "tetris")
WORKLOADS = ("dedup",)
REQUESTS = 120
SEEDS = (1, 2, 3, 4, 5, 6, 7, 8)   # one job per seed: 8 jobs x 2 cells
WORKERS = 1


def pinned_jobs() -> list[dict]:
    return [
        {
            "schemes": list(SCHEMES),
            "workloads": list(WORKLOADS),
            "requests_per_core": REQUESTS,
            "seed": seed,
        }
        for seed in SEEDS
    ]


def serve_in_thread(state_dir: Path, sock_path: Path):
    """Run the service on a daemon thread; returns (thread, ready_event)."""
    ready = threading.Event()

    def runner() -> None:
        async def amain() -> None:
            svc = SweepService(
                state_dir=state_dir / "state",
                cache=ResultCache(state_dir / "cache"),
                workers=WORKERS,
                fsync=False,
            )
            server = await svc.serve_unix(sock_path)
            ready.set()
            # ``drain`` from the bench's main thread ends the service
            # once every job has finished.
            await svc.drained.wait()
            server.close()
            await server.wait_closed()
            await svc.shutdown()

        asyncio.run(amain())

    thread = threading.Thread(target=runner, name="bench-service", daemon=True)
    thread.start()
    return thread, ready


def tenant_run(client: ServiceClient, grids: list[dict], latencies: list[float]):
    """Submit all grids, then watch each to its first completed cell."""
    accepted = []
    for grid in grids:
        t0 = time.perf_counter()
        reply = client.submit(grid)
        accepted.append((reply["job"], t0, reply))
    for job_id, t0, reply in accepted:
        if reply.get("done", 0) >= 1:  # finished (or cache-hit) at submit
            latencies.append(time.perf_counter() - t0)
        else:
            for event in client.watch(job_id):
                if event.get("done", 0) >= 1:
                    latencies.append(time.perf_counter() - t0)
                    break
        final = client.wait(job_id)
        assert final["state"] == "done", final
        assert not final["errors"], final["errors"]


def percentile(sorted_samples: list[float], q: float) -> float:
    idx = min(len(sorted_samples) - 1, round(q * (len(sorted_samples) - 1)))
    return sorted_samples[idx]


def main(out_path: str = "BENCH_service.json") -> int:
    jobs = pinned_jobs()
    half = len(jobs) // 2
    with tempfile.TemporaryDirectory(prefix="bench-svc-") as tmp:
        tmp_path = Path(tmp)
        sock = tmp_path / "tw.sock"
        thread, ready = serve_in_thread(tmp_path, sock)
        if not ready.wait(30):
            print("ERROR: service did not come up", file=sys.stderr)
            return 1
        endpoint = f"unix:{sock}"

        # Cold phase: two concurrent tenants, half the job set each.
        latencies: list[float] = []
        tenants = [
            threading.Thread(
                target=tenant_run,
                args=(ServiceClient(endpoint, tenant=name), grids, latencies),
            )
            for name, grids in (
                ("alice", jobs[:half]),
                ("bob", jobs[half:]),
            )
        ]
        t_cold = time.perf_counter()
        for t in tenants:
            t.start()
        for t in tenants:
            t.join()
        cold_wall = time.perf_counter() - t_cold

        status = ServiceClient(endpoint).status()
        counters = status["counters"]

        # Warm phase: a third tenant replays every grid; everything must
        # come from the shared cache/journal with zero DES invocations.
        replay = ServiceClient(endpoint, tenant="replay")
        t_warm = time.perf_counter()
        for grid in jobs:
            reply = replay.submit(grid)
            assert reply["state"] == "done", reply
        warm_wall = time.perf_counter() - t_warm
        warm_counters = ServiceClient(endpoint).status()["counters"]

        ServiceClient(endpoint).drain()
        thread.join(timeout=30)

    n_cells = len(jobs) * len(SCHEMES) * len(WORKLOADS)
    executed = counters["cells_executed"]
    warm_executed = warm_counters["cells_executed"] - executed
    latencies.sort()
    doc = {
        "grid": {
            "jobs": len(jobs),
            "cells_per_job": len(SCHEMES) * len(WORKLOADS),
            "schemes": list(SCHEMES),
            "workloads": list(WORKLOADS),
            "requests_per_core": REQUESTS,
            "seeds": list(SEEDS),
            "tenants": 2,
            "workers": WORKERS,
        },
        "host": {"cpu_count": os.cpu_count()},
        "code_version": code_salt()[:16],
        "cold": {
            "wall_s": round(cold_wall, 4),
            "jobs_per_s": round(len(jobs) / cold_wall, 3),
            "cells_per_s": round(n_cells / cold_wall, 3),
            "cells_executed": executed,
            "submit_to_first_result_p50_s": round(percentile(latencies, 0.50), 4),
            "submit_to_first_result_p99_s": round(percentile(latencies, 0.99), 4),
        },
        "warm": {
            "wall_s": round(warm_wall, 4),
            "replay_ratio": round(warm_wall / cold_wall, 4),
            "des_invocations": warm_executed,
        },
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(
        f"wrote {out_path}: {doc['cold']['jobs_per_s']} jobs/s, "
        f"{doc['cold']['cells_per_s']} cells/s, "
        f"first-result p50 {doc['cold']['submit_to_first_result_p50_s']}s / "
        f"p99 {doc['cold']['submit_to_first_result_p99_s']}s, "
        f"warm replay ratio {doc['warm']['replay_ratio']}"
    )
    if executed != n_cells:
        print(
            f"ERROR: expected {n_cells} unique executions, got {executed}",
            file=sys.stderr,
        )
        return 1
    if warm_executed != 0:
        print("ERROR: warm replay invoked the DES", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:]))
