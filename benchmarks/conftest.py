"""Session fixtures for the experiment benches.

Every bench regenerates one paper table/figure: it runs the experiment,
prints the paper-style rows (visible with ``pytest -s``), and writes them
to ``benchmarks/out/<name>.txt`` so the artifacts survive captured
output.  The heavyweight full-system grid (used by Figs 11-14) is
computed once per session.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from _bench_utils import REQUESTS_PER_CORE, SCHEMES, SEED  # noqa: E402

from repro.experiments.runner import run_schemes_on_workloads  # noqa: E402
from repro.parallel import default_workers  # noqa: E402
from repro.trace.synthetic import generate_trace  # noqa: E402
from repro.trace.workloads import WORKLOAD_NAMES  # noqa: E402


@pytest.fixture(scope="session")
def traces():
    """One trace per workload, shared by every bench."""
    return {
        name: generate_trace(name, REQUESTS_PER_CORE, seed=SEED)
        for name in WORKLOAD_NAMES
    }


@pytest.fixture(scope="session")
def fullsystem_grid(traces):
    """The 8-workload x 5-scheme full-system sweep behind Figs 11-14.

    Runs through the parallel sweep engine: cells fan out over a process
    pool and replay from the on-disk result cache when warm (results are
    bit-identical either way; set REPRO_NO_CACHE=1 to force cold runs).
    """
    return run_schemes_on_workloads(
        SCHEMES, WORKLOAD_NAMES, requests_per_core=REQUESTS_PER_CORE,
        seed=SEED, traces=traces, workers=default_workers(),
    )


@pytest.fixture(scope="session")
def grid_baseline(fullsystem_grid):
    return {r.workload: r for r in fullsystem_grid if r.scheme == "dcw"}
