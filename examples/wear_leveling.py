#!/usr/bin/env python
"""Endurance: scheme choice, wear tracking and Start-Gap leveling.

PCM cells survive ~1e8 programs.  Two independent levers decide how long
a device lasts: *how many cells* each write programs (the write scheme)
and *how evenly* the programs spread over lines (wear leveling).  This
example measures both on a synthetic hot/cold write stream:

1. cells programmed per write under every scheme (Table I's endurance
   subtext — the comparison family programs ~20x fewer cells);
2. the hot line's fate with and without Start-Gap (paper ref [5]).

Run:  python examples/wear_leveling.py
"""

import numpy as np

from repro.analysis.report import format_table
from repro.pcm.state import LineState
from repro.pcm.wear import StartGapLeveler, WearTracker
from repro.schemes import get_scheme

rng = np.random.default_rng(11)

# ------------------------------------------------ 1. scheme-level wear
N_WRITES = 400
schemes = ("conventional", "two_stage", "dcw", "flip_n_write",
           "three_stage", "tetris")
rows = []
for name in schemes:
    scheme = get_scheme(name)
    state = LineState.from_logical(
        rng.integers(0, np.iinfo(np.uint64).max, size=8, dtype=np.uint64)
    )
    total = 0
    for _ in range(N_WRITES):
        new = state.logical ^ rng.integers(0, 1 << 12, size=8, dtype=np.uint64)
        out = scheme.write(state, new)
        total += out.n_set + out.n_reset
    rows.append([name, total / N_WRITES, 1e8 / max(total / N_WRITES, 1e-9)])

print(format_table(
    ["scheme", "cells programmed / write", "writes to 1e8-program budget"],
    rows,
    float_fmt="{:.1f}",
    title=f"Scheme-level wear over {N_WRITES} small writes to one line",
))

# ------------------------------------------- 2. Start-Gap wear leveling
REGION, STREAM = 64, 60_000
hot = rng.random(STREAM) < 0.8
lines = np.where(hot, 7, rng.integers(0, REGION, STREAM))  # line 7 is hot

flat, leveled = WearTracker(), WearTracker()
sg = StartGapLeveler(num_lines=REGION, gap_interval=16)
for la in lines:
    flat.record(int(la), 10, 0)
    leveled.record(sg.physical_of(int(la)), 10, 0)
    moved = sg.on_write(int(la))
    if moved is not None:
        leveled.record(moved, 10, 0)

fs, ls = flat.stats(), leveled.stats()
print()
print(format_table(
    ["metric", "no leveling", "Start-Gap"],
    [
        ["max programs on one line", fs.max_programs, ls.max_programs],
        ["wear CoV", f"{fs.cov:.3f}", f"{ls.cov:.3f}"],
        ["migration overhead", "0%", f"{sg.overhead_fraction:.1%}"],
        ["relative lifetime",
         "1.00x", f"{ls.lifetime_writes() / fs.lifetime_writes():.2f}x"],
    ],
    title=f"Start-Gap on an 80%-hot stream ({STREAM} writes, {REGION}-line region)",
))
