#!/usr/bin/env python
"""Scheme comparison across the eight PARSEC workloads (mini Figs 10-14).

Generates a calibrated synthetic trace per workload, runs the full-system
simulator under every scheme, and prints the paper's four normalized
metrics plus the measured write-unit counts.

Run:  python examples/scheme_comparison.py [requests_per_core]
"""

import sys

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.report import ascii_bar_chart, format_table
from repro.experiments.runner import run_schemes_on_workloads
from repro.trace.workloads import WORKLOAD_NAMES

SCHEMES = ("dcw", "flip_n_write", "two_stage", "three_stage", "tetris")

requests = int(sys.argv[1]) if len(sys.argv) > 1 else 1200
print(f"running {len(WORKLOAD_NAMES)} workloads x {len(SCHEMES)} schemes "
      f"at {requests} requests/core ...\n")

results = run_schemes_on_workloads(SCHEMES, requests_per_core=requests)
base = {r.workload: r for r in results if r.scheme == "dcw"}

for metric, title, better in (
    ("read_latency", "read latency vs DCW (Fig 11)", "lower"),
    ("write_latency", "write latency vs DCW (Fig 12)", "lower"),
    ("ipc_improvement", "IPC improvement vs DCW (Fig 13)", "higher"),
    ("running_time", "running time vs DCW (Fig 14)", "lower"),
):
    rows = []
    averages = {s: [] for s in SCHEMES[1:]}
    for wl in WORKLOAD_NAMES:
        row = [wl]
        for s in SCHEMES[1:]:
            r = next(x for x in results if x.workload == wl and x.scheme == s)
            v = r.normalized(base[wl])[metric]
            averages[s].append(v)
            row.append(v)
        rows.append(row)
    rows.append(["AVERAGE"] + [arithmetic_mean(averages[s]) for s in SCHEMES[1:]])
    print(format_table(
        ["workload", "FNW", "2SW", "3SW", "Tetris"], rows,
        title=f"{title}  ({better} is better)",
    ))
    print()

units = {
    s: arithmetic_mean(
        [r.mean_write_units for r in results if r.scheme == s]
    )
    for s in SCHEMES
}
print(ascii_bar_chart(units, title="average write units per cache-line write (Fig 10)"))
