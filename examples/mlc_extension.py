#!/usr/bin/env python
"""MLC extension: Tetris scheduling on 2-bit multi-level cells.

The paper sticks to SLC "for its better write performance"; this example
shows the scheduling idea survives the jump to MLC, where each of the
four target levels is its own burst class (level 0 = short high-current
RESET ... level 3 = long low-current full SET).  The generalized packer
lays the long full-SET bursts first and drops the shorter staircases and
RESETs into the current headroom they leave — the same Tetris picture
with four piece shapes instead of two.

Run:  python examples/mlc_extension.py
"""

import numpy as np

from repro.analysis.report import format_table
from repro.pcm.mlc import MLC_LEVEL_CLASSES, MLCModel, mlc_level_counts

rng = np.random.default_rng(3)
model = MLCModel(power_budget=128.0)

print("MLC burst classes (per programmed cell):")
print(format_table(
    ["class", "duration (sub-slots)", "current (SET units)"],
    [[c.name, c.duration_subslots, c.current_per_cell]
     for c in MLC_LEVEL_CLASSES],
))

# One cache line's worth of MLC updates: 8 units x 32 cells.
old = rng.integers(0, np.iinfo(np.uint64).max, size=8, dtype=np.uint64)
new = old ^ rng.integers(0, 1 << 28, size=8, dtype=np.uint64)

counts = mlc_level_counts(old, new)
print("\nchanged cells per unit and target level:")
print(format_table(
    ["unit", "->L0", "->L1", "->L2", "->L3"],
    [[u, *counts[u].tolist()] for u in range(8)],
))

sched = model.schedule_line(old, new)
serial = model.serial_ns(old, new)
print(f"\nserial MLC baseline : {serial:8.1f} ns")
print(f"generalized Tetris  : {sched.completion_ns():8.1f} ns "
      f"({serial / sched.completion_ns():.2f}x faster)")
print(f"peak current        : {sched.occupancy().max():.1f} / "
      f"{model.power_budget:.0f} SET units")
print(f"bursts placed       : {len(sched.bursts)}")

# Aggregate over many writes.
n = 500
serial_total = tetris_total = 0.0
for _ in range(n):
    o = rng.integers(0, np.iinfo(np.uint64).max, size=8, dtype=np.uint64)
    w = o ^ rng.integers(0, 1 << 24, size=8, dtype=np.uint64)
    serial_total += model.serial_ns(o, w)
    tetris_total += model.tetris_ns(o, w)
print(f"\nover {n} random writes: serial {serial_total / n:.0f} ns vs "
      f"Tetris {tetris_total / n:.0f} ns "
      f"({serial_total / tetris_total:.1f}x)")
