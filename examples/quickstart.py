#!/usr/bin/env python
"""Quickstart: schedule one cache-line write with every PCM scheme.

Walks the three Tetris Write stages on a single 64 B line and compares
the resulting service time against the four baselines:

1. **read** — compare the new data against the stored image, flip units
   that would change more than half their cells, count SET/RESET per unit;
2. **analysis** — pack the write-1 bursts into write units and drop the
   write-0 bursts into the interspaces (Algorithm 2);
3. **write** — replay the schedule through the FSM executor and verify it
   finishes at Equation 5's time.

Run:  python examples/quickstart.py
"""

import math

import numpy as np

from repro import analyze, default_config, execute_schedule, get_scheme, read_stage
from repro.analysis.report import format_table
from repro.pcm.state import LineState

cfg = default_config()
rng = np.random.default_rng(7)

# A stored cache line (8 x 64-bit data units) and an updated version of
# it: unit 0 gets a small counter bump, unit 3 a fresh 20-bit field,
# unit 6 an almost-complete rewrite (which will trigger a flip).
old = rng.integers(0, np.iinfo(np.uint64).max, size=8, dtype=np.uint64)
new = old.copy()
new[0] ^= np.uint64(0b1011)
new[3] ^= np.uint64(((1 << 20) - 1) << 12)
new[6] = ~old[6] ^ np.uint64(0xF)

# ---------------------------------------------------------------- stage 1
state = LineState.from_logical(old)
rs = read_stage(state.physical, state.flip, new)
print("Stage 1 — read (Algorithm 1):")
print(f"  flipped units : {np.nonzero(rs.flip)[0].tolist()}")
print(f"  SET per unit  : {rs.n_set.tolist()}")
print(f"  RESET per unit: {rs.n_reset.tolist()}")
print(f"  total programs: {rs.total_bit_writes} of 512 cells\n")

# ---------------------------------------------------------------- stage 2
sched = analyze(
    rs.n_set, rs.n_reset, K=cfg.K, L=cfg.L, power_budget=cfg.bank_power_budget
)
print("Stage 2 — analysis (Algorithm 2):")
print(f"  write units (result)      : {sched.result}")
print(f"  extra sub-slots (subresult): {sched.subresult}")
print(f"  service (Equation 5)      : {sched.service_units():.3f} x Tset "
      f"= {sched.service_time_ns(cfg.timings.t_set_ns):.1f} ns\n")

# ---------------------------------------------------------------- stage 3
trace = execute_schedule(sched, t_set_ns=cfg.timings.t_set_ns)
print("Stage 3 — individually write (FSM0 + FSM1):")
print(f"  completion : {trace.completion_ns:.1f} ns")
print(f"  peak current: {trace.peak_current():.0f} / {cfg.bank_power_budget:.0f} "
      "SET units\n")
assert math.isclose(trace.completion_ns, sched.service_time_ns(cfg.timings.t_set_ns))

# ------------------------------------------------------- scheme comparison
rows = []
for name in ("dcw", "conventional", "flip_n_write", "two_stage",
             "three_stage", "tetris"):
    scheme = get_scheme(name, cfg)
    out = scheme.write(LineState.from_logical(old.copy()), new)
    rows.append([name, out.units, out.service_ns, out.n_set + out.n_reset,
                 out.energy])
print(format_table(
    ["scheme", "write units", "service (ns)", "cells programmed", "energy"],
    rows,
    title="One cache-line write under every scheme (Table II operating point)",
))
