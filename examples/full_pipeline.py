#!/usr/bin/env python
"""Full pipeline: CPU address stream -> cache hierarchy -> PCM traces.

The paper's main experiments replay post-LLC traces directly; this
example shows the whole stack instead: a synthetic CPU-level address
stream is filtered through the Table II three-level cache hierarchy, the
resulting memory reads and dirty writebacks are packaged as a trace, and
that trace is simulated under DCW and Tetris Write.

It demonstrates (a) the cache substrate in the loop and (b) how a user
would connect an external CPU trace to the harness.

Run:  python examples/full_pipeline.py
"""

import numpy as np

from repro.analysis.report import format_table
from repro.cache.hierarchy import CacheHierarchy
from repro.config import default_config
from repro.experiments.fullsystem import run_fullsystem
from repro.trace.content import ContentModel
from repro.trace.record import OP_READ, OP_WRITE, RECORD_DTYPE, Trace
from repro.trace.workloads import get_workload

cfg = default_config()
rng = np.random.default_rng(42)

# ----------------------------------------------------------- CPU stream
# A loop-heavy synthetic program: a hot 2k-line region absorbs most
# accesses, a cold 512k-line region provides the misses; 30 % stores.
N_ACCESSES = 200_000
hot = rng.random(N_ACCESSES) < 0.85
lines = np.where(
    hot,
    rng.integers(0, 2_048, size=N_ACCESSES),
    rng.integers(0, 512_000, size=N_ACCESSES),
)
stores = rng.random(N_ACCESSES) < 0.30

# ------------------------------------------------------ cache hierarchy
hier = CacheHierarchy(cfg)
mem_ops: list[tuple[int, int]] = []  # (op, line) at the PCM boundary
for line, is_store in zip(lines, stores):
    res = hier.access(int(line), bool(is_store))
    if res.memory_read:
        mem_ops.append((OP_READ, int(line)))
    for wb in res.writebacks:
        mem_ops.append((OP_WRITE, wb))
for wb in hier.flush_dirty_llc():
    mem_ops.append((OP_WRITE, wb))

stats = hier.stats()
print(format_table(
    ["stat", "value"],
    [
        ["CPU accesses", N_ACCESSES],
        ["L1 hit rate", stats["l1_hit_rate"]],
        ["L2 hit rate", stats["l2_hit_rate"]],
        ["L3 hit rate", stats["l3_hit_rate"]],
        ["memory reads", int(stats["memory_reads"])],
        ["memory writes", int(stats["memory_writes"])],
    ],
    title="Cache hierarchy (Table II) filtering the CPU stream",
))

# ------------------------------------------------- package as a trace
# Spread the post-LLC requests over the 4 cores with the measured
# memory-ops-per-access as the instruction gap.
records = np.zeros(len(mem_ops), dtype=RECORD_DTYPE)
gap = max(int(N_ACCESSES / max(len(mem_ops), 1)), 1)
for i, (op, line) in enumerate(mem_ops):
    records[i] = (i % cfg.cpu.num_cores, op, gap, line)

n_writes = int((records["op"] == OP_WRITE).sum())
content = ContentModel(get_workload("bodytrack"))
write_counts = content.draw_counts(rng, n_writes, cfg.data_units_per_line)
trace = Trace("full-pipeline", 42, records, write_counts)

# -------------------------------------------------------- simulate PCM
rows = []
for scheme in ("dcw", "tetris"):
    res = run_fullsystem(trace, scheme, cfg)
    rows.append([
        scheme,
        res.mean_read_latency_ns,
        res.mean_write_latency_ns,
        res.ipc,
        res.runtime_ns / 1e6,
    ])
print()
print(format_table(
    ["scheme", "read lat (ns)", "write lat (ns)", "IPC", "runtime (ms)"],
    rows,
    title="PCM main memory under the cache-filtered trace",
))
speedup = rows[0][4] / rows[1][4]
print(f"\nTetris Write speedup over DCW on this pipeline: {speedup:.2f}x")
