#!/usr/bin/env python
"""Explain a run: where each core's time went, per scheme.

The paper's causal chain — write service time drives queue waits, queue
waits drive read blocking, read blocking drives IPC — made visible for
one workload: the time-attribution tables show read blocking collapsing
as the scheme improves while compute time stays fixed.

Run:  python examples/explain_run.py [workload]
"""

import sys

from repro.analysis.bottleneck import format_breakdown
from repro.experiments.fullsystem import run_fullsystem
from repro.trace.synthetic import generate_trace

workload = sys.argv[1] if len(sys.argv) > 1 else "dedup"
trace = generate_trace(workload, requests_per_core=1500)
print(f"workload: {workload}, {len(trace)} memory requests\n")

for scheme in ("dcw", "three_stage", "tetris"):
    res = run_fullsystem(trace, scheme)
    print(format_breakdown(res))
    print()
