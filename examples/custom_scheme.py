#!/usr/bin/env python
"""Tutorial: plugging your own write scheme into the harness.

Shows the full extension path a downstream user takes:

1. subclass :class:`repro.schemes.base.WriteScheme` — here a toy
   "EagerHalf" scheme that behaves like Three-Stage-Write but skips the
   read-before-write whenever the previous write left the line with the
   same flip tags (a silly heuristic, on purpose — this is a template);
2. the subclass self-registers by declaring ``name``;
3. drive it through a cache-line write, then through the whole
   full-system simulator next to the paper's schemes using the
   functional service model (no precompute branch needed).

Run:  python examples/custom_scheme.py
"""

import numpy as np

from repro.analysis.report import format_table
from repro.core.read_stage import read_stage
from repro.experiments.fullsystem import run_fullsystem
from repro.pcm.state import LineState
from repro.schemes import get_scheme
from repro.schemes.base import WriteOutcome, WriteScheme
from repro.trace.synthetic import generate_trace


class EagerHalfWrite(WriteScheme):
    """Template scheme: 3SW timing, with a (toy) read-skip heuristic.

    The point is the shape of a scheme implementation:

    * ``worst_case_units`` — the closed-form bound the controller uses;
    * ``_write_once`` — decide timing, count programmed cells, COMMIT
      the new image via ``state.store``, and return an outcome via
      ``self._outcome`` so time/energy stay consistent.  The base class
      ``write`` wraps it with wear accounting and (when enabled) the
      program-and-verify fault loop — implement one pristine pass and
      retries come for free.
    """

    name = "eager_half"          # <- registers under this name
    requires_read = True

    def worst_case_units(self) -> float:
        nm = self.config.units_per_line
        return nm / (2 * self.config.K) + nm / (2 * self.config.L)

    def _write_once(self, state: LineState, new_logical: np.ndarray) -> WriteOutcome:
        new_logical = np.asarray(new_logical, dtype=np.uint64)
        rs = read_stage(state.physical, state.flip, new_logical)
        skip_read = bool((rs.flip == state.flip).all())  # toy heuristic
        state.store(rs.physical, rs.flip)
        return self._outcome(
            units=self.worst_case_units(),
            read_ns=0.0 if skip_read else self.t_read,
            analysis_ns=0.0,
            n_set=int(rs.n_set.sum()),
            n_reset=int(rs.n_reset.sum()),
            flipped_units=int(rs.flip.sum()),
        )


# Registration happened at class creation; the registry can build it:
scheme = get_scheme("eager_half")
rng = np.random.default_rng(5)
old = rng.integers(0, np.iinfo(np.uint64).max, size=8, dtype=np.uint64)
new = old ^ np.uint64(0b1111)
out = scheme.write(LineState.from_logical(old.copy()), new)
print(f"one write under eager_half: {out.service_ns:.1f} ns, "
      f"{out.n_set + out.n_reset} cells programmed\n")

# Full-system comparison via the functional path (works for any
# registered scheme with zero extra plumbing).
trace = generate_trace("dedup", requests_per_core=250, seed=5)
rows = []
for name in ("dcw", "three_stage", "eager_half", "tetris"):
    res = run_fullsystem(trace, name, functional=True)
    rows.append([name, res.mean_read_latency_ns, res.mean_write_latency_ns,
                 res.runtime_ns / 1e6])
print(format_table(
    ["scheme", "read lat (ns)", "write lat (ns)", "runtime (ms)"],
    rows,
    title="Custom scheme running inside the Fig 11-14 harness (dedup)",
))
print("\nTo add a precompute fast path for big sweeps, extend"
      "\nrepro.experiments.fullsystem.precompute_write_service.")
