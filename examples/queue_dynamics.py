#!/usr/bin/env python
"""Write-queue dynamics: why slow writes poison reads.

Traces the controller's write-queue occupancy over a run and renders it
as a sparkline.  Under DCW the queue saw-tooths against the high
watermark — every peak is a drain episode during which reads starve.
Under Tetris the same write stream drains ~6x faster, so the queue
spends most of its time nearly empty and reads rarely wait.

Run:  python examples/queue_dynamics.py
"""

from repro.analysis.report import format_table, sparkline
from repro.config import default_config
from repro.cpu.system import CMPSystem
from repro.experiments.fullsystem import (
    PrecomputedServiceModel,
    precompute_write_service,
)
from repro.trace.synthetic import generate_trace

cfg = default_config()
trace = generate_trace("dedup", requests_per_core=1500, seed=13)
hi = cfg.memctrl.drain_high_watermark

lo = cfg.memctrl.drain_low_watermark
rows = []
series = {}
for scheme in ("dcw", "three_stage", "tetris"):
    table = precompute_write_service(trace, scheme, cfg)
    system = CMPSystem(
        trace, cfg, PrecomputedServiceModel(table, cfg), scheme_name=scheme
    )
    occupancy = system.controller.track_write_occupancy()
    res = system.run()
    series[scheme] = occupancy
    drains = system.controller.policy.drain_entries
    congested_ns = occupancy.time_above(lo)
    rows.append([
        scheme,
        occupancy.max(),
        drains,
        congested_ns / max(drains, 1) / 1e3,   # mean drain episode, us
        100.0 * congested_ns / res.runtime_ns,
        res.mean_read_latency_ns,
    ])

print(format_table(
    ["scheme", "peak occ", "drains", "episode (us)", "% time congested",
     "read lat (ns)"],
    rows,
    title=f"Write-queue pressure on dedup (watermarks {lo}/{hi})",
))

print("\nsawtooth detail — first 160 occupancy changes (scale 0-32):")
for scheme, occ in series.items():
    line = sparkline(occ.values[:160:2], peak=32.0)
    print(f"{scheme:>12s}  {line}")
print(
    "\nThe sawtooth *shape* is the watermark policy and looks alike for"
    "\nevery scheme — what differs is the wall-clock each episode costs:"
    "\nthe table's episode column is where Tetris wins."
)
