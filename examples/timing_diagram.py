#!/usr/bin/env python
"""Reproduce the paper's Figure 4 chip-level timing diagram.

Uses the worked example of §III: per-chip budget 32 SET units, write-1
currents [8,7,7,6,6,6,5,3], write-0 cell counts [1,1,1,2,3,2,2,5].
The rendered schedule shows the 'Tetris' effect: the long write-1 bars
of write units 1-2 leave interspaces that absorb every short write-0,
so the line completes in 2 x Tset (T1) versus Three-Stage-Write's 2.5
(T2), 2-Stage-Write's 3 (T3) and Flip-N-Write's 4 (T4).

Run:  python examples/timing_diagram.py [--random SEED]
"""

import sys

import numpy as np

from repro.analysis.timing_diagram import render_timing_diagram

if "--random" in sys.argv:
    seed = int(sys.argv[sys.argv.index("--random") + 1])
    rng = np.random.default_rng(seed)
    # Draw a write from the paper's average regime (Fig 3).
    n_set = rng.poisson(6.7, size=8)
    n_reset = rng.poisson(2.9, size=8)
    print(f"random write (seed {seed}), bank budget 128:\n")
    print(render_timing_diagram(n_set, n_reset))
else:
    n_set = np.array([8, 7, 7, 6, 6, 6, 5, 3])
    n_reset = np.array([1, 1, 1, 2, 3, 2, 2, 5])
    print("paper Figure 4 worked example, per-chip budget 32:\n")
    print(render_timing_diagram(n_set, n_reset, power_budget=32.0))
