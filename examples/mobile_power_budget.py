#!/usr/bin/env python
"""Mobile scenario: how Tetris Write degrades as the current budget shrinks.

The paper's introduction motivates the problem with mobile systems whose
supply current forces the write unit down from 16 to 4 or 2 bits per
chip.  This example sweeps those division modes on two contrasting
workloads (light blackscholes vs. heavy vips) and prints the mean write
units each scheme needs — Tetris's content-awareness pays off most
exactly where the budget is scarce.

Run:  python examples/mobile_power_budget.py
"""

from repro.analysis.report import format_table
from repro.core.batch import pack_batch
from repro.trace.synthetic import generate_trace

WIDTHS = (16, 8, 4, 2)          # bits per chip write unit
K, L = 8, 2.0

rows = []
for workload in ("blackscholes", "vips"):
    trace = generate_trace(workload, requests_per_core=1500)
    n_set = trace.write_counts[..., 0].astype(int)
    n_reset = trace.write_counts[..., 1].astype(int)
    for width in WIDTHS:
        budget = 128.0 * width / 16.0   # bank budget scales with the mode
        packed = pack_batch(
            n_set, n_reset, K=K, L=L, power_budget=budget, allow_split=True
        )
        tetris_units = float(packed.service_units().mean())
        # Worst-case baselines at this division mode: the conventional
        # write needs line_bits / (4 chips x width) units; FNW halves it.
        conventional = 512 / (4 * width)
        rows.append([
            workload, f"X{width}", budget, conventional, conventional / 2,
            tetris_units, conventional / tetris_units,
        ])

print(format_table(
    ["workload", "mode", "bank budget", "conventional", "FNW", "Tetris",
     "Tetris gain vs conv."],
    rows,
    title="Mobile division modes: mean write units per cache-line write",
))
print(
    "\nNote: below X16 a single data unit's burst can exceed the budget;"
    "\nthe scheduler divides it into budget-sized chunks (allow_split)."
)
