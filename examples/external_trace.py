#!/usr/bin/env python
"""Replay an external trace through the harness.

Demonstrates the text trace format (one request per line) that lets an
external tracer — e.g. a real GEM5 + PARSEC pipeline — feed this
reproduction.  The example writes a small hand-rolled producer/consumer
trace, loads it back, and simulates it under three schemes.

Format:  <core> <R|W> <instruction-gap> <line> [<n_set:n_reset> x 8]

Run:  python examples/external_trace.py
"""

import tempfile
from pathlib import Path

from repro.analysis.report import format_table
from repro.experiments.fullsystem import run_fullsystem
from repro.trace.io import load_trace_text

# A producer core (0) streaming writes into a ring of 16 lines, and a
# consumer core (1) reading them back — the high-exchange pattern of
# dedup/ferret in miniature.
lines = []
lines.append("# workload=ring-buffer seed=1 units=8")
profile = " ".join(["4:2"] * 8)          # 4 SETs + 2 RESETs per unit
for i in range(200):
    ring = i % 16
    lines.append(f"0 W 120 {ring} {profile}")
    lines.append(f"1 R 100 {ring}")
    lines.append(f"2 R 900 {1000 + i}")   # a third core streaming reads
    lines.append(f"3 R 1100 {2000 + 3 * i}")

path = Path(tempfile.mkdtemp()) / "ring.trace"
path.write_text("\n".join(lines) + "\n")
print(f"wrote {path} ({len(lines) - 1} requests)\n")

trace = load_trace_text(path)
rpki, wpki = trace.measured_rpki_wpki()
print(f"loaded: {trace.n_reads} reads, {trace.n_writes} writes "
      f"(RPKI {rpki:.2f}, WPKI {wpki:.2f})\n")

rows = []
for scheme in ("dcw", "three_stage", "tetris"):
    res = run_fullsystem(trace, scheme)
    rows.append([
        scheme,
        res.mean_read_latency_ns,
        res.mean_write_latency_ns,
        res.controller.forwarded_reads,
        res.runtime_ns / 1e3,
    ])
print(format_table(
    ["scheme", "read lat (ns)", "write lat (ns)", "forwarded", "runtime (us)"],
    rows,
    title="Ring-buffer trace under three write schemes",
))
