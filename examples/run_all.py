#!/usr/bin/env python
"""Run every example in sequence (smoke check / demo reel).

Each example is executed as a subprocess with a bounded runtime and
reduced sizes where the script accepts them; output is kept from the
final lines of each.  Use this to sanity-check an environment or walk a
newcomer through the repository's surface in one command.

Run:  python examples/run_all.py
"""

import subprocess
import sys
import time
from pathlib import Path

HERE = Path(__file__).resolve().parent

EXAMPLES: list[tuple[str, list[str]]] = [
    ("quickstart.py", []),
    ("timing_diagram.py", []),
    ("mobile_power_budget.py", []),
    ("external_trace.py", []),
    ("wear_leveling.py", []),
    ("queue_dynamics.py", []),
    ("mlc_extension.py", []),
    ("custom_scheme.py", []),
    ("explain_run.py", ["ferret"]),
    ("full_pipeline.py", []),
    ("scheme_comparison.py", ["600"]),
]


def main() -> int:
    failures = []
    for name, args in EXAMPLES:
        script = HERE / name
        print(f"\n{'=' * 72}\n>>> {name} {' '.join(args)}\n{'=' * 72}")
        t0 = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, str(script), *args],
            capture_output=True,
            text=True,
            timeout=600,
        )
        elapsed = time.perf_counter() - t0
        tail = "\n".join(proc.stdout.splitlines()[-8:])
        print(tail)
        status = "ok" if proc.returncode == 0 else "FAILED"
        print(f"--- {name}: {status} in {elapsed:.1f}s")
        if proc.returncode != 0:
            failures.append(name)
            print(proc.stderr[-2000:])
    print(f"\n{len(EXAMPLES) - len(failures)}/{len(EXAMPLES)} examples passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
