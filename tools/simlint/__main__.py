"""Entry point for ``python -m simlint``."""

from simlint.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
