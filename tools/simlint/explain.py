"""``simlint --explain SLxxx``: the rule catalogue, on demand.

A finding in CI is only actionable if the rationale is one command
away.  ``--explain`` renders, for one rule id:

* the rule's identity line (id, title, default severity, scope);
* its class docstring — the authoritative statement of what fires,
  what does not, and the sanctioned escape hatch;
* the matching row of the ``docs/SIMLINT.md`` catalogue table, when
  the document can be located (beside ``simlint.toml`` or the cwd).
"""

from __future__ import annotations

import inspect
from pathlib import Path

from simlint.rules import RULE_REGISTRY

__all__ = ["explain_rule", "find_catalogue"]

CATALOGUE = Path("docs") / "SIMLINT.md"


def find_catalogue(config_path: Path | None) -> Path | None:
    """Locate ``docs/SIMLINT.md`` beside the config file, else the cwd."""
    roots = []
    if config_path is not None:
        roots.append(Path(config_path).resolve().parent)
    roots.append(Path.cwd())
    for root in roots:
        candidate = root / CATALOGUE
        if candidate.is_file():
            return candidate
    return None


def _catalogue_row(doc: Path, rule_id: str) -> str | None:
    """The rule's row in the SIMLINT.md catalogue table, if present."""
    try:
        lines = doc.read_text(encoding="utf-8").splitlines()
    except OSError:
        return None
    grabbed: list[str] = []
    for line in lines:
        stripped = line.strip()
        if stripped.startswith("|") and f"`{rule_id}`" in stripped:
            grabbed.append(stripped)
    return "\n".join(grabbed) if grabbed else None


def explain_rule(rule_id: str, *, config_path: Path | None = None) -> str:
    """Human-readable explanation of one rule (raises KeyError if unknown)."""
    cls = RULE_REGISTRY[rule_id]
    scope = "project-level (whole-program)" if cls.project_level else "per-file"
    out = [
        f"{cls.id} — {cls.title}",
        f"severity: {cls.severity}    scope: {scope}",
        "",
    ]
    doc = inspect.getdoc(cls)
    if doc:
        out.append(doc)
    catalogue = find_catalogue(config_path)
    if catalogue is not None:
        row = _catalogue_row(catalogue, rule_id)
        if row is not None:
            out.extend(["", f"catalogue ({catalogue}):", row])
    return "\n".join(out)
