"""simlint phase 1: the whole-program project model.

Per-file AST scanning (:mod:`simlint.rules`) can enforce local
contracts, but the contracts that matter most as the tree grows are
*relational*: which package imports which, whether the public surface
matches ``docs/API.md``, which signatures a call site must satisfy.
This module builds the shared substrate those project-level rules run
against:

* :class:`ModuleInfo` — one file's contribution: its dotted module
  name, import records (with ``TYPE_CHECKING`` / function-level
  classification), top-level symbol table (classes, functions,
  assignments, imports — each with a signature where applicable), the
  literal ``__all__`` when present, and the suppression maps needed to
  honour ``# simlint: disable=`` on project-level findings.
* :class:`ProjectModel` — the modules keyed by dotted name, plus the
  derived views: submodule-aware import resolution (``from repro.oracle
  import analytic`` is an edge to the *submodule*, not the package),
  the runtime import graph, cycle detection, re-export resolution
  through ``__init__.py``, and the static public-API surface that
  mirrors ``tools/gen_api_docs.py``.

Everything here is pure and serializable: :meth:`ModuleInfo.to_dict` /
:meth:`ModuleInfo.from_dict` round-trip exactly, which is what lets the
incremental cache (:mod:`simlint.cache`) rebuild a whole-program model
without re-parsing unchanged files.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "ImportRecord",
    "SymbolInfo",
    "ModuleInfo",
    "ProjectModel",
    "build_module_info",
    "module_name_for",
]


# ----------------------------------------------------------------------
# Data model.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ImportRecord:
    """One import statement target, classified.

    ``target`` is the raw dotted module named by the statement (relative
    imports already resolved against the importing module).  For
    ``from M import name`` the imported attribute names are kept in
    ``names`` so the project can later decide whether ``name`` was a
    submodule (an edge to ``M.name``) or a symbol (an edge to ``M``).
    """

    target: str
    names: tuple[str, ...]
    line: int
    col: int
    typing_only: bool  # under `if TYPE_CHECKING:` — not a runtime edge
    function_level: bool  # inside a def — runtime edge, but lazy
    is_from: bool

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "names": list(self.names),
            "line": self.line,
            "col": self.col,
            "typing_only": self.typing_only,
            "function_level": self.function_level,
            "is_from": self.is_from,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ImportRecord":
        return cls(
            target=d["target"],
            names=tuple(d["names"]),
            line=d["line"],
            col=d["col"],
            typing_only=d["typing_only"],
            function_level=d["function_level"],
            is_from=d["is_from"],
        )


@dataclass(frozen=True)
class SymbolInfo:
    """One top-level binding in a module.

    ``kind`` is ``class`` / ``function`` / ``assign`` / ``import``.
    ``params`` holds the parameter names of functions (and of class
    ``__init__``-less dataclass-style field lists where detectable) so
    the unit-flow rule can match argument units against parameter
    suffixes across modules.  ``imported_from`` is the source module
    for ``import`` kinds (``None`` when the import is external).
    """

    name: str
    kind: str
    line: int
    params: tuple[str, ...] = ()
    imported_from: str | None = None
    imported_name: str | None = None
    value_call: str | None = None  # `X = SomeClass(...)` records SomeClass

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "line": self.line,
            "params": list(self.params),
            "imported_from": self.imported_from,
            "imported_name": self.imported_name,
            "value_call": self.value_call,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SymbolInfo":
        return cls(
            name=d["name"],
            kind=d["kind"],
            line=d["line"],
            params=tuple(d["params"]),
            imported_from=d["imported_from"],
            imported_name=d["imported_name"],
            value_call=d.get("value_call"),
        )


@dataclass
class ModuleInfo:
    """Everything phase 2 needs to know about one parsed file."""

    path: str
    module: str
    is_package: bool
    imports: list[ImportRecord] = field(default_factory=list)
    symbols: dict[str, SymbolInfo] = field(default_factory=dict)
    all_names: list[str] | None = None  # literal __all__, when present
    has_main_guard: bool = False
    line_suppressions: dict[int, set[str]] = field(default_factory=dict)
    file_suppressions: set[str] = field(default_factory=set)

    # ------------------------------------------------------------------
    def suppressed(self, rule: str, line: int) -> bool:
        if rule in self.file_suppressions:
            return True
        return rule in self.line_suppressions.get(line, set())

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "module": self.module,
            "is_package": self.is_package,
            "imports": [r.to_dict() for r in self.imports],
            "symbols": {n: s.to_dict() for n, s in self.symbols.items()},
            "all_names": self.all_names,
            "has_main_guard": self.has_main_guard,
            "line_suppressions": {
                str(k): sorted(v) for k, v in self.line_suppressions.items()
            },
            "file_suppressions": sorted(self.file_suppressions),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ModuleInfo":
        return cls(
            path=d["path"],
            module=d["module"],
            is_package=d["is_package"],
            imports=[ImportRecord.from_dict(r) for r in d["imports"]],
            symbols={n: SymbolInfo.from_dict(s) for n, s in d["symbols"].items()},
            all_names=d["all_names"],
            has_main_guard=d["has_main_guard"],
            line_suppressions={
                int(k): set(v) for k, v in d["line_suppressions"].items()
            },
            file_suppressions=set(d["file_suppressions"]),
        )


# ----------------------------------------------------------------------
# Module naming: prefer the on-disk package structure.
# ----------------------------------------------------------------------
def module_name_for(path: Path) -> str:
    """Dotted module name derived from the package structure on disk.

    Climbs ancestors while they contain ``__init__.py`` so the name is
    anchored at the outermost package — this handles fixture trees and
    nested layouts the old ``src``-stripping heuristic could not.  Files
    outside any package fall back to their stem.
    """
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    if not parts:  # a stray __init__.py with no package parent
        parts = [path.parent.name]
    return ".".join(parts)


# ----------------------------------------------------------------------
# AST extraction.
# ----------------------------------------------------------------------
class _ImportCollector(ast.NodeVisitor):
    """Collect classified import records for one module."""

    def __init__(self, module_parts: list[str], is_package: bool) -> None:
        # For relative-import resolution: the package the module can see.
        self._pkg = module_parts if is_package else module_parts[:-1]
        self.records: list[ImportRecord] = []
        self._typing_depth = 0
        self._fn_depth = 0

    # -- structure ------------------------------------------------------
    def visit_If(self, node: ast.If) -> None:
        test_src = ast.dump(node.test)
        if "TYPE_CHECKING" in test_src:
            self._typing_depth += 1
            for child in node.body:
                self.visit(child)
            self._typing_depth -= 1
            for child in node.orelse:
                self.visit(child)
        else:
            self.generic_visit(node)

    def visit_FunctionDef(self, node) -> None:
        self._fn_depth += 1
        self.generic_visit(node)
        self._fn_depth -= 1

    visit_AsyncFunctionDef = visit_FunctionDef

    # -- imports --------------------------------------------------------
    def _record(self, target: str, names: tuple[str, ...], node, is_from: bool):
        self.records.append(
            ImportRecord(
                target=target,
                names=names,
                line=node.lineno,
                col=node.col_offset,
                typing_only=self._typing_depth > 0,
                function_level=self._fn_depth > 0,
                is_from=is_from,
            )
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._record(alias.name, (), node, is_from=False)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:
            base = self._pkg[: len(self._pkg) - (node.level - 1)]
            if not base:
                return  # relative import escaping the scanned tree
            target = ".".join(base + ([node.module] if node.module else []))
        else:
            target = node.module or ""
        if target:
            names = tuple(a.name for a in node.names)
            self._record(target, names, node, is_from=True)


def _literal_all(tree: ast.Module) -> list[str] | None:
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if not any(isinstance(t, ast.Name) and t.id == "__all__" for t in targets):
            continue
        if isinstance(value, (ast.List, ast.Tuple)) and all(
            isinstance(e, ast.Constant) and isinstance(e.value, str)
            for e in value.elts
        ):
            return [e.value for e in value.elts]
    return None


def _function_params(node) -> tuple[str, ...]:
    a = node.args
    names = [p.arg for p in [*a.posonlyargs, *a.args]]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    names.extend(p.arg for p in a.kwonlyargs)
    return tuple(names)


def _class_field_params(node: ast.ClassDef) -> tuple[str, ...]:
    """Constructor parameters of a class, best effort.

    An explicit ``__init__`` wins; otherwise annotated class-level
    fields are taken in order (the dataclass convention this repo uses
    everywhere).
    """
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if stmt.name == "__init__":
                return _function_params(stmt)
    fields: list[str] = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if not stmt.target.id.startswith("_"):
                fields.append(stmt.target.id)
    return tuple(fields)


def _call_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Call):
        f = node.func
        if isinstance(f, ast.Name):
            return f.id
        if isinstance(f, ast.Attribute):
            return f.attr
    return None


def _top_level_symbols(tree: ast.Module) -> dict[str, SymbolInfo]:
    symbols: dict[str, SymbolInfo] = {}

    def add(sym: SymbolInfo) -> None:
        symbols[sym.name] = sym  # later bindings win, like runtime

    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef):
            add(
                SymbolInfo(
                    name=stmt.name,
                    kind="class",
                    line=stmt.lineno,
                    params=_class_field_params(stmt),
                )
            )
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            add(
                SymbolInfo(
                    name=stmt.name,
                    kind="function",
                    line=stmt.lineno,
                    params=_function_params(stmt),
                )
            )
        elif isinstance(stmt, ast.Assign):
            for tgt in stmt.targets:
                if isinstance(tgt, ast.Name):
                    add(
                        SymbolInfo(
                            name=tgt.id,
                            kind="assign",
                            line=stmt.lineno,
                            value_call=_call_name(stmt.value),
                        )
                    )
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                add(
                    SymbolInfo(
                        name=stmt.target.id,
                        kind="assign",
                        line=stmt.lineno,
                        value_call=_call_name(stmt.value),
                    )
                )
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".")[0]
                add(
                    SymbolInfo(
                        name=local,
                        kind="import",
                        line=stmt.lineno,
                        imported_from=alias.name,
                        imported_name=None,
                    )
                )
        elif isinstance(stmt, ast.ImportFrom) and stmt.module and not stmt.level:
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                add(
                    SymbolInfo(
                        name=alias.asname or alias.name,
                        kind="import",
                        line=stmt.lineno,
                        imported_from=stmt.module,
                        imported_name=alias.name,
                    )
                )
        elif isinstance(stmt, ast.ImportFrom) and stmt.level:
            # Relative re-export (`from .x import Y`); target resolution
            # happens at the project layer, record the raw pieces here.
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                add(
                    SymbolInfo(
                        name=alias.asname or alias.name,
                        kind="import",
                        line=stmt.lineno,
                        imported_from="." * stmt.level + (stmt.module or ""),
                        imported_name=alias.name,
                    )
                )
    return symbols


def _has_main_guard(tree: ast.Module) -> bool:
    for stmt in tree.body:
        if isinstance(stmt, ast.If):
            src = ast.dump(stmt.test)
            if "__name__" in src and "__main__" in src:
                return True
    return False


def build_module_info(
    source: str,
    *,
    path: str,
    module: str | None = None,
    line_suppressions: dict[int, set[str]] | None = None,
    file_suppressions: set[str] | None = None,
) -> ModuleInfo | None:
    """Parse one file into its :class:`ModuleInfo` (``None`` on syntax error)."""
    p = Path(path)
    is_package = p.name == "__init__.py"
    mod = module if module is not None else module_name_for(p)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return None
    parts = mod.split(".")
    collector = _ImportCollector(parts, is_package)
    collector.visit(tree)
    # Relative re-exports recorded by _top_level_symbols carry a
    # leading-dot prefix; resolve them against the module now that the
    # dotted name is known.
    symbols = _top_level_symbols(tree)
    resolved: dict[str, SymbolInfo] = {}
    pkg = parts if is_package else parts[:-1]
    for name, sym in symbols.items():
        if sym.kind == "import" and sym.imported_from and sym.imported_from.startswith("."):
            level = len(sym.imported_from) - len(sym.imported_from.lstrip("."))
            tail = sym.imported_from.lstrip(".")
            base = pkg[: len(pkg) - (level - 1)]
            if base:
                target = ".".join(base + ([tail] if tail else []))
                sym = SymbolInfo(
                    name=sym.name,
                    kind=sym.kind,
                    line=sym.line,
                    params=sym.params,
                    imported_from=target,
                    imported_name=sym.imported_name,
                )
        resolved[name] = sym
    return ModuleInfo(
        path=path,
        module=mod,
        is_package=is_package,
        imports=collector.records,
        symbols=resolved,
        all_names=_literal_all(tree),
        has_main_guard=_has_main_guard(tree),
        line_suppressions=line_suppressions or {},
        file_suppressions=file_suppressions or set(),
    )


# ----------------------------------------------------------------------
# The whole-program model.
# ----------------------------------------------------------------------
class ProjectModel:
    """Modules keyed by dotted name, with the derived relational views."""

    def __init__(self, modules: dict[str, ModuleInfo] | None = None) -> None:
        self.modules: dict[str, ModuleInfo] = dict(modules or {})

    # -- construction ---------------------------------------------------
    def add(self, info: ModuleInfo) -> None:
        self.modules[info.module] = info

    def __contains__(self, module: str) -> bool:
        return module in self.modules

    def __len__(self) -> int:
        return len(self.modules)

    # -- import resolution ---------------------------------------------
    def resolve_targets(self, record: ImportRecord) -> list[str]:
        """Modules named by one import record, submodule-aware.

        ``from pkg import name`` is an edge to ``pkg.name`` when that is
        a module in the project (the package ``__init__`` merely
        re-exports it); otherwise it is an edge to ``pkg`` itself.
        Targets outside the project resolve to their deepest known
        ancestor, or are dropped entirely when no ancestor is known
        (external dependencies are not the project's concern).
        """
        out: list[str] = []
        if record.is_from and record.names:
            for name in record.names:
                sub = f"{record.target}.{name}"
                if sub in self.modules:
                    out.append(sub)
                else:
                    out.append(record.target)
        else:
            out.append(record.target)
        resolved = []
        for target in out:
            t = target
            while t and t not in self.modules:
                t = t.rpartition(".")[0]
            if t:
                resolved.append(t)
        return sorted(set(resolved))

    @staticmethod
    def _is_ancestor(a: str, b: str) -> bool:
        """True when ``a`` is ``b`` or a package containing ``b``."""
        return a == b or b.startswith(a + ".")

    def import_edges(
        self,
        *,
        include_typing: bool = False,
        include_function_level: bool = True,
    ) -> dict[str, dict[str, ImportRecord]]:
        """Adjacency map ``module -> {imported_module: first record}``.

        Edges to a module's own ancestors are dropped: importing a
        sibling submodule necessarily imports the shared parent package,
        so those edges carry no architectural information and would make
        every re-exporting ``__init__.py`` look like a cycle.
        """
        graph: dict[str, dict[str, ImportRecord]] = {}
        for mod, info in self.modules.items():
            edges = graph.setdefault(mod, {})
            for rec in info.imports:
                if rec.typing_only and not include_typing:
                    continue
                if rec.function_level and not include_function_level:
                    continue
                for target in self.resolve_targets(rec):
                    if target == mod or self._is_ancestor(target, mod):
                        continue
                    if target not in edges:
                        edges[target] = rec
        return graph

    # -- cycles ---------------------------------------------------------
    def find_cycles(self) -> list[list[str]]:
        """Strongly connected components (size > 1) of the runtime graph.

        Function-level imports are excluded: deferring an import into
        the using function is the sanctioned way to break a cycle, so
        only module-top-level runtime imports can form one.
        """
        graph = {
            m: sorted(t)
            for m, t in self.import_edges(include_function_level=False).items()
        }
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = [0]
        sccs: list[list[str]] = []

        for root in sorted(graph):
            if root in index:
                continue
            # Iterative Tarjan: (node, iterator position) work stack.
            work = [(root, 0)]
            while work:
                node, pi = work[-1]
                if pi == 0:
                    index[node] = low[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                succs = graph.get(node, [])
                for i in range(pi, len(succs)):
                    w = succs[i]
                    if w not in index:
                        work[-1] = (node, i + 1)
                        work.append((w, 0))
                        recurse = True
                        break
                    if w in on_stack:
                        low[node] = min(low[node], index[w])
                if recurse:
                    continue
                if low[node] == index[node]:
                    comp = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        comp.append(w)
                        if w == node:
                            break
                    if len(comp) > 1:
                        sccs.append(sorted(comp))
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
        return sorted(sccs)

    # -- re-export resolution ------------------------------------------
    def resolve_export(
        self, module: str, name: str, *, _depth: int = 0
    ) -> tuple[str, SymbolInfo] | None:
        """Follow ``from X import Y`` chains to ``name``'s definition.

        Returns ``(defining_module, SymbolInfo)`` for symbols defined in
        the project, or ``None`` for unknown/external names.  Bounded to
        keep accidental re-export loops from hanging the linter.
        """
        if _depth > 16 or module not in self.modules:
            return None
        info = self.modules[module]
        sym = info.symbols.get(name)
        if sym is None:
            # Packages implicitly expose their submodules.
            if f"{module}.{name}" in self.modules:
                return None
            return None
        if sym.kind != "import":
            return module, sym
        src = sym.imported_from
        if src is None:
            return None
        if sym.imported_name is None:
            return None  # `import x.y as z` — a module, not a symbol
        if src in self.modules:
            return self.resolve_export(src, sym.imported_name, _depth=_depth + 1)
        return None

    def lookup(self, dotted: str) -> tuple[str, SymbolInfo] | None:
        """Resolve a fully qualified ``pkg.mod.symbol`` name."""
        module, _, name = dotted.rpartition(".")
        while module and module not in self.modules:
            name = module.rpartition(".")[2] + "." + name
            module = module.rpartition(".")[0]
        if not module or "." in name:
            return None
        return self.resolve_export(module, name)

    # -- public API surface (mirrors tools/gen_api_docs.py) -------------
    def public_api(self, module: str) -> list[tuple[str, SymbolInfo]] | None:
        """The symbols ``gen_api_docs`` would document for ``module``.

        Replicates the generator's filtering statically:

        * with ``__all__``: every listed name bound at top level, except
          names imported from elsewhere that resolve to a function or
          class (those carry a foreign ``__module__`` at runtime);
          imported *constants* have no ``__module__`` and are kept;
        * without ``__all__``: only public classes and functions defined
          in the module body, plus top-level instances of same-module
          classes (their ``__module__`` is this module at runtime).
        """
        info = self.modules.get(module)
        if info is None or info.is_package:
            return None
        out: list[tuple[str, SymbolInfo]] = []
        if info.all_names is not None:
            for name in info.all_names:
                sym = info.symbols.get(name)
                if sym is None:
                    continue
                if sym.kind == "import":
                    resolved = (
                        self.resolve_export(module, name)
                        if sym.imported_name is not None
                        else None
                    )
                    if resolved is not None and resolved[1].kind in (
                        "class",
                        "function",
                    ):
                        continue  # foreign __module__ at runtime
                    if resolved is None and sym.imported_name is not None:
                        # External import: classes/functions would be
                        # filtered at runtime; we cannot tell, so skip —
                        # an `[api] ignore` entry covers the exceptions.
                        continue
                out.append((name, sym))
            return out
        for name, sym in info.symbols.items():
            if name.startswith("_"):
                continue
            if sym.kind in ("class", "function"):
                out.append((name, sym))
            elif sym.kind == "assign" and sym.value_call is not None:
                target = info.symbols.get(sym.value_call)
                if target is not None and target.kind == "class":
                    out.append((name, sym))
        out.sort(key=lambda pair: pair[1].line)
        return out

    # -- coverage -------------------------------------------------------
    def covers_package(self, package: str) -> bool:
        """True when every ``*.py`` file of ``package`` (as found on
        disk next to its ``__init__``) is present in the model — the
        precondition for whole-program rules like orphan detection and
        API drift, which are meaningless on partial scans."""
        info = self.modules.get(package)
        if info is None or not info.is_package:
            return False
        root = Path(info.path).parent
        present = {Path(m.path).resolve() for m in self.modules.values()}
        for p in root.rglob("*.py"):
            if "__pycache__" in p.parts:
                continue
            if p.resolve() not in present:
                return False
        return True
