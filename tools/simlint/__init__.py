"""simlint — simulator-aware static analysis for the Tetris Write repo.

Usage (from the repo root; the top-level ``simlint/`` shim makes the
module importable without touching ``PYTHONPATH``)::

    python -m simlint                      # lint src/ tests/ benchmarks/
    python -m simlint src/repro --json     # machine-readable output
    python -m simlint --explain SL011      # one rule's rationale
    python -m simlint --list-rules

v2 is a two-phase whole-program analyzer: phase 1 assembles a
:class:`~simlint.project.ProjectModel` (import graph, symbol table,
re-export resolution), phase 2 runs the per-file rules plus the
project-level rules (SL012 architecture contract, SL013 API drift)
against it.  An incremental cache (``.simlint_cache/``) keeps warm runs
under a second; ``simlint.toml`` at the repo root declares the layer
DAG and other contract settings.

See ``docs/SIMLINT.md`` for the rule catalogue (SL001-SL014) and the
``# simlint: disable=SLxxx`` suppression syntax.
"""

from simlint.cache import LintCache, compute_salt
from simlint.config import SimlintSettings, find_config_file, load_settings
from simlint.engine import (
    DEFAULT_EXCLUDES,
    SEVERITIES,
    LintFinding,
    LintRun,
    lint_file,
    lint_paths,
    lint_source,
    lint_tree,
)
from simlint.project import ModuleInfo, ProjectModel, build_module_info
from simlint.rules import RULE_REGISTRY, default_rules

__all__ = [
    "DEFAULT_EXCLUDES",
    "SEVERITIES",
    "LintCache",
    "LintFinding",
    "LintRun",
    "ModuleInfo",
    "ProjectModel",
    "RULE_REGISTRY",
    "SimlintSettings",
    "build_module_info",
    "compute_salt",
    "default_rules",
    "find_config_file",
    "lint_file",
    "lint_paths",
    "lint_source",
    "lint_tree",
    "load_settings",
]

__version__ = "2.0.0"
