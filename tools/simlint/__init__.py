"""simlint — simulator-aware static analysis for the Tetris Write repo.

Usage (from the repo root; the top-level ``simlint/`` shim makes the
module importable without touching ``PYTHONPATH``)::

    python -m simlint                      # lint src/ tests/ benchmarks/
    python -m simlint src/repro --json     # machine-readable output
    python -m simlint --list-rules

See ``docs/SIMLINT.md`` for the rule catalogue (SL001-SL006) and the
``# simlint: disable=SLxxx`` suppression syntax.
"""

from simlint.engine import (
    DEFAULT_EXCLUDES,
    LintFinding,
    lint_file,
    lint_paths,
    lint_source,
)
from simlint.rules import RULE_REGISTRY, default_rules

__all__ = [
    "DEFAULT_EXCLUDES",
    "LintFinding",
    "RULE_REGISTRY",
    "default_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
]

__version__ = "1.0.0"
