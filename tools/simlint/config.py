"""simlint.toml: the declared architecture contract and linter settings.

The config file makes the *intended* architecture a checked artifact:
the layer DAG that SL012 enforces, the API-drift document SL013 diffs
against, severity overrides, and cache location all live in one
machine-read place at the repo root instead of in reviewers' heads.

Loading is tolerant by design: no file means defaults (per-file rules
still run; the project-level rules that need a declared contract simply
stay quiet), and a missing ``tomllib`` (Python < 3.11) downgrades the
same way rather than crashing the linter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path

try:  # Python >= 3.11; the linter stays runnable without it.
    import tomllib
except ImportError:  # pragma: no cover - version-dependent
    tomllib = None  # type: ignore[assignment]

__all__ = ["SimlintSettings", "load_settings", "find_config_file"]

CONFIG_NAME = "simlint.toml"


@dataclass
class SimlintSettings:
    """Parsed ``simlint.toml`` (all fields optional in the file)."""

    #: path the settings were loaded from (None = defaults only)
    source: Path | None = None
    #: root package the architecture contract governs
    root_package: str = "repro"
    #: layer DAG, lowest first; each layer is a list of package prefixes
    layers: list[list[str]] = field(default_factory=list)
    #: modules exempt from layer mapping (exact module or glob)
    layer_exempt: list[str] = field(default_factory=list)
    #: extra sanctioned edges, each ``"importer -> imported-prefix"``
    allowed_edges: list[tuple[str, str]] = field(default_factory=list)
    #: modules that are entry points / intentionally unimported (globs)
    orphan_ok: list[str] = field(default_factory=list)
    #: API reference document SL013 cross-checks (repo-root relative)
    api_doc: str = "docs/API.md"
    #: fully qualified ``module.symbol`` names exempt from API drift
    api_ignore: list[str] = field(default_factory=list)
    #: severity overrides, rule id -> "error" | "warn"
    severity: dict[str, str] = field(default_factory=dict)
    #: incremental-cache directory (repo-root relative)
    cache_dir: str = ".simlint_cache"

    # ------------------------------------------------------------------
    def layer_of(self, module: str) -> tuple[int, str] | None:
        """(layer index, matched prefix) by longest prefix, or None."""
        best: tuple[int, str] | None = None
        for i, prefixes in enumerate(self.layers):
            for p in prefixes:
                if module == p or module.startswith(p + "."):
                    if best is None or len(p) > len(best[1]):
                        best = (i, p)
        return best

    def is_layer_exempt(self, module: str) -> bool:
        return any(
            module == pat or fnmatchcase(module, pat) for pat in self.layer_exempt
        )

    def edge_allowed(self, importer: str, imported: str) -> bool:
        for src, dst in self.allowed_edges:
            src_ok = importer == src or importer.startswith(src + ".")
            dst_ok = imported == dst or imported.startswith(dst + ".")
            if src_ok and dst_ok:
                return True
        return False

    def is_orphan_ok(self, module: str) -> bool:
        return any(
            module == pat or fnmatchcase(module, pat) for pat in self.orphan_ok
        )

    def severity_for(self, rule: str, default: str) -> str:
        return self.severity.get(rule, default)


def find_config_file(paths=()) -> Path | None:
    """Locate ``simlint.toml``: beside/above the first linted path, then cwd.

    Walking up from the linted path keeps fixture mini-projects (which
    carry their own contract) and out-of-tree invocations working; the
    cwd fallback covers ``python -m simlint`` from the repo root.
    """
    candidates: list[Path] = []
    for raw in paths:
        p = Path(raw).resolve()
        candidates.extend([p] if p.is_dir() else [p.parent])
        break  # the first path anchors the search
    candidates.append(Path.cwd())
    seen = set()
    for start in candidates:
        node = start
        while True:
            if node in seen:
                break
            seen.add(node)
            cfg = node / CONFIG_NAME
            if cfg.is_file():
                return cfg
            if node.parent == node:
                break
            node = node.parent
    return None


def load_settings(config_path: Path | str | None) -> SimlintSettings:
    """Parse one ``simlint.toml`` (or return defaults when absent)."""
    if config_path is None or tomllib is None:
        return SimlintSettings()
    path = Path(config_path)
    try:
        data = tomllib.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return SimlintSettings()

    settings = SimlintSettings(source=path)
    project = data.get("project", {})
    settings.root_package = str(project.get("root", settings.root_package))

    layers = data.get("layers", {})
    order = layers.get("order", [])
    settings.layers = [
        [str(p) for p in layer] for layer in order if isinstance(layer, list)
    ]
    settings.layer_exempt = [str(m) for m in layers.get("exempt", [])]
    settings.orphan_ok = [str(m) for m in layers.get("orphan_ok", [])]
    for edge in layers.get("allowed", []):
        if "->" in str(edge):
            src, _, dst = str(edge).partition("->")
            settings.allowed_edges.append((src.strip(), dst.strip()))

    api = data.get("api", {})
    settings.api_doc = str(api.get("doc", settings.api_doc))
    settings.api_ignore = [str(s) for s in api.get("ignore", [])]

    severity = data.get("severity", {})
    settings.severity = {
        str(k).upper(): str(v) for k, v in severity.items() if v in ("error", "warn")
    }

    cache = data.get("cache", {})
    settings.cache_dir = str(cache.get("dir", settings.cache_dir))
    return settings
