"""simlint engine: file walking, parsing, suppression, rule dispatch.

The engine owns everything that is not rule-specific:

* locating ``*.py`` files under the requested paths (minus default
  excludes such as the linter's own bad-on-purpose fixtures);
* deriving a dotted module name for each file so rules can scope
  themselves to simulator packages (``repro.core``, ``repro.pcm``, ...);
* building the per-module :class:`ModuleContext` — source lines, the
  import alias table used to resolve ``np.random.default_rng`` to its
  canonical ``numpy.random.default_rng`` form, and the suppression map
  parsed from ``# simlint: disable=SLxxx`` comments;
* a single AST walk that dispatches each node to every rule interested
  in that node type.

Rules themselves live in :mod:`simlint.rules` and only look at nodes.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "LintFinding",
    "ModuleContext",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "DEFAULT_EXCLUDES",
]

# Path *segments* (matched against every component of a file's path) that
# are skipped by default.  ``fixtures/simlint`` holds the deliberately
# bad snippets the rule tests assert against; linting them would make the
# clean-tree check meaningless.
DEFAULT_EXCLUDES: tuple[str, ...] = (
    ".git",
    "__pycache__",
    ".venv",
    "build",
    "dist",
    "out",
    "fixtures/simlint",
)

_SUPPRESS_RE = re.compile(r"#\s*simlint:\s*(disable|disable-file)\s*=\s*([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class ModuleContext:
    """Everything a rule may need to know about the module being linted."""

    path: str
    module: str
    source: str
    tree: ast.AST
    aliases: dict[str, str] = field(default_factory=dict)
    line_suppressions: dict[int, set[str]] = field(default_factory=dict)
    file_suppressions: set[str] = field(default_factory=set)

    # ------------------------------------------------------------------
    def in_package(self, *prefixes: str) -> bool:
        """True when the module lives under any of the dotted prefixes."""
        return any(
            self.module == p or self.module.startswith(p + ".") for p in prefixes
        )

    # ------------------------------------------------------------------
    def resolve(self, node: ast.expr) -> str | None:
        """Canonical dotted name of a Name/Attribute chain, or ``None``.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` given ``import numpy as np``;
        ``perf_counter`` resolves to ``time.perf_counter`` given
        ``from time import perf_counter``.  Non-name expressions (calls,
        subscripts) terminate resolution.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        head = parts[0]
        if head in self.aliases:
            parts[0:1] = self.aliases[head].split(".")
        return ".".join(parts)

    def suppressed(self, rule: str, line: int) -> bool:
        if rule in self.file_suppressions:
            return True
        return rule in self.line_suppressions.get(line, set())


# ----------------------------------------------------------------------
# Context construction helpers.
# ----------------------------------------------------------------------
def _collect_aliases(tree: ast.AST) -> dict[str, str]:
    """Map local names to the dotted path they were imported as."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".")[0]] = (
                    a.name if a.asname else a.name.split(".")[0]
                )
                if a.asname:
                    aliases[a.asname] = a.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for a in node.names:
                if a.name == "*":
                    continue
                aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases


def _collect_suppressions(source: str) -> tuple[dict[int, set[str]], set[str]]:
    """Parse ``# simlint: disable=...`` / ``disable-file=...`` comments.

    Line suppressions apply to findings reported on the comment's line;
    file suppressions apply to the whole module.  Tokenizing (rather than
    regex over raw lines) keeps directives inside string literals inert.
    """
    per_line: dict[int, set[str]] = {}
    per_file: set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _SUPPRESS_RE.search(tok.string)
            if not m:
                continue
            kind, codes_text = m.group(1), m.group(2)
            codes = {c.strip().upper() for c in codes_text.split(",") if c.strip()}
            if kind == "disable-file":
                per_file |= codes
            else:
                per_line.setdefault(tok.start[0], set()).update(codes)
    except tokenize.TokenError:
        pass
    return per_line, per_file


def _module_name(path: Path) -> str:
    """Dotted module name heuristic: strip any leading ``src`` component."""
    parts = list(path.with_suffix("").parts)
    for anchor in ("src",):
        if anchor in parts:
            parts = parts[parts.index(anchor) + 1 :]
            break
    # Drop leading path noise (absolute prefixes) down to a recognizable
    # top-level package when one is present.
    for top in ("repro", "tests", "benchmarks", "examples", "tools", "simlint"):
        if top in parts:
            parts = parts[parts.index(top) :]
            break
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


# ----------------------------------------------------------------------
# Linting entry points.
# ----------------------------------------------------------------------
def lint_source(
    source: str,
    *,
    path: str = "<string>",
    module: str | None = None,
    rules: Iterable | None = None,
) -> list[LintFinding]:
    """Lint one module's source text and return its findings."""
    from simlint.rules import default_rules

    active = list(rules) if rules is not None else default_rules()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            LintFinding(
                rule="SL000",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}",
            )
        ]
    per_line, per_file = _collect_suppressions(source)
    ctx = ModuleContext(
        path=path,
        module=module if module is not None else _module_name(Path(path)),
        source=source,
        tree=tree,
        aliases=_collect_aliases(tree),
        line_suppressions=per_line,
        file_suppressions=per_file,
    )

    scoped = [r for r in active if r.applies_to(ctx)]
    if not scoped:
        return []
    # One walk, dispatch by node type: each rule registers the node
    # classes it cares about so the hot loop stays a dict lookup.
    dispatch: dict[type, list] = {}
    for rule in scoped:
        for node_type in rule.node_types:
            dispatch.setdefault(node_type, []).append(rule)

    findings: list[LintFinding] = []
    for node in ast.walk(tree):
        for rule in dispatch.get(type(node), ()):
            for f in rule.check(node, ctx):
                if not ctx.suppressed(f.rule, f.line):
                    findings.append(f)
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def lint_file(path: Path | str, *, rules: Iterable | None = None) -> list[LintFinding]:
    p = Path(path)
    try:
        source = p.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [
            LintFinding(
                rule="SL000", path=str(p), line=1, col=0, message=f"unreadable: {exc}"
            )
        ]
    return lint_source(source, path=str(p), rules=rules)


def _excluded(path: Path, excludes: tuple[str, ...]) -> bool:
    text = path.as_posix()
    for pattern in excludes:
        if "/" in pattern:
            if pattern in text:
                return True
        elif pattern in path.parts:
            return True
    return False


def iter_python_files(
    paths: Iterable[Path | str], *, excludes: tuple[str, ...] = DEFAULT_EXCLUDES
) -> Iterator[Path]:
    """Yield ``*.py`` files under ``paths``, applying segment excludes."""
    seen: set[Path] = set()
    for raw in paths:
        root = Path(raw)
        # Explicitly named files are always linted; excludes only prune
        # directory recursion (same contract as ruff/flake8).
        explicit = root.is_file()
        if explicit:
            candidates = [root] if root.suffix == ".py" else []
        else:
            candidates = sorted(root.rglob("*.py"))
        for p in candidates:
            if p in seen or (not explicit and _excluded(p, excludes)):
                continue
            seen.add(p)
            yield p


def lint_paths(
    paths: Iterable[Path | str],
    *,
    rules: Iterable | None = None,
    excludes: tuple[str, ...] = DEFAULT_EXCLUDES,
) -> list[LintFinding]:
    """Lint every Python file under ``paths`` (the CLI's workhorse)."""
    findings: list[LintFinding] = []
    for p in iter_python_files(paths, excludes=excludes):
        findings.extend(lint_file(p, rules=rules))
    return findings
