"""simlint engine: two-phase whole-program analysis.

The engine owns everything that is not rule-specific:

* locating ``*.py`` files under the requested paths (minus default
  excludes such as the linter's own bad-on-purpose fixtures);
* deriving a dotted module name for each file so rules can scope
  themselves to simulator packages (``repro.core``, ``repro.pcm``, ...);
* building the per-module :class:`ModuleContext` — source lines, the
  import alias table used to resolve ``np.random.default_rng`` to its
  canonical ``numpy.random.default_rng`` form, and the suppression map
  parsed from ``# simlint: disable=SLxxx`` comments;
* a single AST walk per file that dispatches each node to every rule
  interested in that node type;
* **phase 1 / phase 2 orchestration** (:func:`lint_tree`): phase 1
  parses (or cache-loads) every file into the whole-program
  :class:`~simlint.project.ProjectModel`; phase 2 runs the per-file
  rules with that model in scope plus the project-level rules
  (architecture contract, API drift) against it.

Rules themselves live in :mod:`simlint.rules` and only look at nodes
(or, for project rules, at the model).
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import tokenize
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - circular-at-import type names only
    from simlint.cache import LintCache
    from simlint.config import SimlintSettings
    from simlint.project import ProjectModel

__all__ = [
    "LintFinding",
    "LintRun",
    "ModuleContext",
    "lint_source",
    "lint_file",
    "lint_paths",
    "lint_tree",
    "iter_python_files",
    "DEFAULT_EXCLUDES",
    "SEVERITIES",
]

SEVERITIES = ("error", "warn")

# Path *segments* (matched against every component of a file's path) that
# are skipped by default.  ``fixtures/simlint`` holds the deliberately
# bad snippets the rule tests assert against; linting them would make the
# clean-tree check meaningless.
DEFAULT_EXCLUDES: tuple[str, ...] = (
    ".git",
    "__pycache__",
    ".venv",
    "build",
    "dist",
    "out",
    "fixtures/simlint",
)

_SUPPRESS_RE = re.compile(r"#\s*simlint:\s*(disable|disable-file)\s*=\s*([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"

    def format(self) -> str:
        tag = "" if self.severity == "error" else f" [{self.severity}]"
        return f"{self.path}:{self.line}:{self.col}: {self.rule}{tag} {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
        }


@dataclass
class LintRun:
    """Aggregate result of a whole-tree lint (:func:`lint_tree`)."""

    findings: list[LintFinding] = field(default_factory=list)
    #: findings silenced by ``# simlint: disable`` comments, per rule id
    suppressed: dict[str, int] = field(default_factory=dict)
    files: int = 0
    cache_hits: int = 0
    project: "ProjectModel | None" = None

    @property
    def errors(self) -> list[LintFinding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[LintFinding]:
        return [f for f in self.findings if f.severity != "error"]


@dataclass
class ModuleContext:
    """Everything a rule may need to know about the module being linted."""

    path: str
    module: str
    source: str
    tree: ast.AST
    aliases: dict[str, str] = field(default_factory=dict)
    line_suppressions: dict[int, set[str]] = field(default_factory=dict)
    file_suppressions: set[str] = field(default_factory=set)
    #: whole-program model; None when linting a lone file/snippet
    project: "ProjectModel | None" = None
    settings: "SimlintSettings | None" = None

    # ------------------------------------------------------------------
    def in_package(self, *prefixes: str) -> bool:
        """True when the module lives under any of the dotted prefixes."""
        return any(
            self.module == p or self.module.startswith(p + ".") for p in prefixes
        )

    # ------------------------------------------------------------------
    def resolve(self, node: ast.expr) -> str | None:
        """Canonical dotted name of a Name/Attribute chain, or ``None``.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` given ``import numpy as np``;
        ``perf_counter`` resolves to ``time.perf_counter`` given
        ``from time import perf_counter``.  Non-name expressions (calls,
        subscripts) terminate resolution.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        head = parts[0]
        if head in self.aliases:
            parts[0:1] = self.aliases[head].split(".")
        return ".".join(parts)

    def suppressed(self, rule: str, line: int) -> bool:
        if rule in self.file_suppressions:
            return True
        return rule in self.line_suppressions.get(line, set())


# ----------------------------------------------------------------------
# Context construction helpers.
# ----------------------------------------------------------------------
def _collect_aliases(tree: ast.AST) -> dict[str, str]:
    """Map local names to the dotted path they were imported as."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".")[0]] = (
                    a.name if a.asname else a.name.split(".")[0]
                )
                if a.asname:
                    aliases[a.asname] = a.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for a in node.names:
                if a.name == "*":
                    continue
                aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases


def _collect_suppressions(source: str) -> tuple[dict[int, set[str]], set[str]]:
    """Parse ``# simlint: disable=...`` / ``disable-file=...`` comments.

    Line suppressions apply to findings reported on the comment's line;
    file suppressions apply to the whole module.  Tokenizing (rather than
    regex over raw lines) keeps directives inside string literals inert.
    """
    per_line: dict[int, set[str]] = {}
    per_file: set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _SUPPRESS_RE.search(tok.string)
            if not m:
                continue
            kind, codes_text = m.group(1), m.group(2)
            codes = {c.strip().upper() for c in codes_text.split(",") if c.strip()}
            if kind == "disable-file":
                per_file |= codes
            else:
                per_line.setdefault(tok.start[0], set()).update(codes)
    except tokenize.TokenError:
        pass
    return per_line, per_file


def _module_name(path: Path) -> str:
    """Dotted module name heuristic: strip any leading ``src`` component."""
    parts = list(path.with_suffix("").parts)
    for anchor in ("src",):
        if anchor in parts:
            parts = parts[parts.index(anchor) + 1 :]
            break
    # Drop leading path noise (absolute prefixes) down to a recognizable
    # top-level package when one is present.
    for top in ("repro", "tests", "benchmarks", "examples", "tools", "simlint"):
        if top in parts:
            parts = parts[parts.index(top) :]
            break
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


# ----------------------------------------------------------------------
# Linting entry points.
# ----------------------------------------------------------------------
def _apply_severity(
    finding: LintFinding, settings: "SimlintSettings | None"
) -> LintFinding:
    if settings is None:
        return finding
    override = settings.severity_for(finding.rule, finding.severity)
    if override != finding.severity:
        return replace(finding, severity=override)
    return finding


def _lint_module(
    source: str,
    *,
    path: str,
    module: str | None,
    rules: Iterable | None,
    tree: ast.AST | None = None,
    project: "ProjectModel | None" = None,
    settings: "SimlintSettings | None" = None,
) -> tuple[list[LintFinding], dict[str, int]]:
    """Run the per-file rules on one module: (findings, suppressed counts)."""
    from simlint.rules import default_rules

    active = [
        r
        for r in (list(rules) if rules is not None else default_rules())
        if not r.project_level
    ]
    if tree is None:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [
                LintFinding(
                    rule="SL000",
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"syntax error: {exc.msg}",
                )
            ], {}
    per_line, per_file = _collect_suppressions(source)
    ctx = ModuleContext(
        path=path,
        module=module if module is not None else _module_name(Path(path)),
        source=source,
        tree=tree,
        aliases=_collect_aliases(tree),
        line_suppressions=per_line,
        file_suppressions=per_file,
        project=project,
        settings=settings,
    )

    scoped = [r for r in active if r.applies_to(ctx)]
    if not scoped:
        return [], {}
    # One walk, dispatch by node type: each rule registers the node
    # classes it cares about so the hot loop stays a dict lookup.
    dispatch: dict[type, list] = {}
    for rule in scoped:
        for node_type in rule.node_types:
            dispatch.setdefault(node_type, []).append(rule)

    findings: list[LintFinding] = []
    suppressed: dict[str, int] = {}
    for node in ast.walk(tree):
        for rule in dispatch.get(type(node), ()):
            for f in rule.check(node, ctx):
                if ctx.suppressed(f.rule, f.line):
                    suppressed[f.rule] = suppressed.get(f.rule, 0) + 1
                else:
                    findings.append(_apply_severity(f, settings))
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings, suppressed


def lint_source(
    source: str,
    *,
    path: str = "<string>",
    module: str | None = None,
    rules: Iterable | None = None,
    project: "ProjectModel | None" = None,
    settings: "SimlintSettings | None" = None,
) -> list[LintFinding]:
    """Lint one module's source text and return its findings."""
    findings, _ = _lint_module(
        source,
        path=path,
        module=module,
        rules=rules,
        project=project,
        settings=settings,
    )
    return findings


def lint_file(path: Path | str, *, rules: Iterable | None = None) -> list[LintFinding]:
    p = Path(path)
    try:
        source = p.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [
            LintFinding(
                rule="SL000", path=str(p), line=1, col=0, message=f"unreadable: {exc}"
            )
        ]
    return lint_source(source, path=str(p), rules=rules)


def _excluded(path: Path, excludes: tuple[str, ...]) -> bool:
    text = path.as_posix()
    for pattern in excludes:
        if "/" in pattern:
            if pattern in text:
                return True
        elif pattern in path.parts:
            return True
    return False


def iter_python_files(
    paths: Iterable[Path | str], *, excludes: tuple[str, ...] = DEFAULT_EXCLUDES
) -> Iterator[Path]:
    """Yield ``*.py`` files under ``paths``, applying segment excludes."""
    seen: set[Path] = set()
    for raw in paths:
        root = Path(raw)
        # Explicitly named files are always linted; excludes only prune
        # directory recursion (same contract as ruff/flake8).
        explicit = root.is_file()
        if explicit:
            candidates = [root] if root.suffix == ".py" else []
        else:
            candidates = sorted(root.rglob("*.py"))
        for p in candidates:
            if p in seen or (not explicit and _excluded(p, excludes)):
                continue
            seen.add(p)
            yield p


def _interface_hash(project: "ProjectModel") -> str:
    """Digest of every project-visible function/class signature.

    Per-file findings can depend on other modules' parameter names
    (SL011 checks call sites against callee suffixes), so cached
    findings are only valid while this digest is unchanged.
    """
    h = hashlib.sha256()
    for mod in sorted(project.modules):
        info = project.modules[mod]
        for name in sorted(info.symbols):
            sym = info.symbols[name]
            if sym.kind in ("class", "function"):
                h.update(f"{mod}.{name}({','.join(sym.params)})".encode())
    return h.hexdigest()


def lint_tree(
    paths: Iterable[Path | str],
    *,
    rules: Iterable | None = None,
    excludes: tuple[str, ...] = DEFAULT_EXCLUDES,
    settings: "SimlintSettings | None" = None,
    cache: "LintCache | None" = None,
) -> LintRun:
    """Two-phase whole-program lint (the CLI's workhorse).

    Phase 1 builds the :class:`~simlint.project.ProjectModel` for every
    file under ``paths`` — from the incremental cache where file content
    is unchanged, by parsing otherwise.  Phase 2 runs the per-file rules
    (cached per file while the project interface digest holds) and then
    the project-level rules against the assembled model.
    """
    from simlint.project import ProjectModel, build_module_info, module_name_for
    from simlint.rules import default_rules

    active = list(rules) if rules is not None else default_rules()
    file_rules = [r for r in active if not r.project_level]
    project_rules = [r for r in active if r.project_level]
    # The cache stores findings for the *default* rule set only; a
    # --select/--ignore run bypasses it rather than polluting it.
    cache_usable = cache is not None and rules is None

    run = LintRun(project=ProjectModel())
    project = run.project
    assert project is not None

    @dataclass
    class _FileState:
        path: Path
        display: str
        entry: dict | None = None  # valid cache entry, if any
        source: str | None = None
        tree: ast.AST | None = None
        module: str = ""
        findings: list[LintFinding] = field(default_factory=list)
        suppressed: dict[str, int] = field(default_factory=dict)
        done: bool = False  # findings final (cache hit or SL000)

    states: list[_FileState] = []

    # ---- phase 1: assemble the project model -------------------------
    for p in iter_python_files(paths, excludes=excludes):
        st = _FileState(path=p, display=str(p))
        states.append(st)
        entry = digest = None
        if cache_usable:
            entry, digest = cache.probe(p, st.display)
        if entry is not None:
            st.entry = entry
            info = cache.entry_modinfo(entry)
            if info is not None:
                st.module = info.module
                project.add(info)
                continue
            # SL000 files cache with modinfo=None; findings still reusable.
            st.module = module_name_for(p)
            continue
        try:
            data = p.read_bytes()
            st.source = data.decode("utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            st.findings = [
                LintFinding(
                    rule="SL000",
                    path=st.display,
                    line=1,
                    col=0,
                    message=f"unreadable: {exc}",
                )
            ]
            st.done = True
            continue
        st.module = module_name_for(p)
        per_line, per_file = _collect_suppressions(st.source)
        info = build_module_info(
            st.source,
            path=st.display,
            module=st.module,
            line_suppressions=per_line,
            file_suppressions=per_file,
        )
        if info is not None:
            try:
                st.tree = ast.parse(st.source, filename=st.display)
            except SyntaxError:  # pragma: no cover - build_module_info parsed
                pass
            project.add(info)
        if cache_usable:
            st.entry = cache.store(
                p, st.display, data, modinfo=info, digest=digest
            )

    interface = _interface_hash(project)

    # ---- phase 2a: per-file rules ------------------------------------
    for st in states:
        if st.done:
            continue
        if st.entry is not None and st.source is None:
            cached = cache.entry_findings(st.entry, interface) if cache_usable else None
            if cached is not None:
                st.findings = cached
                st.suppressed = dict(st.entry.get("suppressed", {}))
                st.done = True
                continue
            # Interface drifted (or findings never stored): re-lint.
            try:
                st.source = st.path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                st.findings = [
                    LintFinding(
                        rule="SL000",
                        path=st.display,
                        line=1,
                        col=0,
                        message=f"unreadable: {exc}",
                    )
                ]
                st.done = True
                continue
        st.findings, st.suppressed = _lint_module(
            st.source,
            path=st.display,
            module=st.module,
            rules=file_rules,
            tree=st.tree,
            project=project,
            settings=settings,
        )
        if cache_usable and st.entry is not None:
            cache.set_findings(st.entry, interface, st.findings, st.suppressed)

    for st in states:
        run.findings.extend(st.findings)
        for rule_id, n in st.suppressed.items():
            run.suppressed[rule_id] = run.suppressed.get(rule_id, 0) + n
    run.files = len(states)

    # ---- phase 2b: project-level rules -------------------------------
    by_path = {m.path: m for m in project.modules.values()}
    for rule in project_rules:
        for f in rule.check_project(project, settings):
            info = by_path.get(f.path)
            if info is not None and info.suppressed(f.rule, f.line):
                run.suppressed[f.rule] = run.suppressed.get(f.rule, 0) + 1
                continue
            run.findings.append(_apply_severity(f, settings))

    run.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    if cache_usable:
        run.cache_hits = cache.hits
        cache.prune(s.path for s in states)
        cache.save()
    return run


def lint_paths(
    paths: Iterable[Path | str],
    *,
    rules: Iterable | None = None,
    excludes: tuple[str, ...] = DEFAULT_EXCLUDES,
    settings: "SimlintSettings | None" = None,
) -> list[LintFinding]:
    """Lint every Python file under ``paths``; findings only.

    Runs the full two-phase analysis (project rules included) with no
    cache.  When ``settings`` is not given, a ``simlint.toml`` found
    beside/above the first path configures the architecture contract.
    """
    if settings is None:
        from simlint.config import find_config_file, load_settings

        settings = load_settings(find_config_file(list(paths)))
    return lint_tree(paths, rules=rules, excludes=excludes, settings=settings).findings
