"""simlint rules SL001–SL016, tuned to the Tetris Write reproduction.

Each rule is a declarative class: ``id``/``title`` metadata, the AST
node types it wants dispatched, a path scope (``applies_to``), and a
``check`` generator yielding :class:`~simlint.engine.LintFinding`.
Project-level rules (``project_level = True``) instead implement
``check_project`` against the whole-program
:class:`~simlint.project.ProjectModel`.

The rule set encodes the repo's simulator invariants (DESIGN.md §6,
``schemes/base.py`` conventions):

====== ==============================================================
SL001  determinism — no unseeded RNG inside ``repro.*``
SL002  simulated time only — no wall clock in sim/core/schemes/pcm
SL003  ``WriteScheme`` subclasses must register + override abstracts
SL004  no ``==``/``!=`` on float time/energy expressions
SL005  no mutable default arguments
SL006  time-carrying parameters must use the ``_ns`` suffix convention
SL007  no swallowed-failure handlers (bare/broad except that eats it)
SL008  no bare ``print()`` in library code (CLI owns stdout)
SL009  no fork-unsafe multiprocessing patterns (mutable module state
       consumed in pool workers; lambdas as pool tasks)
SL010  oracle/simulator independence — the analytic oracle must not
       import production code, and production code must not import
       the oracle (``repro.cli`` excepted)
SL011  unit-flow — intraprocedural dataflow over physical units
       (``ns``, ``cycles``, ``bits``, ``pJ``, ``mA``, ...): mixed-unit
       ``+``/``-``/comparisons, unit-mismatched arguments against
       ``*_ns``/``*_pj`` parameters, and returns that contradict the
       function's own suffix; ``X_PER_Y`` conversion constants are the
       sanctioned escape hatch
SL012  architecture contract — the layer DAG declared in
       ``simlint.toml`` checked against the real import graph, plus
       import cycles and orphan modules (project-level)
SL013  API drift — ``docs/API.md`` cross-checked against the static
       symbol table: documented-but-deleted and
       public-but-undocumented symbols (project-level)
SL014  supervised parallelism — no bare ``multiprocessing.Pool`` /
       ``imap``-family dispatch in ``repro.*``; sweeps must go through
       ``repro.parallel.supervisor.WorkerSupervisor`` (``repro.cli``
       and the supervisor itself exempt)
SL015  async hygiene — no blocking calls (``time.sleep``,
       ``subprocess.*``, sync socket/select waits, ``os.fsync``, bare
       ``open``) inside ``async def`` in ``repro.service``; blocking
       work goes through ``loop.run_in_executor``
SL016  lane independence — ``repro.fastpath`` must not import the
       simulator (``repro.sim``/``repro.pcm``/``repro.schemes``) and
       the simulator must not import the fastpath; the differential
       recheck module and ``repro.cli`` are the sanctioned bridges
====== ==============================================================
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from simlint.engine import LintFinding, ModuleContext

if TYPE_CHECKING:  # pragma: no cover - type names only
    from simlint.config import SimlintSettings
    from simlint.project import ProjectModel

__all__ = [
    "LintRule",
    "RULE_REGISTRY",
    "default_rules",
    "UnseededRandomRule",
    "WallClockRule",
    "SchemeRegistrationRule",
    "FloatTimeEqualityRule",
    "MutableDefaultRule",
    "TimeUnitSuffixRule",
    "SwallowedExceptionRule",
    "BarePrintRule",
    "ForkUnsafeWorkerRule",
    "OracleIndependenceRule",
    "UnitFlowRule",
    "ArchitectureContractRule",
    "ApiDriftRule",
    "UnsupervisedPoolRule",
    "BlockingAsyncCallRule",
    "LaneIndependenceRule",
]

RULE_REGISTRY: dict[str, type["LintRule"]] = {}


class LintRule:
    """Base class; subclasses self-register by ``id``."""

    id: str = ""
    title: str = ""
    node_types: tuple[type, ...] = ()
    #: project-level rules run once against the whole-program model
    #: (phase 2b) instead of per file; they implement ``check_project``.
    project_level: bool = False
    #: default severity of this rule's findings ("error" | "warn");
    #: overridable per rule in ``simlint.toml`` ``[severity]``.
    severity: str = "error"

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        if cls.id:
            RULE_REGISTRY[cls.id] = cls

    # ------------------------------------------------------------------
    def applies_to(self, ctx: ModuleContext) -> bool:  # pragma: no cover
        return True

    def check(self, node: ast.AST, ctx: ModuleContext) -> Iterator[LintFinding]:
        raise NotImplementedError

    def check_project(self, project, settings) -> Iterator[LintFinding]:
        raise NotImplementedError

    def finding(
        self,
        node: ast.AST,
        ctx: ModuleContext,
        message: str,
        *,
        severity: str | None = None,
    ) -> LintFinding:
        return LintFinding(
            rule=self.id,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            severity=severity if severity is not None else self.severity,
        )

    def project_finding(
        self,
        *,
        path: str,
        line: int,
        message: str,
        col: int = 0,
        severity: str | None = None,
    ) -> LintFinding:
        return LintFinding(
            rule=self.id,
            path=path,
            line=line,
            col=col,
            message=message,
            severity=severity if severity is not None else self.severity,
        )


def default_rules() -> list[LintRule]:
    """One instance of every registered rule, in id order."""
    return [RULE_REGISTRY[k]() for k in sorted(RULE_REGISTRY)]


# ----------------------------------------------------------------------
# SL001 — determinism: every RNG must flow from a seeded Generator.
# ----------------------------------------------------------------------
class UnseededRandomRule(LintRule):
    """Unseeded / global-state RNG calls break trace reproducibility.

    Simulation results must be a pure function of ``SystemConfig.seed``
    (DESIGN.md; ``tests/test_reproducibility.py``).  Three families of
    call sites violate that:

    * ``numpy.random.default_rng()`` / ``RandomState()`` with no seed —
      entropy from the OS;
    * the legacy numpy global API (``np.random.randint`` etc.) — hidden
      process-wide state, including ``np.random.seed`` which mutates it;
    * the stdlib ``random`` module-level functions and ``SystemRandom``.

    Seeded constructions (``default_rng(seed)``, ``SeedSequence([...])``,
    ``random.Random(seed)``) and passing a ``Generator`` around are fine.
    """

    id = "SL001"
    title = "unseeded or global-state RNG in simulator code"
    node_types = (ast.Call,)

    _NUMPY_GLOBAL = re.compile(
        r"^numpy\.random\.("
        r"seed|rand|randn|randint|random|random_sample|ranf|sample|bytes|"
        r"choice|shuffle|permutation|uniform|normal|standard_normal|poisson|"
        r"binomial|geometric|exponential|beta|gamma|integers"
        r")$"
    )
    _STDLIB_GLOBAL = re.compile(
        r"^random\.("
        r"seed|random|randint|randrange|getrandbits|randbytes|choice|choices|"
        r"shuffle|sample|uniform|triangular|betavariate|expovariate|"
        r"gammavariate|gauss|lognormvariate|normalvariate|vonmisesvariate|"
        r"paretovariate|weibullvariate"
        r")$"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("repro")

    def check(self, node: ast.Call, ctx: ModuleContext) -> Iterator[LintFinding]:
        name = ctx.resolve(node.func)
        if name is None:
            return
        seeded = bool(node.args or node.keywords)
        if name in ("numpy.random.default_rng", "numpy.random.RandomState"):
            if not seeded:
                yield self.finding(
                    node,
                    ctx,
                    f"{name}() without a seed draws OS entropy; "
                    "thread the seed from SystemConfig.seed",
                )
        elif self._NUMPY_GLOBAL.match(name):
            yield self.finding(
                node,
                ctx,
                f"legacy global-state RNG call {name}(); "
                "use a seeded numpy.random.Generator instead",
            )
        elif name == "random.SystemRandom":
            yield self.finding(
                node, ctx, "random.SystemRandom is nondeterministic by design"
            )
        elif name == "random.Random" and not seeded:
            yield self.finding(
                node, ctx, "random.Random() without a seed draws OS entropy"
            )
        elif self._STDLIB_GLOBAL.match(name):
            yield self.finding(
                node,
                ctx,
                f"stdlib global-state RNG call {name}(); "
                "use a seeded numpy.random.Generator instead",
            )


# ----------------------------------------------------------------------
# SL002 — simulated time only in the simulator core.
# ----------------------------------------------------------------------
class WallClockRule(LintRule):
    """Wall-clock reads inside the simulator leak host time into results.

    The DES engine (``repro.sim.engine``) owns the only clock the model
    may observe; schemes, the scheduler, and the device model express
    time exclusively in simulated nanoseconds.  A ``perf_counter`` or
    ``datetime.now`` in those packages either silently perturbs results
    or sneaks profiling into a hot path — both belong in benchmarks.
    """

    id = "SL002"
    title = "wall-clock call inside simulated-time code"
    node_types = (ast.Call,)

    _FORBIDDEN = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.process_time",
            "time.process_time_ns",
            "time.clock_gettime",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
        }
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package(
            "repro.sim", "repro.core", "repro.schemes", "repro.pcm"
        )

    def check(self, node: ast.Call, ctx: ModuleContext) -> Iterator[LintFinding]:
        name = ctx.resolve(node.func)
        if name in self._FORBIDDEN:
            yield self.finding(
                node,
                ctx,
                f"wall-clock call {name}() in simulated-time code; "
                "use the Simulator clock (sim.now) or move timing to benchmarks/",
            )


# ----------------------------------------------------------------------
# SL003 — WriteScheme subclasses must register and be complete.
# ----------------------------------------------------------------------
class SchemeRegistrationRule(LintRule):
    """Concrete ``WriteScheme`` subclasses must be registry-complete.

    Registration happens in ``WriteScheme.__init_subclass__`` keyed on a
    string ``name`` class attribute, and the simulator dispatches on the
    registry — so a subclass without ``name`` silently vanishes from
    ``get_scheme``/``ALL_SCHEMES``, and one missing an abstract override
    explodes only when first instantiated.  The rule requires every
    non-abstract direct subclass to define ``name`` (a string literal),
    ``requires_read``, and both abstract methods in its own body or via
    an explicit assignment.  The write hook is satisfied by either
    ``_write_once`` (the template-method hook the base ``write`` wraps
    with wear + fault handling) or a full ``write`` override (legacy
    subclasses that bypass the fault path).
    """

    id = "SL003"
    title = "incomplete WriteScheme subclass"
    node_types = (ast.ClassDef,)

    # Each entry is a tuple of acceptable spellings; defining any one of
    # them satisfies the requirement.
    _ABSTRACTS = (("_write_once", "write"), ("worst_case_units",))
    _CLASSVARS = ("name", "requires_read")

    def _is_writescheme_base(self, base: ast.expr, ctx: ModuleContext) -> bool:
        name = ctx.resolve(base)
        return name is not None and (
            name == "WriteScheme" or name.endswith(".WriteScheme")
        )

    @staticmethod
    def _is_abstract(node: ast.ClassDef, ctx: ModuleContext) -> bool:
        for base in node.bases:
            resolved = ctx.resolve(base) or ""
            if resolved in ("ABC", "abc.ABC") or resolved.endswith(".ABC"):
                return True
        for kw in node.keywords:
            if kw.arg == "metaclass":
                return True
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for deco in stmt.decorator_list:
                    resolved = ctx.resolve(deco) or ""
                    if resolved.split(".")[-1] == "abstractmethod":
                        return True
        return False

    def check(self, node: ast.ClassDef, ctx: ModuleContext) -> Iterator[LintFinding]:
        if not any(self._is_writescheme_base(b, ctx) for b in node.bases):
            return
        if self._is_abstract(node, ctx):
            return

        defined: set[str] = set()
        name_value: ast.expr | None = None
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defined.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for tgt in stmt.targets:
                    if isinstance(tgt, ast.Name):
                        defined.add(tgt.id)
                        if tgt.id == "name":
                            name_value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                # Annotation-only (`name: ClassVar[str]`) declares, but does
                # not define — only a value registers the scheme.
                if stmt.value is not None:
                    defined.add(stmt.target.id)
                    if stmt.target.id == "name":
                        name_value = stmt.value

        for attr in self._CLASSVARS:
            if attr not in defined:
                yield self.finding(
                    node,
                    ctx,
                    f"WriteScheme subclass {node.name} does not set {attr!r}; "
                    "without a string `name` it is never entered in SCHEME_REGISTRY",
                )
        if name_value is not None and not (
            isinstance(name_value, ast.Constant) and isinstance(name_value.value, str)
        ):
            yield self.finding(
                node,
                ctx,
                f"{node.name}.name must be a string literal for registration",
            )
        for spellings in self._ABSTRACTS:
            if not any(meth in defined for meth in spellings):
                wanted = " or ".join(repr(m) for m in spellings)
                yield self.finding(
                    node,
                    ctx,
                    f"WriteScheme subclass {node.name} does not override "
                    f"abstract method {wanted}",
                )


# ----------------------------------------------------------------------
# SL004 — float time/energy expressions must not use == / !=.
# ----------------------------------------------------------------------
class FloatTimeEqualityRule(LintRule):
    """Exact equality on derived float times/energies is a latent bug.

    ``service_ns``, energies, and anything built from ``t_set``/``t_reset``
    go through float arithmetic (``units * t_set_ns``, Eq. 5's
    ``subresult / K``), so ``==`` comparisons hold only by accident of
    rounding.  Compare with a tolerance (``math.isclose``,
    ``pytest.approx``, ``numpy.isclose``) or restructure as an ordering
    test.  Comparisons whose other side is wrapped in one of those
    tolerance helpers are accepted.
    """

    id = "SL004"
    title = "exact float equality on time/energy expression"
    node_types = (ast.Compare,)

    _UNIT_NAME = re.compile(r"(_ns$|^t_set(_ns)?$|^t_reset(_ns)?$|energy)", re.I)
    _TOLERANT = frozenset({"approx", "isclose", "allclose", "assert_allclose"})

    def _terminal_name(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        return None

    def _unit_bearing(self, node: ast.expr) -> bool:
        if isinstance(node, ast.BinOp):
            return self._unit_bearing(node.left) or self._unit_bearing(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._unit_bearing(node.operand)
        if isinstance(node, ast.Call):
            # sum(x.service_ns ...), float(x.energy) keep their units, but a
            # tolerance helper (pytest.approx(...)) deliberately does not.
            if (self._terminal_name(node.func) or "") in self._TOLERANT:
                return False
            return any(self._unit_bearing(a) for a in node.args)
        name = self._terminal_name(node)
        return bool(name and self._UNIT_NAME.search(name))

    def _tolerant(self, node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and (self._terminal_name(node.func) or "") in self._TOLERANT
        )

    def check(self, node: ast.Compare, ctx: ModuleContext) -> Iterator[LintFinding]:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if self._tolerant(left) or self._tolerant(right):
                continue
            for side, other in ((left, right), (right, left)):
                if self._unit_bearing(side):
                    if isinstance(other, ast.Constant) and isinstance(
                        other.value, str
                    ):
                        break  # comparing a label, not a quantity
                    sym = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        left,
                        ctx,
                        f"exact float {sym} on time/energy expression; use "
                        "math.isclose/pytest.approx or an ordering comparison",
                    )
                    break


# ----------------------------------------------------------------------
# SL005 — mutable default arguments.
# ----------------------------------------------------------------------
class MutableDefaultRule(LintRule):
    """A mutable default is shared across calls — state leaks between
    writes/experiments, the exact class of bug the determinism tests
    cannot catch because the first run is self-consistent."""

    id = "SL005"
    title = "mutable default argument"
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    _MUTABLE_CALLS = frozenset(
        {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter"}
    )

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = None
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            return name in self._MUTABLE_CALLS
        return False

    def check(self, node, ctx: ModuleContext) -> Iterator[LintFinding]:
        args = node.args
        for default in [*args.defaults, *args.kw_defaults]:
            if default is not None and self._is_mutable(default):
                fn = getattr(node, "name", "<lambda>")
                yield self.finding(
                    default,
                    ctx,
                    f"mutable default argument in {fn}(); "
                    "use None and construct inside the function",
                )


# ----------------------------------------------------------------------
# SL006 — time-carrying parameters use the _ns suffix convention.
# ----------------------------------------------------------------------
class TimeUnitSuffixRule(LintRule):
    """Public time-valued parameters must say their unit.

    ``schemes/base.py`` documents the convention: everything that is a
    time is named ``*_ns`` (the scheduler's unitless quantities are
    ``*_units``/``result``/``subresult``).  An unsuffixed ``delay`` or
    ``latency`` parameter on a public function in ``repro.core`` /
    ``repro.schemes`` invites ns-vs-cycles mix-ups at call sites —
    exactly the interface drift the scaling PRs would multiply.
    """

    id = "SL006"
    title = "time-valued parameter missing unit suffix"
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    _TIME_WORDS = re.compile(
        r"(^|_)(time|latency|delay|duration|deadline|timeout|interval|elapsed|overhead|period)(_|$)",
        re.I,
    )
    _UNIT_SUFFIX = re.compile(
        r"(_ns|_us|_ms|_s|_sec|_seconds|_cycles|_ticks|_units|_insts|_hz|_ghz|_mhz)$"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("repro.core", "repro.schemes")

    def check(self, node, ctx: ModuleContext) -> Iterator[LintFinding]:
        if node.name.startswith("_"):
            return
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            name = arg.arg
            if name in ("self", "cls"):
                continue
            if self._TIME_WORDS.search(name) and not self._UNIT_SUFFIX.search(name):
                yield self.finding(
                    arg,
                    ctx,
                    f"parameter {name!r} of public {node.name}() looks "
                    "time-valued but has no unit suffix; use the _ns "
                    "convention from schemes/base.py",
                )


# ----------------------------------------------------------------------
# SL007 — no swallowed-failure handlers in simulator code.
# ----------------------------------------------------------------------
class SwallowedExceptionRule(LintRule):
    """Simulator code must never silently eat a failure.

    The fault subsystem (``repro.faults``) turns hardware failures into
    structured exceptions precisely so nothing corrupts state silently —
    a ``bare except:`` or an ``except Exception:`` whose body just
    ``pass``es undoes that guarantee and hides real bugs (an
    :class:`InvariantViolation` or ``UncorrectableWriteError`` vanishing
    into a handler is indistinguishable from a clean run).  Flagged:

    * ``except:`` with no exception type, unless the body re-raises;
    * ``except Exception`` / ``except BaseException`` whose body is
      only ``pass``/``...`` (optionally behind a docstring/comment).

    Catching *specific* exceptions, logging-and-handling, and broad
    handlers that re-raise are all fine.
    """

    id = "SL007"
    title = "swallowed-failure exception handler"
    node_types = (ast.ExceptHandler,)

    _BROAD = frozenset({"Exception", "BaseException"})

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("repro")

    @staticmethod
    def _reraises(body: list[ast.stmt]) -> bool:
        for stmt in ast.walk(ast.Module(body=body, type_ignores=[])):
            if isinstance(stmt, ast.Raise):
                return True
        return False

    @staticmethod
    def _swallows(body: list[ast.stmt]) -> bool:
        """True when the handler body does nothing with the failure."""
        meaningful = [
            stmt
            for stmt in body
            if not (
                isinstance(stmt, ast.Pass)
                or (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant))
            )
        ]
        return not meaningful

    def _broad_names(self, node: ast.ExceptHandler, ctx: ModuleContext) -> bool:
        types = (
            node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
        )
        for t in types:
            resolved = ctx.resolve(t) if t is not None else None
            if resolved is not None and resolved.split(".")[-1] in self._BROAD:
                return True
        return False

    def check(
        self, node: ast.ExceptHandler, ctx: ModuleContext
    ) -> Iterator[LintFinding]:
        if node.type is None:
            if not self._reraises(node.body):
                yield self.finding(
                    node,
                    ctx,
                    "bare `except:` swallows every failure (including "
                    "InvariantViolation); catch the specific exception "
                    "or re-raise",
                )
            return
        if self._broad_names(node, ctx) and self._swallows(node.body):
            yield self.finding(
                node,
                ctx,
                "`except Exception: pass` silently eats a fault; handle "
                "it, narrow the type, or let it propagate",
            )


# ----------------------------------------------------------------------
# SL008 — library code must not print; the CLI owns stdout.
# ----------------------------------------------------------------------
class BarePrintRule(LintRule):
    """Bare ``print()`` calls inside ``src/repro`` pollute stdout.

    The simulator is a library first: experiments return result objects,
    metrics flow through ``repro.obs.MetricRegistry``, and the only
    component allowed to talk to the terminal is ``repro.cli`` (which
    also formats machine-readable output for the bench harness).  A
    stray ``print()`` deep in a scheme or the memory controller

    * corrupts piped output (``tetris-write ... | python -``),
    * breaks bit-identity diffing of run logs, and
    * cannot be silenced per-run the way tracer/metric output can.

    Return strings, raise structured exceptions, or record to the
    metric registry instead.  ``repro.cli`` itself is exempt.
    """

    id = "SL008"
    title = "bare print() in library code"
    node_types = (ast.Call,)

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("repro") and not ctx.in_package("repro.cli")

    def check(self, node: ast.Call, ctx: ModuleContext) -> Iterator[LintFinding]:
        if ctx.resolve(node.func) == "print":
            yield self.finding(
                node,
                ctx,
                "library code must not print(); return the string, use "
                "the repro.obs metric registry, or move output to "
                "repro.cli",
            )

# ----------------------------------------------------------------------
# SL009 — fork-unsafe multiprocessing patterns.
# ----------------------------------------------------------------------
class ForkUnsafeWorkerRule(LintRule):
    """Pool workers must not rely on mutable module-level state.

    The sweep engine (``repro.parallel``) fans experiment cells over a
    process pool.  Two patterns look correct under Linux's ``fork`` start
    method but are wrong or non-portable:

    * **Module-level mutable state consumed inside a worker function** —
      each forked process mutates its *own copy*, so accumulations
      silently diverge from the serial run and vanish when the pool
      exits (and under ``spawn`` the state is re-imported empty).  Pass
      state through the task payload, return it from the worker, or use
      a per-process ``functools.lru_cache`` on a pure function.
    * **Lambdas (or other unpicklable callables) submitted as pool
      tasks** — ``fork`` happens to ship them, but ``spawn``/
      ``forkserver`` (macOS/Windows defaults) pickle the callable by
      qualified name and crash.  Define workers at module top level.

    The rule analyzes one module at a time: it collects module-level
    mutable bindings and pool-task submissions (``pool.map``-family
    methods, ``parallel_map``, ``Process(target=...)``), then walks each
    locally-defined worker for reads/writes of those bindings.
    """

    id = "SL009"
    title = "fork-unsafe multiprocessing pattern"
    node_types = (ast.Module,)

    # Methods that submit a callable to a pool.  The generic names (map,
    # apply) are only trusted when the receiver looks like a pool or an
    # executor; the multiprocessing-specific spellings always count.
    _POOL_ONLY_METHODS = frozenset(
        {"imap", "imap_unordered", "map_async", "starmap", "starmap_async",
         "apply_async"}
    )
    _GENERIC_METHODS = frozenset({"map", "apply", "submit"})
    _TASK_FUNCS = frozenset({"parallel_map"})
    _RECEIVER_HINT = re.compile(r"(pool|executor)", re.I)
    _MUTABLE_CALLS = frozenset(
        {"list", "dict", "set", "bytearray", "defaultdict", "deque",
         "Counter", "OrderedDict"}
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("repro")

    # -- module-level mutable bindings ---------------------------------
    def _is_mutable_value(self, node: ast.expr) -> bool:
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return True
        if isinstance(node, ast.Call):
            name = None
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            return name in self._MUTABLE_CALLS
        return False

    def _module_mutables(self, module: ast.Module) -> dict[str, ast.stmt]:
        out: dict[str, ast.stmt] = {}
        for stmt in module.body:
            if isinstance(stmt, ast.Assign) and self._is_mutable_value(stmt.value):
                for tgt in stmt.targets:
                    if isinstance(tgt, ast.Name):
                        out[tgt.id] = stmt
            elif (
                isinstance(stmt, ast.AnnAssign)
                and stmt.value is not None
                and isinstance(stmt.target, ast.Name)
                and self._is_mutable_value(stmt.value)
            ):
                out[stmt.target.id] = stmt
        return out

    # -- pool-task submissions -----------------------------------------
    def _receiver_text(self, node: ast.expr, ctx: ModuleContext) -> str:
        resolved = ctx.resolve(node)
        if resolved is not None:
            return resolved
        if isinstance(node, ast.Attribute):
            return node.attr
        return ""

    def _task_exprs(self, tree: ast.Module, ctx: ModuleContext) -> list[ast.expr]:
        """Every expression submitted as a pool task in this module."""
        tasks: list[ast.expr] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                method = func.attr
                is_pool_call = method in self._POOL_ONLY_METHODS or (
                    method in self._GENERIC_METHODS
                    and self._RECEIVER_HINT.search(
                        self._receiver_text(func.value, ctx)
                    )
                )
                if is_pool_call and node.args:
                    tasks.append(node.args[0])
                    continue
            resolved = ctx.resolve(func)
            if resolved is not None:
                tail = resolved.split(".")[-1]
                if tail in self._TASK_FUNCS and node.args:
                    tasks.append(node.args[0])
                    continue
                if tail == "Process":
                    for kw in node.keywords:
                        if kw.arg == "target":
                            tasks.append(kw.value)
        return tasks

    @staticmethod
    def _unwrap_partial(expr: ast.expr) -> ast.expr:
        """``partial(fn, ...)`` submits ``fn``; look through it."""
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, (ast.Name, ast.Attribute))
            and (
                expr.func.id if isinstance(expr.func, ast.Name) else expr.func.attr
            )
            == "partial"
            and expr.args
        ):
            return expr.args[0]
        return expr

    # ------------------------------------------------------------------
    def check(self, node: ast.Module, ctx: ModuleContext) -> Iterator[LintFinding]:
        mutables = self._module_mutables(node)
        tasks = self._task_exprs(node, ctx)
        if not tasks:
            return

        worker_names: set[str] = set()
        for expr in tasks:
            expr = self._unwrap_partial(expr)
            if isinstance(expr, ast.Lambda):
                yield self.finding(
                    expr,
                    ctx,
                    "lambda passed as a pool task cannot be pickled under "
                    "the spawn start method; define a top-level worker "
                    "function",
                )
            elif isinstance(expr, ast.Name):
                worker_names.add(expr.id)

        if not mutables or not worker_names:
            return
        workers = [
            stmt
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name in worker_names
        ]
        for fn in workers:
            reported: set[str] = set()
            for sub in ast.walk(fn):
                if (
                    isinstance(sub, ast.Name)
                    and sub.id in mutables
                    and sub.id not in reported
                ):
                    reported.add(sub.id)
                    yield self.finding(
                        sub,
                        ctx,
                        f"pool worker {fn.name}() uses module-level mutable "
                        f"state {sub.id!r}; each forked process mutates its "
                        "own copy (results diverge silently) — pass it via "
                        "the task payload or return it from the worker",
                    )


# ----------------------------------------------------------------------
# SL010 — oracle independence: schemes and oracle must not share code.
# ----------------------------------------------------------------------
class OracleIndependenceRule(LintRule):
    """The differential oracle only catches bugs it does not share.

    ``repro.oracle.analytic`` re-implements Equations 1-5 from the paper
    text precisely so that a wrong answer in the production schedulers
    cannot be reproduced by construction on the oracle side.  Two import
    directions break that guarantee:

    * **oracle -> simulator**: ``repro.oracle.analytic`` importing
      ``repro.schemes`` / ``repro.core`` / ``repro.pcm`` / ``repro.sim``
      / ``repro.config`` would let production arithmetic leak into the
      "independent" model (the differential *harness* modules are the
      sanctioned bridge and are exempt);
    * **simulator -> oracle**: production code importing
      ``repro.oracle`` would invert the dependency — a scheme computing
      its latency *from* the oracle makes the cross-check a tautology.
      Only ``repro.cli`` (reporting) and ``repro.fastpath`` (the
      analytic sweep lane, itself barred from simulator imports by
      SL016) may depend on the oracle package.
    """

    id = "SL010"
    title = "oracle/simulator independence violation"
    node_types = (ast.Import, ast.ImportFrom)

    #: simulator packages the analytic oracle must never touch.
    _SIM_PACKAGES = (
        "repro.schemes", "repro.core", "repro.pcm", "repro.sim",
        "repro.config",
    )
    #: oracle modules under the independence contract (the differential /
    #: metamorphic harnesses legitimately drive the production code).
    _INDEPENDENT = ("repro.oracle.analytic", "repro.oracle.paper_claims")

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("repro") and not ctx.in_package("repro.cli")

    @staticmethod
    def _targets(node: ast.Import | ast.ImportFrom) -> list[str]:
        if isinstance(node, ast.Import):
            return [alias.name for alias in node.names]
        if node.module and not node.level:
            return [node.module]
        return []

    def check(
        self, node: ast.Import | ast.ImportFrom, ctx: ModuleContext
    ) -> Iterator[LintFinding]:
        in_oracle = ctx.in_package("repro.oracle")
        independent = any(
            ctx.module == m or ctx.module.startswith(m + ".")
            for m in self._INDEPENDENT
        )
        for target in self._targets(node):
            if independent and any(
                target == p or target.startswith(p + ".")
                for p in self._SIM_PACKAGES
            ):
                yield self.finding(
                    node,
                    ctx,
                    f"{ctx.module} must stay independent of the simulator "
                    f"but imports {target}; the analytic oracle is only "
                    "a cross-check if it shares no production code "
                    "(docs/ORACLE.md)",
                )
            elif (
                not in_oracle
                and not ctx.in_package("repro.fastpath")
                and (
                    target == "repro.oracle"
                    or target.startswith("repro.oracle.")
                )
            ):
                yield self.finding(
                    node,
                    ctx,
                    f"production module {ctx.module} imports {target}; "
                    "scheme/simulator code deriving answers from the "
                    "oracle makes the differential cross-check a "
                    "tautology — only repro.cli may report oracle results",
                )


# ----------------------------------------------------------------------
# SL011 — unit-flow: physical units tracked through dataflow.
# ----------------------------------------------------------------------
class UnitFlowRule(LintRule):
    """Mixed physical units caught at lint time, before the DES runs.

    Every latency, energy and current in this repo is a bare float;
    Eq. 1-5 correctness hinges on never adding ``ns`` to ``cycles`` or
    feeding a per-bit current into a chip-level ``*_pj`` parameter.
    SL004/SL006 police *names*; this rule follows the *values*: units
    are inferred from suffix conventions (``_ns``, ``_cycles``,
    ``_bits``, ``_pj``, ``_ma``, ``_units``, ...) on variables,
    attributes, parameters and call results, then propagated
    intraprocedurally through assignments, arithmetic and returns.
    Flagged:

    * ``+``/``-``/comparisons whose two sides carry *different* known
      units (``t_read_ns + t_cmd_cycles``);
    * assigning/augmenting a ``*_ns`` (etc.) name from an expression
      with a different known unit;
    * call arguments whose known unit contradicts the parameter's
      suffix — keyword arguments always, positional arguments when the
      callee's signature is known (same module, or via the phase-1
      project symbol table);
    * ``return`` expressions that contradict the function's own suffix.

    The escape hatch for deliberate conversions is a ``X_PER_Y``
    constant (``NS_PER_CYCLE``, ``joules_per_unit``): multiplying or
    dividing by one converts the unit instead of flagging.  Products of
    two unit-bearing values (``current_ma * t_ns``) deliberately yield
    an *unknown* unit — dimensional algebra is out of scope; the rule
    only ever fires when both sides are confidently known.
    """

    id = "SL011"
    title = "mixed physical units in dataflow"
    node_types = (ast.Module,)

    #: terminal-token -> canonical unit family
    _SUFFIX_UNITS = {
        "ns": "ns", "us": "us", "ms": "ms", "sec": "s", "seconds": "s",
        "cycles": "cycles", "ticks": "cycles",
        "bits": "bits", "bytes": "bytes",
        "pj": "pJ", "nj": "nJ", "joules": "J",
        "ma": "mA", "amps": "A",
        "hz": "Hz", "khz": "kHz", "mhz": "MHz", "ghz": "GHz",
        "units": "units",
    }
    #: tokens accepted on either side of ``_PER_`` in a conversion name
    _CONV_TOKENS = {
        "ns": "ns", "us": "us", "ms": "ms", "s": "s", "sec": "s",
        "second": "s", "seconds": "s",
        "cycle": "cycles", "cycles": "cycles",
        "tick": "cycles", "ticks": "cycles",
        "bit": "bits", "bits": "bits", "byte": "bytes", "bytes": "bytes",
        "pj": "pJ", "nj": "nJ", "j": "J", "joule": "J", "joules": "J",
        "ma": "mA", "amp": "A", "amps": "A",
        "hz": "Hz", "khz": "kHz", "mhz": "MHz", "ghz": "GHz",
        "unit": "units", "units": "units",
    }
    #: calls transparent to units (propagate their first argument)
    _TRANSPARENT = frozenset(
        {"int", "float", "abs", "round", "sum", "min", "max", "full"}
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("repro")

    # -- unit vocabulary ------------------------------------------------
    @classmethod
    def _name_unit(cls, name: str) -> str | None:
        tokens = name.lower().split("_")
        if "per" in tokens:
            return None  # conversion constants are not unit-bearing
        return cls._SUFFIX_UNITS.get(tokens[-1])

    @classmethod
    def _conversion(cls, name: str) -> tuple[str, str | None] | None:
        """(numerator unit, denominator unit) of an ``X_PER_Y`` name."""
        tokens = name.lower().split("_")
        if "per" not in tokens:
            return None
        i = tokens.index("per")
        num = cls._CONV_TOKENS.get(tokens[i - 1]) if i > 0 else None
        den = cls._CONV_TOKENS.get(tokens[i + 1]) if i + 1 < len(tokens) else None
        if num is None:
            return None
        return num, den

    @staticmethod
    def _terminal(node: ast.expr) -> str | None:
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        return None

    @staticmethod
    def _target_key(node: ast.expr) -> str | None:
        """Stable env key for a Name or dotted Attribute chain."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        return ".".join(reversed(parts))

    @staticmethod
    def _is_number(node: ast.expr) -> bool:
        if isinstance(node, ast.UnaryOp):
            node = node.operand
        return isinstance(node, ast.Constant) and isinstance(
            node.value, (int, float)
        )

    # -- callee signature lookup ---------------------------------------
    def _callee_params(
        self, func: ast.expr, ctx: ModuleContext, local_defs: dict
    ) -> tuple[str, ...] | None:
        if isinstance(func, ast.Name) and func.id in local_defs:
            return local_defs[func.id]
        dotted = ctx.resolve(func)
        if dotted is None or ctx.project is None:
            return None
        hit = ctx.project.lookup(dotted)
        if hit is None:
            return None
        _, sym = hit
        return sym.params or None

    # ------------------------------------------------------------------
    def check(self, node: ast.Module, ctx: ModuleContext) -> Iterator[LintFinding]:
        # Signatures of functions/classes defined in this module, for
        # positional-argument checking without a project model.
        local_defs: dict[str, tuple[str, ...]] = {}
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = stmt.args
                names = [a.arg for a in [*args.posonlyargs, *args.args]]
                if names and names[0] in ("self", "cls"):
                    names = names[1:]
                local_defs[stmt.name] = tuple(
                    names + [a.arg for a in args.kwonlyargs]
                )
            elif isinstance(stmt, ast.ClassDef):
                fields = [
                    s.target.id
                    for s in stmt.body
                    if isinstance(s, ast.AnnAssign)
                    and isinstance(s.target, ast.Name)
                    and not s.target.id.startswith("_")
                ]
                for s in stmt.body:
                    if (
                        isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and s.name == "__init__"
                    ):
                        a = s.args
                        fields = [p.arg for p in [*a.posonlyargs, *a.args]][1:]
                        fields += [p.arg for p in a.kwonlyargs]
                        break
                local_defs[stmt.name] = tuple(fields)

        # Analyze module top level as one scope, then every function.
        yield from self._check_scope(node.body, None, ctx, local_defs)
        for sub in ast.walk(node):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_scope(sub.body, sub, ctx, local_defs)

    # ------------------------------------------------------------------
    def _check_scope(
        self, body, fn, ctx: ModuleContext, local_defs
    ) -> Iterator[LintFinding]:
        env: dict[str, str] = {}
        findings: list[LintFinding] = []
        if fn is not None:
            args = fn.args
            for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                unit = self._name_unit(a.arg)
                if unit:
                    env[a.arg] = unit
        fn_unit = self._name_unit(fn.name) if fn is not None else None

        def unit_of(node: ast.expr) -> str | None:
            if isinstance(node, ast.Name):
                return env.get(node.id) or self._name_unit(node.id)
            if isinstance(node, ast.Attribute):
                key = self._target_key(node)
                if key is not None and key in env:
                    return env[key]
                return self._name_unit(node.attr)
            if isinstance(node, ast.Subscript):
                return unit_of(node.value)
            if isinstance(node, ast.UnaryOp):
                return unit_of(node.operand)
            if isinstance(node, ast.IfExp):
                return unit_of(node.body) or unit_of(node.orelse)
            if isinstance(node, ast.Call):
                visit_call(node)
                term = self._terminal(node.func)
                if term is not None:
                    if term in self._TRANSPARENT:
                        for arg in node.args:
                            u = unit_of(arg)
                            if u:
                                return u
                        return None
                    u = self._name_unit(term)
                    if u:
                        return u
                return None
            if isinstance(node, ast.BinOp):
                return visit_binop(node)
            if isinstance(node, ast.Compare):
                visit_compare(node)
                return None
            return None

        def flag(node: ast.AST, message: str) -> None:
            findings.append(self.finding(node, ctx, message))

        def visit_binop(node: ast.BinOp) -> str | None:
            lu, ru = unit_of(node.left), unit_of(node.right)
            if isinstance(node.op, (ast.Add, ast.Sub)):
                if lu and ru and lu != ru:
                    op = "+" if isinstance(node.op, ast.Add) else "-"
                    flag(
                        node,
                        f"mixed units in `{op}`: left is {lu}, right is "
                        f"{ru}; convert explicitly via an X_PER_Y "
                        "constant",
                    )
                    # Poison the result so one seam flags once, not at
                    # every enclosing operation up the expression tree.
                    return None
                return lu or ru
            lconv = self._conversion(self._terminal(node.left) or "")
            rconv = self._conversion(self._terminal(node.right) or "")
            if isinstance(node.op, ast.Mult):
                if rconv is not None and (lu is None or lu == rconv[1]):
                    return rconv[0]
                if lconv is not None and (ru is None or ru == lconv[1]):
                    return lconv[0]
                if lu and ru:
                    return None  # dimensional product: out of scope
                if lu and self._is_number(node.right):
                    return lu
                if ru and self._is_number(node.left):
                    return ru
                return None
            if isinstance(node.op, (ast.Div, ast.FloorDiv)):
                if rconv is not None and (lu is None or lu == rconv[0]):
                    return rconv[1]
                if lu and ru:
                    return None  # ratio or rate: out of scope
                if lu and self._is_number(node.right):
                    return lu
                return None
            if isinstance(node.op, ast.Mod):
                return lu
            return None

        def visit_compare(node: ast.Compare) -> None:
            operands = [node.left, *node.comparators]
            units = [unit_of(o) for o in operands]
            for (left, lu), (right, ru) in zip(
                zip(operands, units), zip(operands[1:], units[1:])
            ):
                if lu and ru and lu != ru:
                    flag(
                        left,
                        f"comparison mixes units: {lu} vs {ru}; convert "
                        "explicitly via an X_PER_Y constant",
                    )

        def visit_call(node: ast.Call) -> None:
            params = self._callee_params(node.func, ctx, local_defs)
            callee = self._terminal(node.func) or "<call>"
            if params:
                for arg, param in zip(node.args, params):
                    if isinstance(arg, ast.Starred):
                        break
                    pu = self._name_unit(param)
                    au = unit_of(arg)
                    if pu and au and au != pu:
                        flag(
                            arg,
                            f"argument of unit {au} passed to parameter "
                            f"{param!r} ({pu}) of {callee}()",
                        )
            for kw in node.keywords:
                if kw.arg is None:
                    continue
                pu = self._name_unit(kw.arg)
                au = unit_of(kw.value)
                if pu and au and au != pu:
                    flag(
                        kw.value,
                        f"argument of unit {au} passed to parameter "
                        f"{kw.arg!r} ({pu}) of {callee}()",
                    )

        def visit_stmt(stmt: ast.stmt) -> None:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                return  # nested scopes analyzed separately
            if isinstance(stmt, ast.Assign):
                value_unit = unit_of(stmt.value)
                for tgt in stmt.targets:
                    assign_to(tgt, value_unit, stmt)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                assign_to(stmt.target, unit_of(stmt.value), stmt)
            elif isinstance(stmt, ast.AugAssign):
                value_unit = unit_of(stmt.value)
                target_unit = unit_of(stmt.target)
                if (
                    isinstance(stmt.op, (ast.Add, ast.Sub))
                    and value_unit
                    and target_unit
                    and value_unit != target_unit
                ):
                    op = "+=" if isinstance(stmt.op, ast.Add) else "-="
                    flag(
                        stmt,
                        f"`{op}` mixes units: target is {target_unit}, "
                        f"value is {value_unit}",
                    )
            elif isinstance(stmt, ast.Return):
                if stmt.value is not None:
                    u = unit_of(stmt.value)
                    if fn_unit and u and u != fn_unit:
                        flag(
                            stmt,
                            f"{fn.name}() is suffixed {fn_unit} but "
                            f"returns a {u} expression",
                        )
            elif isinstance(stmt, ast.Expr):
                unit_of(stmt.value)
            elif isinstance(stmt, (ast.If, ast.While)):
                unit_of(stmt.test)
                for child in [*stmt.body, *stmt.orelse]:
                    visit_stmt(child)
            elif isinstance(stmt, ast.For):
                unit_of(stmt.iter)
                key = self._target_key(stmt.target)
                iter_unit = unit_of(stmt.iter)
                if key is not None and iter_unit:
                    env[key] = iter_unit
                for child in [*stmt.body, *stmt.orelse]:
                    visit_stmt(child)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for child in stmt.body:
                    visit_stmt(child)
            elif isinstance(stmt, ast.Try):
                for child in [*stmt.body, *stmt.orelse, *stmt.finalbody]:
                    visit_stmt(child)
                for handler in stmt.handlers:
                    for child in handler.body:
                        visit_stmt(child)
            elif isinstance(stmt, (ast.Assert,)):
                unit_of(stmt.test)
            elif isinstance(stmt, (ast.Raise,)):
                if stmt.exc is not None:
                    unit_of(stmt.exc)

        def assign_to(tgt: ast.expr, value_unit: str | None, stmt: ast.stmt) -> None:
            if isinstance(tgt, (ast.Tuple, ast.List)):
                for elt in tgt.elts:
                    assign_to(elt, None, stmt)
                return
            key = self._target_key(tgt)
            term = self._terminal(tgt)
            declared = self._name_unit(term) if term is not None else None
            if declared and value_unit and value_unit != declared:
                flag(
                    stmt,
                    f"assigning a {value_unit} expression to "
                    f"{term!r} ({declared})",
                )
            if key is not None:
                resolved = declared or value_unit
                if resolved:
                    env[key] = resolved

        for stmt in body:
            visit_stmt(stmt)
        yield from findings


# ----------------------------------------------------------------------
# SL012 — architecture contract: declared layer DAG vs the import graph.
# ----------------------------------------------------------------------
class ArchitectureContractRule(LintRule):
    """The layering in ``simlint.toml`` is enforced, not aspirational.

    ``[layers] order`` declares the DAG (lowest first, e.g. ``util <
    sim < pcm/core < schemes < memctrl < experiments < cli``).  Against
    the real import graph from phase 1 this rule flags:

    * **upward imports** — a module importing from a strictly higher
      layer (``repro.pcm`` importing ``repro.schemes``); same-layer and
      downward imports are fine, ``if TYPE_CHECKING:`` imports are
      exempt (annotations are not architecture), and ``[layers]
      allowed`` whitelists individual sanctioned edges;
    * **unmapped modules** — anything under the root package that no
      declared layer covers and ``exempt`` does not excuse: growing the
      tree forces updating the contract;
    * **import cycles** — strongly connected components in the
      top-level (non-function, non-typing) import graph; function-level
      imports are the sanctioned cycle break and are excluded;
    * **orphan modules** (warn) — modules nothing imports, with no
      ``__main__`` guard and no ``orphan_ok`` entry; only reported when
      the scan covered the whole root package, so partial scans stay
      quiet.
    """

    id = "SL012"
    title = "architecture-contract violation (layers, cycles, orphans)"
    project_level = True

    def check_project(
        self, project: "ProjectModel", settings: "SimlintSettings"
    ) -> Iterator[LintFinding]:
        if settings is None or not settings.layers:
            return  # no declared contract, nothing to enforce
        root = settings.root_package

        governed = {
            name: info
            for name, info in project.modules.items()
            if name == root or name.startswith(root + ".")
        }

        # -- unmapped modules ------------------------------------------
        for name in sorted(governed):
            if settings.is_layer_exempt(name):
                continue
            if settings.layer_of(name) is None:
                yield self.project_finding(
                    path=governed[name].path,
                    line=1,
                    message=(
                        f"module {name!r} is not covered by any layer in "
                        "simlint.toml [layers] order (add it to a layer "
                        "or to exempt)"
                    ),
                )

        # -- upward imports --------------------------------------------
        for importer, info in sorted(governed.items()):
            if settings.is_layer_exempt(importer):
                continue
            src_layer = settings.layer_of(importer)
            if src_layer is None:
                continue
            for record in info.imports:
                if record.typing_only:
                    continue
                for target in project.resolve_targets(record):
                    if not (target == root or target.startswith(root + ".")):
                        continue
                    if settings.is_layer_exempt(target):
                        continue
                    if settings.edge_allowed(importer, target):
                        continue
                    dst_layer = settings.layer_of(target)
                    if dst_layer is None:
                        continue
                    if dst_layer[0] > src_layer[0]:
                        yield self.project_finding(
                            path=info.path,
                            line=record.line,
                            col=record.col,
                            message=(
                                f"upward import: {importer} (layer "
                                f"{src_layer[1]!r}) imports {target} "
                                f"(higher layer {dst_layer[1]!r}); invert "
                                "the dependency or whitelist the edge in "
                                "simlint.toml [layers] allowed"
                            ),
                        )

        # -- import cycles ---------------------------------------------
        for cycle in project.find_cycles():
            members = [m for m in cycle if m in governed]
            if not members:
                continue
            anchor = governed[members[0]]
            line = 1
            for record in anchor.imports:
                if record.typing_only or record.function_level:
                    continue
                if any(t in cycle for t in project.resolve_targets(record)):
                    line = record.line
                    break
            yield self.project_finding(
                path=anchor.path,
                line=line,
                message=(
                    "import cycle: " + " -> ".join([*cycle, cycle[0]])
                    + " (break it with a function-level import or by "
                    "moving the shared piece down a layer)"
                ),
            )

        # -- orphan modules (whole-tree scans only) --------------------
        if not project.covers_package(root):
            return
        imported: set[str] = set()
        for info in project.modules.values():
            for record in info.imports:
                imported.update(project.resolve_targets(record))
        for name in sorted(governed):
            info = governed[name]
            if info.is_package:
                continue  # packages exist for their children
            if name in imported:
                continue
            if info.has_main_guard:
                continue  # runnable entry point
            if settings.is_orphan_ok(name) or settings.is_layer_exempt(name):
                continue
            yield self.project_finding(
                path=info.path,
                line=1,
                severity="warn",
                message=(
                    f"orphan module: nothing imports {name} and it has no "
                    "__main__ guard; delete it or add it to simlint.toml "
                    "[layers] orphan_ok"
                ),
            )


# ----------------------------------------------------------------------
# SL013 — API drift: docs/API.md vs the static symbol table.
# ----------------------------------------------------------------------
class ApiDriftRule(LintRule):
    """``docs/API.md`` must match the code it documents.

    The reference is generated by ``tools/gen_api_docs.py``; this rule
    replays the same public-surface computation *statically* from the
    phase-1 symbol table (``__all__`` when present, else public
    module-level defs plus instances of same-module classes) and diffs
    it against the committed document:

    * a documented symbol that no longer exists (or went private) —
      flagged at its line in API.md;
    * a public symbol the document omits — flagged at its def site.

    Either way the fix is one command: re-run
    ``PYTHONPATH=src python tools/gen_api_docs.py``.  ``[api] ignore``
    in simlint.toml exempts individual ``module.symbol`` names.  The
    rule only runs when the scan covered the whole root package, so
    partial scans cannot see phantom deletions.
    """

    id = "SL013"
    title = "API reference drift against docs/API.md"
    project_level = True

    _MOD_HEAD = re.compile(r"^## `([^`]+)`\s*$")
    _SYM_HEAD = re.compile(r"^### `([A-Za-z_][A-Za-z0-9_]*)")

    def check_project(
        self, project: "ProjectModel", settings: "SimlintSettings"
    ) -> Iterator[LintFinding]:
        if settings is None or settings.source is None:
            return
        root = settings.root_package
        if not project.covers_package(root):
            return  # partial scan: the symbol table is incomplete
        doc_path = settings.source.parent / settings.api_doc
        try:
            lines = doc_path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return  # no reference document, nothing to drift from
        ignore = set(settings.api_ignore)

        # Parse the document: module -> {symbol -> line}.
        documented: dict[str, dict[str, int]] = {}
        doc_mod_lines: dict[str, int] = {}
        current: dict[str, int] | None = None
        for lineno, text in enumerate(lines, start=1):
            m = self._MOD_HEAD.match(text)
            if m:
                current = documented.setdefault(m.group(1), {})
                doc_mod_lines.setdefault(m.group(1), lineno)
                continue
            m = self._SYM_HEAD.match(text)
            if m and current is not None:
                current.setdefault(m.group(1), lineno)

        # Static public surface: non-package modules under the root.
        actual: dict[str, dict[str, int]] = {}
        for name, info in project.modules.items():
            if not (name == root or name.startswith(root + ".")):
                continue
            if info.is_package:
                continue
            surface = project.public_api(name)
            if surface:
                actual[name] = {sym: s.line for sym, s in surface}

        display_doc = str(settings.api_doc)

        for mod in sorted(documented.keys() | actual.keys()):
            doc_syms = documented.get(mod, {})
            act_syms = actual.get(mod, {})
            info = project.modules.get(mod)
            # documented but gone
            for sym in sorted(doc_syms.keys() - act_syms.keys()):
                if f"{mod}.{sym}" in ignore:
                    continue
                yield self.project_finding(
                    path=display_doc,
                    line=doc_syms[sym],
                    message=(
                        f"documented symbol {mod}.{sym} no longer exists "
                        "(or is no longer public); regenerate with "
                        "`PYTHONPATH=src python tools/gen_api_docs.py`"
                    ),
                )
            # public but undocumented
            for sym in sorted(act_syms.keys() - doc_syms.keys()):
                if f"{mod}.{sym}" in ignore:
                    continue
                yield self.project_finding(
                    path=info.path if info is not None else display_doc,
                    line=act_syms[sym],
                    message=(
                        f"public symbol {mod}.{sym} is missing from "
                        f"{display_doc}; regenerate with "
                        "`PYTHONPATH=src python tools/gen_api_docs.py`"
                    ),
                )
            # whole module documented but gone
            if mod not in actual and mod not in project.modules and not doc_syms:
                if mod in ignore:
                    continue
                yield self.project_finding(
                    path=display_doc,
                    line=doc_mod_lines.get(mod, 1),
                    message=(
                        f"documented module {mod} no longer exists; "
                        "regenerate with `PYTHONPATH=src python "
                        "tools/gen_api_docs.py`"
                    ),
                )


# ----------------------------------------------------------------------
# SL014 — supervised parallelism: no bare pools in repro.*.
# ----------------------------------------------------------------------
class UnsupervisedPoolRule(LintRule):
    """Bare ``multiprocessing`` pools bypass the sweep supervisor.

    ISSUE 7 replaced ``Pool.imap_unordered`` fan-out with
    :class:`repro.parallel.supervisor.WorkerSupervisor`, which adds the
    properties every ``repro`` sweep now relies on: per-cell deadlines
    (a hung worker cannot stall a grid forever), worker-death detection
    and retry (a SIGKILLed worker costs one retry, not a lost cell),
    deterministic backoff, quarantine into structured error rows, and a
    serial fallback instead of an aborted grid.  A bare
    ``multiprocessing.Pool`` (or a direct ``imap``-family dispatch on
    one) silently opts back out of all of that — correct-looking code
    that hangs or aborts exactly when a sweep is big enough to matter.

    Route parallel work through :class:`WorkerSupervisor`,
    :class:`~repro.parallel.engine.SweepEngine`, or
    :func:`~repro.parallel.engine.parallel_map`.  Exempt: ``repro.cli``
    (thin command wrappers) and the supervisor module itself (the one
    sanctioned owner of worker processes).
    """

    id = "SL014"
    title = "bare multiprocessing pool bypasses the worker supervisor"
    node_types = (ast.Call,)

    _POOL_CONSTRUCTORS = frozenset(
        {
            "multiprocessing.Pool",
            "multiprocessing.pool.Pool",
            "multiprocessing.pool.ThreadPool",
            "multiprocessing.dummy.Pool",
            "concurrent.futures.ProcessPoolExecutor",
        }
    )
    # Multiprocessing-specific dispatch spellings: unambiguous no matter
    # what the receiver is called.
    _POOL_ONLY_METHODS = frozenset(
        {"imap", "imap_unordered", "map_async", "starmap", "starmap_async",
         "apply_async"}
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return (
            ctx.in_package("repro")
            and not ctx.in_package("repro.cli")
            and ctx.module != "repro.parallel.supervisor"
        )

    def check(self, node: ast.Call, ctx: ModuleContext) -> Iterator[LintFinding]:
        resolved = ctx.resolve(node.func)
        if resolved in self._POOL_CONSTRUCTORS:
            yield self.finding(
                node,
                ctx,
                f"{resolved} bypasses the worker supervisor: no deadlines, "
                "no death detection, no retry; use "
                "repro.parallel.WorkerSupervisor / SweepEngine / "
                "parallel_map instead",
            )
            return
        if not isinstance(node.func, ast.Attribute):
            return
        attr = node.func.attr
        if attr == "Pool" and resolved is None:
            # get_context().Pool(...), ctx.Pool(...): the constructor
            # reached through a context object rather than the module.
            yield self.finding(
                node,
                ctx,
                "pool constructed from a multiprocessing context bypasses "
                "the worker supervisor; use repro.parallel.WorkerSupervisor "
                "/ SweepEngine / parallel_map instead",
            )
        elif attr in self._POOL_ONLY_METHODS:
            yield self.finding(
                node,
                ctx,
                f".{attr}() dispatches tasks on a bare pool, outside the "
                "supervisor's deadline/retry/quarantine state machine; use "
                "repro.parallel.WorkerSupervisor / SweepEngine / "
                "parallel_map instead",
            )


# ----------------------------------------------------------------------
# SL015 — async hygiene: no blocking calls on the service event loop.
# ----------------------------------------------------------------------
class BlockingAsyncCallRule(LintRule):
    """Blocking calls inside ``async def`` stall every tenant at once.

    ``repro.service`` runs one asyncio event loop for *all* tenants: the
    accept loop, every connection handler, every ``watch`` stream, and
    the dispatch loop share it.  A single blocking call inside an
    ``async def`` — ``time.sleep``, a ``subprocess`` wait, a sync socket
    connect, ``select.select``, ``os.fsync``, a bare ``open()`` — parks
    the whole loop, so one tenant's slow disk or dead peer freezes
    admission, progress streaming, and draining for everyone.  That is
    exactly the isolation the service exists to provide.

    Blocking work belongs off-loop: ``await asyncio.sleep`` for delays,
    ``loop.run_in_executor`` for file/cache/journal I/O (the pattern
    every ``repro.service`` module already uses), and asyncio-native
    stream APIs for sockets.  Sync helpers *called through* an executor
    are fine — the rule only looks inside ``async def`` bodies and does
    not descend into nested ``def``/``lambda`` (those run wherever they
    are invoked, typically on an executor thread).
    """

    id = "SL015"
    title = "blocking call inside async def stalls the service event loop"
    node_types = (ast.AsyncFunctionDef,)

    _BLOCKED_CALLS = {
        "time.sleep": "await asyncio.sleep(...) instead",
        "subprocess.run": "run it via loop.run_in_executor or "
        "asyncio.create_subprocess_exec",
        "subprocess.call": "use asyncio.create_subprocess_exec",
        "subprocess.check_call": "use asyncio.create_subprocess_exec",
        "subprocess.check_output": "use asyncio.create_subprocess_exec",
        "subprocess.Popen": "use asyncio.create_subprocess_exec",
        "socket.create_connection": "use asyncio.open_connection",
        "select.select": "await the streams instead of polling them",
        "os.fsync": "fsync via loop.run_in_executor (journal writes "
        "already do)",
    }

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("repro.service")

    @staticmethod
    def _body_calls(func: ast.AsyncFunctionDef) -> Iterator[ast.Call]:
        """Calls lexically on this coroutine's own execution path.

        Nested ``def``/``async def``/``lambda`` bodies are skipped: they
        execute wherever they are *called* (an executor thread, another
        task), not on this coroutine's await chain.  Nested async defs
        are still checked — the engine dispatches them as their own
        ``AsyncFunctionDef`` nodes.
        """
        stack: list[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(node, ast.Call):
                yield node
            stack.extend(ast.iter_child_nodes(node))

    def check(
        self, node: ast.AsyncFunctionDef, ctx: ModuleContext
    ) -> Iterator[LintFinding]:
        for call in self._body_calls(node):
            resolved = ctx.resolve(call.func)
            hint = self._BLOCKED_CALLS.get(resolved or "")
            if hint is not None:
                yield self.finding(
                    call,
                    ctx,
                    f"{resolved}() blocks the shared event loop inside "
                    f"async def {node.name}; {hint}",
                )
            elif isinstance(call.func, ast.Name) and call.func.id == "open":
                yield self.finding(
                    call,
                    ctx,
                    f"open() blocks the shared event loop inside async "
                    f"def {node.name}; do file I/O in a sync helper via "
                    "loop.run_in_executor",
                )


# ----------------------------------------------------------------------
# SL016 — lane independence: fastpath and simulator must not share code.
# ----------------------------------------------------------------------
class LaneIndependenceRule(LintRule):
    """The analytic sweep lane only certifies what it does not share.

    ``repro.fastpath`` prices grid cells without running the DES; its
    rows are trusted because the sampled differential recheck re-runs
    them through the *independent* simulator and compares under the
    agreement bands (docs/ORACLE.md).  Two import directions would
    quietly turn that certificate into a tautology:

    * **fastpath -> simulator**: the pricer importing ``repro.sim`` /
      ``repro.pcm`` / ``repro.schemes`` would let it answer by calling
      the very code the recheck is supposed to validate it against.
      (``repro.core``/``repro.config`` stay shared on purpose — batch
      packing and the config schema are *inputs* both lanes must agree
      on bit-for-bit, not behaviour under test.)  The recheck module
      is the sanctioned bridge: it crosses lanes through an injected
      callable, and is exempt here so it can type or drive DES rows
      directly if it ever needs to.
    * **simulator -> fastpath**: a scheme or bank model importing the
      fastpath would let production timing derive from the analytic
      model it is differentially checked against.

    ``repro.cli`` reports both lanes and is exempt, like in SL010.
    """

    id = "SL016"
    title = "fastpath/simulator lane-independence violation"
    node_types = (ast.Import, ast.ImportFrom)

    #: simulator packages the analytic lane must never touch.
    _SIM_PACKAGES = ("repro.sim", "repro.pcm", "repro.schemes")
    #: the sanctioned lane bridge (dependency-injected DES recheck).
    _BRIDGE = "repro.fastpath.recheck"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("repro") and not ctx.in_package("repro.cli")

    _targets = staticmethod(OracleIndependenceRule._targets)

    def check(
        self, node: ast.Import | ast.ImportFrom, ctx: ModuleContext
    ) -> Iterator[LintFinding]:
        in_fastpath = ctx.in_package("repro.fastpath")
        is_bridge = ctx.module == self._BRIDGE or ctx.module.startswith(
            self._BRIDGE + "."
        )
        in_simulator = any(
            ctx.in_package(p) for p in self._SIM_PACKAGES
        )
        for target in self._targets(node):
            if in_fastpath and not is_bridge and any(
                target == p or target.startswith(p + ".")
                for p in self._SIM_PACKAGES
            ):
                yield self.finding(
                    node,
                    ctx,
                    f"fastpath module {ctx.module} imports {target}; the "
                    "analytic lane must stay independent of the simulator "
                    "it is differentially rechecked against "
                    "(docs/ORACLE.md)",
                )
            elif in_simulator and (
                target == "repro.fastpath"
                or target.startswith("repro.fastpath.")
            ):
                yield self.finding(
                    node,
                    ctx,
                    f"simulator module {ctx.module} imports {target}; "
                    "production timing deriving from the analytic lane "
                    "makes the differential recheck a tautology — only "
                    "the sweep engine and repro.cli may consume fastpath "
                    "results",
                )
