"""simlint rules SL001–SL010, tuned to the Tetris Write reproduction.

Each rule is a declarative class: ``id``/``title`` metadata, the AST
node types it wants dispatched, a path scope (``applies_to``), and a
``check`` generator yielding :class:`~simlint.engine.LintFinding`.

The rule set encodes the repo's simulator invariants (DESIGN.md §6,
``schemes/base.py`` conventions):

====== ==============================================================
SL001  determinism — no unseeded RNG inside ``repro.*``
SL002  simulated time only — no wall clock in sim/core/schemes/pcm
SL003  ``WriteScheme`` subclasses must register + override abstracts
SL004  no ``==``/``!=`` on float time/energy expressions
SL005  no mutable default arguments
SL006  time-carrying parameters must use the ``_ns`` suffix convention
SL007  no swallowed-failure handlers (bare/broad except that eats it)
SL008  no bare ``print()`` in library code (CLI owns stdout)
SL009  no fork-unsafe multiprocessing patterns (mutable module state
       consumed in pool workers; lambdas as pool tasks)
SL010  oracle/simulator independence — the analytic oracle must not
       import production code, and production code must not import
       the oracle (``repro.cli`` excepted)
====== ==============================================================
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from simlint.engine import LintFinding, ModuleContext

__all__ = [
    "LintRule",
    "RULE_REGISTRY",
    "default_rules",
    "UnseededRandomRule",
    "WallClockRule",
    "SchemeRegistrationRule",
    "FloatTimeEqualityRule",
    "MutableDefaultRule",
    "TimeUnitSuffixRule",
    "SwallowedExceptionRule",
    "BarePrintRule",
    "ForkUnsafeWorkerRule",
    "OracleIndependenceRule",
]

RULE_REGISTRY: dict[str, type["LintRule"]] = {}


class LintRule:
    """Base class; subclasses self-register by ``id``."""

    id: str = ""
    title: str = ""
    node_types: tuple[type, ...] = ()

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        if cls.id:
            RULE_REGISTRY[cls.id] = cls

    # ------------------------------------------------------------------
    def applies_to(self, ctx: ModuleContext) -> bool:  # pragma: no cover
        return True

    def check(self, node: ast.AST, ctx: ModuleContext) -> Iterator[LintFinding]:
        raise NotImplementedError

    def finding(self, node: ast.AST, ctx: ModuleContext, message: str) -> LintFinding:
        return LintFinding(
            rule=self.id,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def default_rules() -> list[LintRule]:
    """One instance of every registered rule, in id order."""
    return [RULE_REGISTRY[k]() for k in sorted(RULE_REGISTRY)]


# ----------------------------------------------------------------------
# SL001 — determinism: every RNG must flow from a seeded Generator.
# ----------------------------------------------------------------------
class UnseededRandomRule(LintRule):
    """Unseeded / global-state RNG calls break trace reproducibility.

    Simulation results must be a pure function of ``SystemConfig.seed``
    (DESIGN.md; ``tests/test_reproducibility.py``).  Three families of
    call sites violate that:

    * ``numpy.random.default_rng()`` / ``RandomState()`` with no seed —
      entropy from the OS;
    * the legacy numpy global API (``np.random.randint`` etc.) — hidden
      process-wide state, including ``np.random.seed`` which mutates it;
    * the stdlib ``random`` module-level functions and ``SystemRandom``.

    Seeded constructions (``default_rng(seed)``, ``SeedSequence([...])``,
    ``random.Random(seed)``) and passing a ``Generator`` around are fine.
    """

    id = "SL001"
    title = "unseeded or global-state RNG in simulator code"
    node_types = (ast.Call,)

    _NUMPY_GLOBAL = re.compile(
        r"^numpy\.random\.("
        r"seed|rand|randn|randint|random|random_sample|ranf|sample|bytes|"
        r"choice|shuffle|permutation|uniform|normal|standard_normal|poisson|"
        r"binomial|geometric|exponential|beta|gamma|integers"
        r")$"
    )
    _STDLIB_GLOBAL = re.compile(
        r"^random\.("
        r"seed|random|randint|randrange|getrandbits|randbytes|choice|choices|"
        r"shuffle|sample|uniform|triangular|betavariate|expovariate|"
        r"gammavariate|gauss|lognormvariate|normalvariate|vonmisesvariate|"
        r"paretovariate|weibullvariate"
        r")$"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("repro")

    def check(self, node: ast.Call, ctx: ModuleContext) -> Iterator[LintFinding]:
        name = ctx.resolve(node.func)
        if name is None:
            return
        seeded = bool(node.args or node.keywords)
        if name in ("numpy.random.default_rng", "numpy.random.RandomState"):
            if not seeded:
                yield self.finding(
                    node,
                    ctx,
                    f"{name}() without a seed draws OS entropy; "
                    "thread the seed from SystemConfig.seed",
                )
        elif self._NUMPY_GLOBAL.match(name):
            yield self.finding(
                node,
                ctx,
                f"legacy global-state RNG call {name}(); "
                "use a seeded numpy.random.Generator instead",
            )
        elif name == "random.SystemRandom":
            yield self.finding(
                node, ctx, "random.SystemRandom is nondeterministic by design"
            )
        elif name == "random.Random" and not seeded:
            yield self.finding(
                node, ctx, "random.Random() without a seed draws OS entropy"
            )
        elif self._STDLIB_GLOBAL.match(name):
            yield self.finding(
                node,
                ctx,
                f"stdlib global-state RNG call {name}(); "
                "use a seeded numpy.random.Generator instead",
            )


# ----------------------------------------------------------------------
# SL002 — simulated time only in the simulator core.
# ----------------------------------------------------------------------
class WallClockRule(LintRule):
    """Wall-clock reads inside the simulator leak host time into results.

    The DES engine (``repro.sim.engine``) owns the only clock the model
    may observe; schemes, the scheduler, and the device model express
    time exclusively in simulated nanoseconds.  A ``perf_counter`` or
    ``datetime.now`` in those packages either silently perturbs results
    or sneaks profiling into a hot path — both belong in benchmarks.
    """

    id = "SL002"
    title = "wall-clock call inside simulated-time code"
    node_types = (ast.Call,)

    _FORBIDDEN = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.process_time",
            "time.process_time_ns",
            "time.clock_gettime",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
        }
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package(
            "repro.sim", "repro.core", "repro.schemes", "repro.pcm"
        )

    def check(self, node: ast.Call, ctx: ModuleContext) -> Iterator[LintFinding]:
        name = ctx.resolve(node.func)
        if name in self._FORBIDDEN:
            yield self.finding(
                node,
                ctx,
                f"wall-clock call {name}() in simulated-time code; "
                "use the Simulator clock (sim.now) or move timing to benchmarks/",
            )


# ----------------------------------------------------------------------
# SL003 — WriteScheme subclasses must register and be complete.
# ----------------------------------------------------------------------
class SchemeRegistrationRule(LintRule):
    """Concrete ``WriteScheme`` subclasses must be registry-complete.

    Registration happens in ``WriteScheme.__init_subclass__`` keyed on a
    string ``name`` class attribute, and the simulator dispatches on the
    registry — so a subclass without ``name`` silently vanishes from
    ``get_scheme``/``ALL_SCHEMES``, and one missing an abstract override
    explodes only when first instantiated.  The rule requires every
    non-abstract direct subclass to define ``name`` (a string literal),
    ``requires_read``, and both abstract methods in its own body or via
    an explicit assignment.  The write hook is satisfied by either
    ``_write_once`` (the template-method hook the base ``write`` wraps
    with wear + fault handling) or a full ``write`` override (legacy
    subclasses that bypass the fault path).
    """

    id = "SL003"
    title = "incomplete WriteScheme subclass"
    node_types = (ast.ClassDef,)

    # Each entry is a tuple of acceptable spellings; defining any one of
    # them satisfies the requirement.
    _ABSTRACTS = (("_write_once", "write"), ("worst_case_units",))
    _CLASSVARS = ("name", "requires_read")

    def _is_writescheme_base(self, base: ast.expr, ctx: ModuleContext) -> bool:
        name = ctx.resolve(base)
        return name is not None and (
            name == "WriteScheme" or name.endswith(".WriteScheme")
        )

    @staticmethod
    def _is_abstract(node: ast.ClassDef, ctx: ModuleContext) -> bool:
        for base in node.bases:
            resolved = ctx.resolve(base) or ""
            if resolved in ("ABC", "abc.ABC") or resolved.endswith(".ABC"):
                return True
        for kw in node.keywords:
            if kw.arg == "metaclass":
                return True
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for deco in stmt.decorator_list:
                    resolved = ctx.resolve(deco) or ""
                    if resolved.split(".")[-1] == "abstractmethod":
                        return True
        return False

    def check(self, node: ast.ClassDef, ctx: ModuleContext) -> Iterator[LintFinding]:
        if not any(self._is_writescheme_base(b, ctx) for b in node.bases):
            return
        if self._is_abstract(node, ctx):
            return

        defined: set[str] = set()
        name_value: ast.expr | None = None
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defined.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for tgt in stmt.targets:
                    if isinstance(tgt, ast.Name):
                        defined.add(tgt.id)
                        if tgt.id == "name":
                            name_value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                # Annotation-only (`name: ClassVar[str]`) declares, but does
                # not define — only a value registers the scheme.
                if stmt.value is not None:
                    defined.add(stmt.target.id)
                    if stmt.target.id == "name":
                        name_value = stmt.value

        for attr in self._CLASSVARS:
            if attr not in defined:
                yield self.finding(
                    node,
                    ctx,
                    f"WriteScheme subclass {node.name} does not set {attr!r}; "
                    "without a string `name` it is never entered in SCHEME_REGISTRY",
                )
        if name_value is not None and not (
            isinstance(name_value, ast.Constant) and isinstance(name_value.value, str)
        ):
            yield self.finding(
                node,
                ctx,
                f"{node.name}.name must be a string literal for registration",
            )
        for spellings in self._ABSTRACTS:
            if not any(meth in defined for meth in spellings):
                wanted = " or ".join(repr(m) for m in spellings)
                yield self.finding(
                    node,
                    ctx,
                    f"WriteScheme subclass {node.name} does not override "
                    f"abstract method {wanted}",
                )


# ----------------------------------------------------------------------
# SL004 — float time/energy expressions must not use == / !=.
# ----------------------------------------------------------------------
class FloatTimeEqualityRule(LintRule):
    """Exact equality on derived float times/energies is a latent bug.

    ``service_ns``, energies, and anything built from ``t_set``/``t_reset``
    go through float arithmetic (``units * t_set_ns``, Eq. 5's
    ``subresult / K``), so ``==`` comparisons hold only by accident of
    rounding.  Compare with a tolerance (``math.isclose``,
    ``pytest.approx``, ``numpy.isclose``) or restructure as an ordering
    test.  Comparisons whose other side is wrapped in one of those
    tolerance helpers are accepted.
    """

    id = "SL004"
    title = "exact float equality on time/energy expression"
    node_types = (ast.Compare,)

    _UNIT_NAME = re.compile(r"(_ns$|^t_set(_ns)?$|^t_reset(_ns)?$|energy)", re.I)
    _TOLERANT = frozenset({"approx", "isclose", "allclose", "assert_allclose"})

    def _terminal_name(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        return None

    def _unit_bearing(self, node: ast.expr) -> bool:
        if isinstance(node, ast.BinOp):
            return self._unit_bearing(node.left) or self._unit_bearing(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._unit_bearing(node.operand)
        if isinstance(node, ast.Call):
            # sum(x.service_ns ...), float(x.energy) keep their units, but a
            # tolerance helper (pytest.approx(...)) deliberately does not.
            if (self._terminal_name(node.func) or "") in self._TOLERANT:
                return False
            return any(self._unit_bearing(a) for a in node.args)
        name = self._terminal_name(node)
        return bool(name and self._UNIT_NAME.search(name))

    def _tolerant(self, node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and (self._terminal_name(node.func) or "") in self._TOLERANT
        )

    def check(self, node: ast.Compare, ctx: ModuleContext) -> Iterator[LintFinding]:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if self._tolerant(left) or self._tolerant(right):
                continue
            for side, other in ((left, right), (right, left)):
                if self._unit_bearing(side):
                    if isinstance(other, ast.Constant) and isinstance(
                        other.value, str
                    ):
                        break  # comparing a label, not a quantity
                    sym = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        left,
                        ctx,
                        f"exact float {sym} on time/energy expression; use "
                        "math.isclose/pytest.approx or an ordering comparison",
                    )
                    break


# ----------------------------------------------------------------------
# SL005 — mutable default arguments.
# ----------------------------------------------------------------------
class MutableDefaultRule(LintRule):
    """A mutable default is shared across calls — state leaks between
    writes/experiments, the exact class of bug the determinism tests
    cannot catch because the first run is self-consistent."""

    id = "SL005"
    title = "mutable default argument"
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    _MUTABLE_CALLS = frozenset(
        {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter"}
    )

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = None
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            return name in self._MUTABLE_CALLS
        return False

    def check(self, node, ctx: ModuleContext) -> Iterator[LintFinding]:
        args = node.args
        for default in [*args.defaults, *args.kw_defaults]:
            if default is not None and self._is_mutable(default):
                fn = getattr(node, "name", "<lambda>")
                yield self.finding(
                    default,
                    ctx,
                    f"mutable default argument in {fn}(); "
                    "use None and construct inside the function",
                )


# ----------------------------------------------------------------------
# SL006 — time-carrying parameters use the _ns suffix convention.
# ----------------------------------------------------------------------
class TimeUnitSuffixRule(LintRule):
    """Public time-valued parameters must say their unit.

    ``schemes/base.py`` documents the convention: everything that is a
    time is named ``*_ns`` (the scheduler's unitless quantities are
    ``*_units``/``result``/``subresult``).  An unsuffixed ``delay`` or
    ``latency`` parameter on a public function in ``repro.core`` /
    ``repro.schemes`` invites ns-vs-cycles mix-ups at call sites —
    exactly the interface drift the scaling PRs would multiply.
    """

    id = "SL006"
    title = "time-valued parameter missing unit suffix"
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    _TIME_WORDS = re.compile(
        r"(^|_)(time|latency|delay|duration|deadline|timeout|interval|elapsed|overhead|period)(_|$)",
        re.I,
    )
    _UNIT_SUFFIX = re.compile(
        r"(_ns|_us|_ms|_s|_sec|_seconds|_cycles|_ticks|_units|_insts|_hz|_ghz|_mhz)$"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("repro.core", "repro.schemes")

    def check(self, node, ctx: ModuleContext) -> Iterator[LintFinding]:
        if node.name.startswith("_"):
            return
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            name = arg.arg
            if name in ("self", "cls"):
                continue
            if self._TIME_WORDS.search(name) and not self._UNIT_SUFFIX.search(name):
                yield self.finding(
                    arg,
                    ctx,
                    f"parameter {name!r} of public {node.name}() looks "
                    "time-valued but has no unit suffix; use the _ns "
                    "convention from schemes/base.py",
                )


# ----------------------------------------------------------------------
# SL007 — no swallowed-failure handlers in simulator code.
# ----------------------------------------------------------------------
class SwallowedExceptionRule(LintRule):
    """Simulator code must never silently eat a failure.

    The fault subsystem (``repro.faults``) turns hardware failures into
    structured exceptions precisely so nothing corrupts state silently —
    a ``bare except:`` or an ``except Exception:`` whose body just
    ``pass``es undoes that guarantee and hides real bugs (an
    :class:`InvariantViolation` or ``UncorrectableWriteError`` vanishing
    into a handler is indistinguishable from a clean run).  Flagged:

    * ``except:`` with no exception type, unless the body re-raises;
    * ``except Exception`` / ``except BaseException`` whose body is
      only ``pass``/``...`` (optionally behind a docstring/comment).

    Catching *specific* exceptions, logging-and-handling, and broad
    handlers that re-raise are all fine.
    """

    id = "SL007"
    title = "swallowed-failure exception handler"
    node_types = (ast.ExceptHandler,)

    _BROAD = frozenset({"Exception", "BaseException"})

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("repro")

    @staticmethod
    def _reraises(body: list[ast.stmt]) -> bool:
        for stmt in ast.walk(ast.Module(body=body, type_ignores=[])):
            if isinstance(stmt, ast.Raise):
                return True
        return False

    @staticmethod
    def _swallows(body: list[ast.stmt]) -> bool:
        """True when the handler body does nothing with the failure."""
        meaningful = [
            stmt
            for stmt in body
            if not (
                isinstance(stmt, ast.Pass)
                or (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant))
            )
        ]
        return not meaningful

    def _broad_names(self, node: ast.ExceptHandler, ctx: ModuleContext) -> bool:
        types = (
            node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
        )
        for t in types:
            resolved = ctx.resolve(t) if t is not None else None
            if resolved is not None and resolved.split(".")[-1] in self._BROAD:
                return True
        return False

    def check(
        self, node: ast.ExceptHandler, ctx: ModuleContext
    ) -> Iterator[LintFinding]:
        if node.type is None:
            if not self._reraises(node.body):
                yield self.finding(
                    node,
                    ctx,
                    "bare `except:` swallows every failure (including "
                    "InvariantViolation); catch the specific exception "
                    "or re-raise",
                )
            return
        if self._broad_names(node, ctx) and self._swallows(node.body):
            yield self.finding(
                node,
                ctx,
                "`except Exception: pass` silently eats a fault; handle "
                "it, narrow the type, or let it propagate",
            )


# ----------------------------------------------------------------------
# SL008 — library code must not print; the CLI owns stdout.
# ----------------------------------------------------------------------
class BarePrintRule(LintRule):
    """Bare ``print()`` calls inside ``src/repro`` pollute stdout.

    The simulator is a library first: experiments return result objects,
    metrics flow through ``repro.obs.MetricRegistry``, and the only
    component allowed to talk to the terminal is ``repro.cli`` (which
    also formats machine-readable output for the bench harness).  A
    stray ``print()`` deep in a scheme or the memory controller

    * corrupts piped output (``tetris-write ... | python -``),
    * breaks bit-identity diffing of run logs, and
    * cannot be silenced per-run the way tracer/metric output can.

    Return strings, raise structured exceptions, or record to the
    metric registry instead.  ``repro.cli`` itself is exempt.
    """

    id = "SL008"
    title = "bare print() in library code"
    node_types = (ast.Call,)

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("repro") and not ctx.in_package("repro.cli")

    def check(self, node: ast.Call, ctx: ModuleContext) -> Iterator[LintFinding]:
        if ctx.resolve(node.func) == "print":
            yield self.finding(
                node,
                ctx,
                "library code must not print(); return the string, use "
                "the repro.obs metric registry, or move output to "
                "repro.cli",
            )

# ----------------------------------------------------------------------
# SL009 — fork-unsafe multiprocessing patterns.
# ----------------------------------------------------------------------
class ForkUnsafeWorkerRule(LintRule):
    """Pool workers must not rely on mutable module-level state.

    The sweep engine (``repro.parallel``) fans experiment cells over a
    process pool.  Two patterns look correct under Linux's ``fork`` start
    method but are wrong or non-portable:

    * **Module-level mutable state consumed inside a worker function** —
      each forked process mutates its *own copy*, so accumulations
      silently diverge from the serial run and vanish when the pool
      exits (and under ``spawn`` the state is re-imported empty).  Pass
      state through the task payload, return it from the worker, or use
      a per-process ``functools.lru_cache`` on a pure function.
    * **Lambdas (or other unpicklable callables) submitted as pool
      tasks** — ``fork`` happens to ship them, but ``spawn``/
      ``forkserver`` (macOS/Windows defaults) pickle the callable by
      qualified name and crash.  Define workers at module top level.

    The rule analyzes one module at a time: it collects module-level
    mutable bindings and pool-task submissions (``pool.map``-family
    methods, ``parallel_map``, ``Process(target=...)``), then walks each
    locally-defined worker for reads/writes of those bindings.
    """

    id = "SL009"
    title = "fork-unsafe multiprocessing pattern"
    node_types = (ast.Module,)

    # Methods that submit a callable to a pool.  The generic names (map,
    # apply) are only trusted when the receiver looks like a pool or an
    # executor; the multiprocessing-specific spellings always count.
    _POOL_ONLY_METHODS = frozenset(
        {"imap", "imap_unordered", "map_async", "starmap", "starmap_async",
         "apply_async"}
    )
    _GENERIC_METHODS = frozenset({"map", "apply", "submit"})
    _TASK_FUNCS = frozenset({"parallel_map"})
    _RECEIVER_HINT = re.compile(r"(pool|executor)", re.I)
    _MUTABLE_CALLS = frozenset(
        {"list", "dict", "set", "bytearray", "defaultdict", "deque",
         "Counter", "OrderedDict"}
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("repro")

    # -- module-level mutable bindings ---------------------------------
    def _is_mutable_value(self, node: ast.expr) -> bool:
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return True
        if isinstance(node, ast.Call):
            name = None
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            return name in self._MUTABLE_CALLS
        return False

    def _module_mutables(self, module: ast.Module) -> dict[str, ast.stmt]:
        out: dict[str, ast.stmt] = {}
        for stmt in module.body:
            if isinstance(stmt, ast.Assign) and self._is_mutable_value(stmt.value):
                for tgt in stmt.targets:
                    if isinstance(tgt, ast.Name):
                        out[tgt.id] = stmt
            elif (
                isinstance(stmt, ast.AnnAssign)
                and stmt.value is not None
                and isinstance(stmt.target, ast.Name)
                and self._is_mutable_value(stmt.value)
            ):
                out[stmt.target.id] = stmt
        return out

    # -- pool-task submissions -----------------------------------------
    def _receiver_text(self, node: ast.expr, ctx: ModuleContext) -> str:
        resolved = ctx.resolve(node)
        if resolved is not None:
            return resolved
        if isinstance(node, ast.Attribute):
            return node.attr
        return ""

    def _task_exprs(self, tree: ast.Module, ctx: ModuleContext) -> list[ast.expr]:
        """Every expression submitted as a pool task in this module."""
        tasks: list[ast.expr] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                method = func.attr
                is_pool_call = method in self._POOL_ONLY_METHODS or (
                    method in self._GENERIC_METHODS
                    and self._RECEIVER_HINT.search(
                        self._receiver_text(func.value, ctx)
                    )
                )
                if is_pool_call and node.args:
                    tasks.append(node.args[0])
                    continue
            resolved = ctx.resolve(func)
            if resolved is not None:
                tail = resolved.split(".")[-1]
                if tail in self._TASK_FUNCS and node.args:
                    tasks.append(node.args[0])
                    continue
                if tail == "Process":
                    for kw in node.keywords:
                        if kw.arg == "target":
                            tasks.append(kw.value)
        return tasks

    @staticmethod
    def _unwrap_partial(expr: ast.expr) -> ast.expr:
        """``partial(fn, ...)`` submits ``fn``; look through it."""
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, (ast.Name, ast.Attribute))
            and (
                expr.func.id if isinstance(expr.func, ast.Name) else expr.func.attr
            )
            == "partial"
            and expr.args
        ):
            return expr.args[0]
        return expr

    # ------------------------------------------------------------------
    def check(self, node: ast.Module, ctx: ModuleContext) -> Iterator[LintFinding]:
        mutables = self._module_mutables(node)
        tasks = self._task_exprs(node, ctx)
        if not tasks:
            return

        worker_names: set[str] = set()
        for expr in tasks:
            expr = self._unwrap_partial(expr)
            if isinstance(expr, ast.Lambda):
                yield self.finding(
                    expr,
                    ctx,
                    "lambda passed as a pool task cannot be pickled under "
                    "the spawn start method; define a top-level worker "
                    "function",
                )
            elif isinstance(expr, ast.Name):
                worker_names.add(expr.id)

        if not mutables or not worker_names:
            return
        workers = [
            stmt
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name in worker_names
        ]
        for fn in workers:
            reported: set[str] = set()
            for sub in ast.walk(fn):
                if (
                    isinstance(sub, ast.Name)
                    and sub.id in mutables
                    and sub.id not in reported
                ):
                    reported.add(sub.id)
                    yield self.finding(
                        sub,
                        ctx,
                        f"pool worker {fn.name}() uses module-level mutable "
                        f"state {sub.id!r}; each forked process mutates its "
                        "own copy (results diverge silently) — pass it via "
                        "the task payload or return it from the worker",
                    )


# ----------------------------------------------------------------------
# SL010 — oracle independence: schemes and oracle must not share code.
# ----------------------------------------------------------------------
class OracleIndependenceRule(LintRule):
    """The differential oracle only catches bugs it does not share.

    ``repro.oracle.analytic`` re-implements Equations 1-5 from the paper
    text precisely so that a wrong answer in the production schedulers
    cannot be reproduced by construction on the oracle side.  Two import
    directions break that guarantee:

    * **oracle -> simulator**: ``repro.oracle.analytic`` importing
      ``repro.schemes`` / ``repro.core`` / ``repro.pcm`` / ``repro.sim``
      / ``repro.config`` would let production arithmetic leak into the
      "independent" model (the differential *harness* modules are the
      sanctioned bridge and are exempt);
    * **simulator -> oracle**: production code importing
      ``repro.oracle`` would invert the dependency — a scheme computing
      its latency *from* the oracle makes the cross-check a tautology.
      Only ``repro.cli`` (reporting) may depend on the oracle package.
    """

    id = "SL010"
    title = "oracle/simulator independence violation"
    node_types = (ast.Import, ast.ImportFrom)

    #: simulator packages the analytic oracle must never touch.
    _SIM_PACKAGES = (
        "repro.schemes", "repro.core", "repro.pcm", "repro.sim",
        "repro.config",
    )
    #: oracle modules under the independence contract (the differential /
    #: metamorphic harnesses legitimately drive the production code).
    _INDEPENDENT = ("repro.oracle.analytic", "repro.oracle.paper_claims")

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("repro") and not ctx.in_package("repro.cli")

    @staticmethod
    def _targets(node: ast.Import | ast.ImportFrom) -> list[str]:
        if isinstance(node, ast.Import):
            return [alias.name for alias in node.names]
        if node.module and not node.level:
            return [node.module]
        return []

    def check(
        self, node: ast.Import | ast.ImportFrom, ctx: ModuleContext
    ) -> Iterator[LintFinding]:
        in_oracle = ctx.in_package("repro.oracle")
        independent = any(
            ctx.module == m or ctx.module.startswith(m + ".")
            for m in self._INDEPENDENT
        )
        for target in self._targets(node):
            if independent and any(
                target == p or target.startswith(p + ".")
                for p in self._SIM_PACKAGES
            ):
                yield self.finding(
                    node,
                    ctx,
                    f"{ctx.module} must stay independent of the simulator "
                    f"but imports {target}; the analytic oracle is only "
                    "a cross-check if it shares no production code "
                    "(docs/ORACLE.md)",
                )
            elif not in_oracle and (
                target == "repro.oracle" or target.startswith("repro.oracle.")
            ):
                yield self.finding(
                    node,
                    ctx,
                    f"production module {ctx.module} imports {target}; "
                    "scheme/simulator code deriving answers from the "
                    "oracle makes the differential cross-check a "
                    "tautology — only repro.cli may report oracle results",
                )
