"""simlint command line: ``python -m simlint [paths...]``.

Exit status: 0 clean, 1 findings, 2 bad invocation.  ``--json`` swaps
the human ``path:line:col: SLxxx message`` lines for a machine-readable
document (used by CI annotations and the rule tests).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from simlint.engine import DEFAULT_EXCLUDES, lint_paths
from simlint.rules import RULE_REGISTRY, default_rules

__all__ = ["main", "build_parser"]

DEFAULT_PATHS = ("src", "tests", "benchmarks")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="simlint",
        description=(
            "Simulator-aware static analysis for the Tetris Write repo "
            "(rules SL001-SL006; see docs/SIMLINT.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit findings as a JSON document instead of text lines",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="SEGMENT",
        help="extra path segment to exclude (repeatable); "
        f"defaults always excluded: {', '.join(DEFAULT_EXCLUDES)}",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    return parser


def _parse_rule_ids(text: str, parser: argparse.ArgumentParser) -> set[str]:
    ids = {t.strip().upper() for t in text.split(",") if t.strip()}
    unknown = ids - set(RULE_REGISTRY)
    if unknown:
        parser.error(
            f"unknown rule id(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(RULE_REGISTRY))}"
        )
    return ids


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.id}  {rule.title}")
        return 0

    rules = default_rules()
    if args.select:
        keep = _parse_rule_ids(args.select, parser)
        rules = [r for r in rules if r.id in keep]
    if args.ignore:
        drop = _parse_rule_ids(args.ignore, parser)
        rules = [r for r in rules if r.id not in drop]

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        parser.error(f"path(s) do not exist: {', '.join(missing)}")

    excludes = DEFAULT_EXCLUDES + tuple(args.exclude)
    findings = lint_paths(args.paths, rules=rules, excludes=excludes)

    if args.json:
        doc = {
            "findings": [f.to_dict() for f in findings],
            "count": len(findings),
            "rules": sorted(r.id for r in rules),
            "paths": list(args.paths),
        }
        print(json.dumps(doc, indent=2))
    else:
        for f in findings:
            print(f.format())
        if findings:
            print(f"simlint: {len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
