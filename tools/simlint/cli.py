"""simlint command line: ``python -m simlint [paths...]``.

Exit status: 0 clean (warn-severity findings alone stay 0), 1 on any
error-severity finding, 2 bad invocation.  ``--json`` swaps the human
``path:line:col: SLxxx message`` lines for a machine-readable document
(used by CI annotations and the rule tests).  The incremental cache is
on by default (``--no-cache`` to disable); ``--select``/``--ignore``
runs bypass it automatically so partial rule sets never pollute it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from simlint.cache import LintCache, compute_salt
from simlint.config import find_config_file, load_settings
from simlint.engine import DEFAULT_EXCLUDES, lint_tree
from simlint.rules import RULE_REGISTRY, default_rules

__all__ = ["main", "build_parser"]

DEFAULT_PATHS = ("src", "tests", "benchmarks")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="simlint",
        description=(
            "Simulator-aware static analysis for the Tetris Write repo "
            "(rules SL001-SL013; see docs/SIMLINT.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit findings as a JSON document instead of text lines",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all; bypasses the cache)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to skip (bypasses the cache)",
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="SEGMENT",
        help="extra path segment to exclude (repeatable); "
        f"defaults always excluded: {', '.join(DEFAULT_EXCLUDES)}",
    )
    parser.add_argument(
        "--explain",
        metavar="RULE",
        help="print the catalogue entry for one rule id and exit",
    )
    parser.add_argument(
        "--config",
        metavar="FILE",
        help="simlint.toml to use (default: found beside/above the first path)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental cache for this run",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="incremental-cache directory (default: [cache] dir in simlint.toml)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    return parser


def _parse_rule_ids(text: str, parser: argparse.ArgumentParser) -> set[str]:
    ids = {t.strip().upper() for t in text.split(",") if t.strip()}
    unknown = ids - set(RULE_REGISTRY)
    if unknown:
        parser.error(
            f"unknown rule id(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(RULE_REGISTRY))}"
        )
    return ids


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.id}  {rule.title}")
        return 0

    config_path = (
        Path(args.config) if args.config else find_config_file(list(args.paths))
    )
    if args.config and not Path(args.config).is_file():
        parser.error(f"config file does not exist: {args.config}")

    if args.explain:
        from simlint.explain import explain_rule

        rule_id = args.explain.strip().upper()
        if rule_id not in RULE_REGISTRY:
            parser.error(
                f"unknown rule id: {rule_id}; "
                f"known: {', '.join(sorted(RULE_REGISTRY))}"
            )
        print(explain_rule(rule_id, config_path=config_path))
        return 0

    rules = None  # None = full default set (cache-eligible)
    if args.select or args.ignore:
        active = default_rules()
        if args.select:
            keep = _parse_rule_ids(args.select, parser)
            active = [r for r in active if r.id in keep]
        if args.ignore:
            drop = _parse_rule_ids(args.ignore, parser)
            active = [r for r in active if r.id not in drop]
        rules = active

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        parser.error(f"path(s) do not exist: {', '.join(missing)}")

    settings = load_settings(config_path)

    cache = None
    if not args.no_cache and rules is None:
        cache_dir = Path(args.cache_dir) if args.cache_dir else None
        if cache_dir is None:
            anchor = config_path.parent if config_path is not None else Path.cwd()
            cache_dir = anchor / settings.cache_dir
        cache = LintCache(cache_dir, compute_salt(config_path))

    excludes = DEFAULT_EXCLUDES + tuple(args.exclude)
    run = lint_tree(
        args.paths,
        rules=rules,
        excludes=excludes,
        settings=settings,
        cache=cache,
    )
    findings = run.findings
    errors = run.errors

    if args.json:
        doc = {
            "findings": [f.to_dict() for f in findings],
            "count": len(findings),
            "errors": len(errors),
            "warnings": len(run.warnings),
            "suppressed": dict(sorted(run.suppressed.items())),
            "rules": sorted(
                r.id for r in (rules if rules is not None else default_rules())
            ),
            "paths": list(args.paths),
            "files": run.files,
            "cache_hits": run.cache_hits,
        }
        print(json.dumps(doc, indent=2))
    else:
        for f in findings:
            print(f.format())
        if findings:
            tally = f"{len(errors)} error(s), {len(run.warnings)} warning(s)"
            print(f"simlint: {tally}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
