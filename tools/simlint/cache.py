"""Incremental lint cache: mtime+hash per file, one JSON document.

Warm ``make lint`` over the full tree must stay under a second, which
rules out re-parsing ~250 files every run.  The cache stores, per file:

* ``mtime``/``size`` — the cheap freshness probe (a stat per file);
* ``sha256`` — the authoritative identity; consulted when the stat
  changed, so a ``touch`` re-hashes but does not re-lint;
* ``modinfo`` — the serialized :class:`~simlint.project.ModuleInfo`,
  letting phase 1 rebuild the whole-program model with zero parsing;
* ``findings``/``suppressed`` — phase 2's per-file rule output.

Two global keys guard correctness:

* ``salt`` — a digest of the linter's own sources plus the config file,
  so editing a rule (or ``simlint.toml``) invalidates everything;
* per-entry ``interface`` — a digest of every project-visible function/
  class signature.  Per-file findings may depend on *other* modules'
  signatures (SL011 checks call sites against callee parameter
  suffixes), so a signature change anywhere conservatively re-lints the
  tree, while a body-only change re-lints just the edited file.

Project-level rules (SL012/SL013) are never cached: they are cheap
graph passes over the rebuilt model and must always see the current
whole program.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from simlint.engine import LintFinding
from simlint.project import ModuleInfo

__all__ = ["LintCache", "compute_salt"]

CACHE_VERSION = 1


def compute_salt(config_path: Path | str | None) -> str:
    """Digest of the linter implementation + configuration."""
    h = hashlib.sha256()
    h.update(f"v{CACHE_VERSION}".encode())
    pkg = Path(__file__).resolve().parent
    for src in sorted(pkg.glob("*.py")):
        h.update(src.name.encode())
        h.update(src.read_bytes())
    if config_path is not None:
        try:
            h.update(Path(config_path).read_bytes())
        except OSError:
            pass
    return h.hexdigest()


class LintCache:
    """One JSON document under ``<cache_dir>/cache.json``."""

    def __init__(self, cache_dir: Path | str, salt: str) -> None:
        self.path = Path(cache_dir) / "cache.json"
        self.salt = salt
        self._entries: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        try:
            doc = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if doc.get("salt") != self.salt:
            return  # linter or config changed: start cold
        entries = doc.get("files")
        if isinstance(entries, dict):
            self._entries = entries

    def save(self) -> None:
        doc = {"salt": self.salt, "files": self._entries}
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_suffix(".tmp")
            tmp.write_text(json.dumps(doc), encoding="utf-8")
            os.replace(tmp, self.path)
        except OSError:
            pass  # caching is best-effort; linting already succeeded

    # ------------------------------------------------------------------
    @staticmethod
    def file_hash(data: bytes) -> str:
        return hashlib.sha256(data).hexdigest()

    def probe(self, path: Path, display_path: str) -> tuple[dict | None, str | None]:
        """Look up one file.

        Returns ``(entry, content_hash)``.  ``entry`` is the cache entry
        when the file is byte-identical to the cached state (stat
        fast-path, falling back to hashing), else ``None``.  The hash is
        returned when it had to be computed, so the caller can reuse it.
        """
        key = str(path.resolve())
        entry = self._entries.get(key)
        if entry is None or entry.get("display") != display_path:
            self.misses += 1
            return None, None
        try:
            st = path.stat()
        except OSError:
            self.misses += 1
            return None, None
        # st_mtime_ns is an integer; exact equality is the point here.
        if entry.get("mtime") == st.st_mtime_ns and entry.get("size") == st.st_size:  # simlint: disable=SL004
            self.hits += 1
            return entry, None
        try:
            digest = self.file_hash(path.read_bytes())
        except OSError:
            self.misses += 1
            return None, None
        if entry.get("sha256") == digest:
            # Content unchanged behind a stat change (touch, checkout):
            # refresh the stat so the next run takes the fast path.
            entry["mtime"] = st.st_mtime_ns
            entry["size"] = st.st_size
            self.hits += 1
            return entry, digest
        self.misses += 1
        return None, digest

    def store(
        self,
        path: Path,
        display_path: str,
        data: bytes,
        *,
        modinfo: ModuleInfo | None,
        digest: str | None = None,
    ) -> dict:
        """Create/replace the entry for one freshly parsed file."""
        try:
            st = path.stat()
            mtime, size = st.st_mtime_ns, st.st_size
        except OSError:
            mtime, size = 0, len(data)
        entry = {
            "display": display_path,
            "mtime": mtime,
            "size": size,
            "sha256": digest if digest is not None else self.file_hash(data),
            "modinfo": modinfo.to_dict() if modinfo is not None else None,
            "interface": None,
            "findings": None,
            "suppressed": {},
        }
        self._entries[str(path.resolve())] = entry
        return entry

    # ------------------------------------------------------------------
    @staticmethod
    def entry_modinfo(entry: dict) -> ModuleInfo | None:
        raw = entry.get("modinfo")
        if raw is None:
            return None
        try:
            return ModuleInfo.from_dict(raw)
        except (KeyError, TypeError, ValueError):
            return None

    @staticmethod
    def entry_findings(entry: dict, interface: str) -> list[LintFinding] | None:
        """Cached per-file findings, only if computed under ``interface``."""
        if entry.get("interface") != interface:
            return None
        raw = entry.get("findings")
        if raw is None:
            return None
        try:
            return [LintFinding(**f) for f in raw]
        except TypeError:
            return None

    @staticmethod
    def set_findings(
        entry: dict,
        interface: str,
        findings: list[LintFinding],
        suppressed: dict[str, int],
    ) -> None:
        entry["interface"] = interface
        entry["findings"] = [f.to_dict() for f in findings]
        entry["suppressed"] = dict(suppressed)

    def prune(self, live_paths) -> None:
        """Drop entries for files no longer part of the scan."""
        live = {str(Path(p).resolve()) for p in live_paths}
        self._entries = {k: v for k, v in self._entries.items() if k in live}
