"""Trace persistence: compressed NPZ plus a human-readable text format.

NPZ is the working format (compact, loads back bit-exact).  The text
format exists for interoperability — one request per line,

    <core> <R|W> <gap> <line> [<n_set:n_reset> x units]

— so traces can be inspected with standard tools or produced by an
external tracer (e.g. a real GEM5 + PARSEC pipeline) and replayed through
this harness.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.trace.record import OP_READ, OP_WRITE, RECORD_DTYPE, Trace

__all__ = ["save_trace", "load_trace", "save_trace_text", "load_trace_text"]


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write a trace as compressed NPZ (``.npz`` appended if missing)."""
    np.savez_compressed(
        Path(path),
        records=trace.records,
        write_counts=trace.write_counts,
        meta=json.dumps(
            {
                "workload": trace.workload,
                "seed": trace.seed,
                "units_per_line": trace.units_per_line,
                **trace.meta,
            }
        ),
    )


def load_trace(path: str | Path) -> Trace:
    with np.load(Path(path), allow_pickle=False) as data:
        meta = json.loads(str(data["meta"]))
        records = data["records"]
        write_counts = data["write_counts"]
    units = int(meta.pop("units_per_line"))
    return Trace(
        workload=str(meta.pop("workload")),
        seed=int(meta.pop("seed")),
        records=records.astype(RECORD_DTYPE),
        write_counts=write_counts,
        units_per_line=units,
        meta=meta,
    )


def save_trace_text(trace: Trace, path: str | Path) -> None:
    """Write the human-readable text format (see module docstring)."""
    path = Path(path)
    with path.open("w") as fh:
        fh.write(
            f"# workload={trace.workload} seed={trace.seed} "
            f"units={trace.units_per_line}\n"
        )
        w = 0
        for rec in trace.records:
            op = "W" if rec["op"] == OP_WRITE else "R"
            fields = [str(int(rec["core"])), op, str(int(rec["gap"])), str(int(rec["line"]))]
            if rec["op"] == OP_WRITE:
                fields.extend(
                    f"{int(s)}:{int(r)}" for s, r in trace.write_counts[w]
                )
                w += 1
            fh.write(" ".join(fields) + "\n")


def load_trace_text(path: str | Path) -> Trace:
    path = Path(path)
    workload, seed, units = "unknown", 0, 8
    rows: list[tuple[int, int, int, int]] = []
    counts: list[list[tuple[int, int]]] = []
    with path.open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                for token in line[1:].split():
                    key, _, value = token.partition("=")
                    if key == "workload":
                        workload = value
                    elif key == "seed":
                        seed = int(value)
                    elif key == "units":
                        units = int(value)
                continue
            parts = line.split()
            core, op_s, gap, addr = parts[:4]
            op = OP_WRITE if op_s == "W" else OP_READ
            rows.append((int(core), op, int(gap), int(addr)))
            if op == OP_WRITE:
                pairs = [tuple(map(int, tok.split(":"))) for tok in parts[4:]]
                if len(pairs) != units:
                    raise ValueError(
                        f"write row has {len(pairs)} unit profiles, expected {units}"
                    )
                counts.append(pairs)  # type: ignore[arg-type]
    records = np.array(rows, dtype=RECORD_DTYPE)
    write_counts = (
        np.array(counts, dtype=np.uint8)
        if counts
        else np.zeros((0, units, 2), dtype=np.uint8)
    )
    return Trace(
        workload=workload,
        seed=seed,
        records=records,
        write_counts=write_counts,
        units_per_line=units,
    )
