"""The eight PARSEC 2.0 workload profiles used in the paper.

``rpki`` / ``wpki`` and the sharing/exchange levels are copied from the
paper's Table III.  ``set_per_unit`` / ``reset_per_unit`` are the mean
post-inversion bit-writes per 64-bit data unit, read off Figure 3 (the
text pins the anchors: ~2 total for blackscholes, ~19 for vips, 9.6
average = 6.7 SET + 2.9 RESET, ferret and vips near fifty-fifty while the
rest are SET-dominant).

The sharing level controls how much of the line pool is common to all
cores in the synthetic generator; the exchange level controls how often a
core re-touches lines recently written by another core.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["WorkloadProfile", "PARSEC_WORKLOADS", "get_workload", "WORKLOAD_NAMES"]


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical fingerprint of one PARSEC workload (Table III + Fig 3)."""

    name: str
    domain: str
    sharing: str           # low / medium / high  (Table III "Data Usage of Sharing")
    exchange: str          # low / medium / high  (Table III "Data Usage of Exchange")
    rpki: float
    wpki: float
    set_per_unit: float    # mean SET cells per 64-bit unit per write (Fig 3)
    reset_per_unit: float  # mean RESET cells per 64-bit unit per write (Fig 3)
    footprint_lines: int = 1 << 16   # working-set size in cache lines
    hot_fraction: float = 0.125      # fraction of footprint that is hot
    hot_probability: float = 0.6     # probability an access hits the hot set

    def __post_init__(self) -> None:
        if self.rpki < 0 or self.wpki < 0:
            raise ValueError("RPKI/WPKI must be non-negative")
        if self.set_per_unit + self.reset_per_unit > 32:
            raise ValueError(
                "mean bit-writes per unit must stay below the flip bound (32)"
            )

    @property
    def total_pki(self) -> float:
        return self.rpki + self.wpki

    @property
    def write_fraction(self) -> float:
        return self.wpki / self.total_pki if self.total_pki else 0.0

    @property
    def mean_gap_instructions(self) -> float:
        """Mean instructions between consecutive memory requests."""
        if self.total_pki == 0:
            raise ValueError(f"{self.name}: no memory traffic")
        return 1000.0 / self.total_pki

    @property
    def set_dominance(self) -> float:
        """SET share of all bit-writes (≈0.5 means fifty-fifty)."""
        total = self.set_per_unit + self.reset_per_unit
        return self.set_per_unit / total if total else 0.0


_SHARING_FRACTION = {"low": 0.05, "medium": 0.35, "high": 0.75}

PARSEC_WORKLOADS: dict[str, WorkloadProfile] = {
    p.name: p
    for p in (
        WorkloadProfile(
            "blackscholes", "Financial Analysis", "low", "low",
            rpki=0.04, wpki=0.02, set_per_unit=1.4, reset_per_unit=0.6,
        ),
        WorkloadProfile(
            "bodytrack", "Computer Vision", "high", "medium",
            rpki=0.72, wpki=0.24, set_per_unit=6.5, reset_per_unit=2.0,
        ),
        WorkloadProfile(
            "canneal", "Engineering", "high", "high",
            rpki=2.76, wpki=0.19, set_per_unit=5.5, reset_per_unit=1.5,
        ),
        WorkloadProfile(
            "dedup", "Enterprise Storage", "high", "high",
            rpki=0.82, wpki=0.49, set_per_unit=10.0, reset_per_unit=4.0,
        ),
        WorkloadProfile(
            "ferret", "Similarity Search", "high", "high",
            rpki=1.67, wpki=0.95, set_per_unit=7.0, reset_per_unit=6.5,
        ),
        WorkloadProfile(
            "freqmine", "Data Mining", "high", "medium",
            rpki=0.62, wpki=0.25, set_per_unit=6.0, reset_per_unit=1.5,
        ),
        WorkloadProfile(
            "swaptions", "Financial Analysis", "low", "low",
            rpki=0.04, wpki=0.02, set_per_unit=2.5, reset_per_unit=0.8,
        ),
        WorkloadProfile(
            "vips", "Media Processing", "low", "medium",
            rpki=2.56, wpki=1.56, set_per_unit=10.5, reset_per_unit=9.0,
        ),
    )
}

WORKLOAD_NAMES: tuple[str, ...] = tuple(PARSEC_WORKLOADS)


def get_workload(name: str) -> WorkloadProfile:
    try:
        return PARSEC_WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(PARSEC_WORKLOADS)}"
        ) from None


def shared_fraction(profile: WorkloadProfile) -> float:
    """Fraction of the line pool visible to all cores, from Table III's
    qualitative sharing level."""
    return _SHARING_FRACTION[profile.sharing]
