"""Workload substrate: PARSEC-2.0-calibrated synthetic memory traces.

The paper drives its GEM5/NVMain system with 8 multi-threaded PARSEC
workloads.  Real PARSEC memory traces require the full GEM5 toolchain, so
per DESIGN.md §4 this package generates *synthetic* post-LLC traces whose
measured statistics match what the paper reports about the real ones:

* arrival rates — memory reads/writes per kilo-instruction (Table III);
* bit-change profile — the per-64-bit-unit SET/RESET counts after data
  inversion (Figure 3), including SET-dominance vs. the fifty-fifty mix
  of ferret/vips and the intensity outliers (blackscholes vs. vips);
* sharing behaviour — the low/medium/high data-sharing levels of
  Table III map to how much of the line pool cores share.

Those statistics are exactly what distinguishes the write schemes, so the
comparison shape of Figs 10-14 is preserved.
"""

from repro.trace.record import OP_READ, OP_WRITE, Trace
from repro.trace.workloads import PARSEC_WORKLOADS, WorkloadProfile, get_workload
from repro.trace.content import ContentModel, realize_payload
from repro.trace.synthetic import SyntheticTraceGenerator, generate_trace
from repro.trace.mixer import generate_mix, mix_traces
from repro.trace.capture import capture_trace
from repro.trace.io import load_trace, save_trace

__all__ = [
    "ContentModel",
    "OP_READ",
    "OP_WRITE",
    "PARSEC_WORKLOADS",
    "SyntheticTraceGenerator",
    "Trace",
    "WorkloadProfile",
    "capture_trace",
    "generate_mix",
    "generate_trace",
    "get_workload",
    "load_trace",
    "mix_traces",
    "realize_payload",
    "save_trace",
]
