"""Capture post-LLC traces from a CPU-level address stream.

Promotes the full-pipeline example's logic to a first-class API: feed a
CPU access stream through the Table II cache hierarchy and collect the
memory-boundary traffic (misses + dirty writebacks) as a replayable
:class:`~repro.trace.record.Trace`.  This is the integration point for
users with real instruction traces: anything that yields
``(line, is_store)`` pairs becomes a workload for the write-scheme
harness.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.cache.hierarchy import CacheHierarchy
from repro.config import SystemConfig, default_config
from repro.trace.content import ContentModel
from repro.trace.record import OP_READ, OP_WRITE, RECORD_DTYPE, Trace
from repro.trace.workloads import WorkloadProfile, get_workload

__all__ = ["capture_trace"]


def capture_trace(
    accesses: Iterable[tuple[int, bool]],
    *,
    config: SystemConfig | None = None,
    content_profile: WorkloadProfile | str = "bodytrack",
    num_cores: int | None = None,
    seed: int = 20160816,
    name: str = "captured",
    flush_at_end: bool = True,
) -> Trace:
    """Filter a CPU stream through the cache hierarchy into a PCM trace.

    Parameters
    ----------
    accesses:
        Iterable of ``(line, is_store)`` CPU references (line indices).
    content_profile:
        Which Figure-3 bit-change profile to stamp on the writebacks —
        captured streams carry addresses, not data, so the content model
        supplies change statistics (pass a custom
        :class:`~repro.trace.workloads.WorkloadProfile` to control them).
    num_cores:
        Post-LLC requests are dealt round-robin across this many cores
        (defaults to the config's core count).
    flush_at_end:
        Drain dirty LLC lines into trailing writes, so the trace
        conserves every store's eventual PCM write.
    """
    cfg = config if config is not None else default_config()
    cores = num_cores if num_cores is not None else cfg.cpu.num_cores
    profile = (
        get_workload(content_profile)
        if isinstance(content_profile, str)
        else content_profile
    )

    hier = CacheHierarchy(cfg)
    mem_ops: list[tuple[int, int]] = []
    n_accesses = 0
    for line, is_store in accesses:
        n_accesses += 1
        res = hier.access(int(line), bool(is_store))
        if res.memory_read:
            mem_ops.append((OP_READ, int(line)))
        for wb in res.writebacks:
            mem_ops.append((OP_WRITE, wb))
    if flush_at_end:
        for wb in hier.flush_all_dirty():
            mem_ops.append((OP_WRITE, wb))

    records = np.zeros(len(mem_ops), dtype=RECORD_DTYPE)
    gap = max(n_accesses // max(len(mem_ops), 1), 1)
    for i, (op, line) in enumerate(mem_ops):
        records[i] = (i % cores, op, gap, line)

    n_writes = int((records["op"] == OP_WRITE).sum())
    rng = np.random.default_rng(np.random.SeedSequence([seed, n_writes]))
    write_counts = ContentModel(profile).draw_counts(
        rng, n_writes, cfg.data_units_per_line
    )
    return Trace(
        workload=name,
        seed=seed,
        records=records,
        write_counts=write_counts,
        units_per_line=cfg.data_units_per_line,
        meta={
            "captured": True,
            "cpu_accesses": n_accesses,
            "l1_hit_rate": hier.stats()["l1_hit_rate"],
            "l3_hit_rate": hier.stats()["l3_hit_rate"],
        },
    )
