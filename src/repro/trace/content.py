"""Content model: bit-change profiles and payload realization.

Two layers, per DESIGN.md §4:

* :class:`ContentModel` draws the **per-write, per-unit (SET, RESET)
  counts** from a workload's Figure-3 profile.  Counts are truncated
  Poisson draws, clipped so one unit never changes more than half its
  cells — which both matches the post-inversion statistics the paper
  reports (Fig 3 is measured *after* flipping) and guarantees the flip
  stage is stable (a change of ≤ N/2 cells never triggers another flip).
* :func:`realize_payload` turns a count profile into **bit-exact data**
  against a concrete old line image, for the functional cell-level model
  and the equivalence tests between the precomputed and functional paths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.workloads import WorkloadProfile

__all__ = ["ContentModel", "realize_payload"]

_U64 = np.uint64


@dataclass
class ContentModel:
    """Draws Figure-3-calibrated bit-change profiles.

    ``burstiness`` mixes in write-to-write correlation: a fraction of
    writes are "dirty-line" writes whose change counts are scaled up,
    and the rest are scaled down, preserving the mean.  This reproduces
    the heterogeneity *inside* one workload that Observation 2 notes,
    without disturbing the workload-level averages.
    """

    profile: WorkloadProfile
    unit_bits: int = 64
    burstiness: float = 0.3

    def draw_counts(
        self, rng: np.random.Generator, n_writes: int, units: int
    ) -> np.ndarray:
        """Return (n_writes, units, 2) uint8 of (n_set, n_reset) counts."""
        lam_set = self.profile.set_per_unit
        lam_reset = self.profile.reset_per_unit

        # Per-write intensity factor (heterogeneity inside the workload).
        if self.burstiness > 0:
            hot = rng.random(n_writes) < self.burstiness
            factor = np.where(hot, 2.0, (1.0 - 2.0 * self.burstiness) / (1.0 - self.burstiness))
        else:
            factor = np.ones(n_writes)
        factor = np.clip(factor, 0.0, None)[:, None]

        n_set = rng.poisson(lam_set * factor, size=(n_writes, units))
        n_reset = rng.poisson(lam_reset * factor, size=(n_writes, units))

        # Clip to the flip bound: at most half of a unit's cells change.
        half = self.unit_bits // 2
        total = n_set + n_reset
        over = total > half
        if over.any():
            # Scale both counts down proportionally where the draw
            # exceeded the bound (rare for all paper profiles).
            scale = half / np.maximum(total, 1)
            n_set = np.where(over, np.floor(n_set * scale), n_set)
            n_reset = np.where(over, np.floor(n_reset * scale), n_reset)
        return np.stack([n_set, n_reset], axis=-1).astype(np.uint8)


def realize_payload(
    rng: np.random.Generator,
    old_logical: np.ndarray,
    counts: np.ndarray,
    unit_bits: int = 64,
) -> np.ndarray:
    """Materialize new logical data hitting an exact (SET, RESET) profile.

    For each unit, picks ``n_set`` random 0-cells to set and ``n_reset``
    random 1-cells to clear in the *logical* image.  When the old unit
    does not have enough cells of the needed polarity the count is
    truncated (recorded profiles assume ~half/half content, which random
    initial images satisfy).

    Returns the new logical units; the achieved counts always satisfy
    ``achieved <= requested`` with equality whenever polarity allows.
    """
    old_logical = np.atleast_1d(np.asarray(old_logical, dtype=_U64))
    counts = np.asarray(counts)
    if counts.shape != (old_logical.size, 2):
        raise ValueError(f"counts must be (units, 2); got {counts.shape}")

    new = old_logical.copy()
    for u in range(old_logical.size):
        word = int(old_logical[u])
        zeros = [b for b in range(unit_bits) if not (word >> b) & 1]
        ones = [b for b in range(unit_bits) if (word >> b) & 1]
        k_set = min(int(counts[u, 0]), len(zeros))
        k_reset = min(int(counts[u, 1]), len(ones))
        if k_set:
            for b in rng.choice(len(zeros), size=k_set, replace=False):
                word |= 1 << zeros[int(b)]
        if k_reset:
            for b in rng.choice(len(ones), size=k_reset, replace=False):
                word &= ~(1 << ones[int(b)])
        new[u] = _U64(word)
    return new
