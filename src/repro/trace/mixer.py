"""Multiprogrammed workload mixes.

The paper runs one multi-threaded PARSEC application across all four
cores; real deployments co-schedule unlike applications.  The mixer
builds a trace whose cores each run a *different* workload profile
(e.g. a read-dominant financial code next to a write-heavy media
pipeline), with per-core address spaces offset so the programs do not
share lines — the interference is purely through the shared memory
controller and banks, which is exactly what the write schemes affect.
"""

from __future__ import annotations

import numpy as np

from repro.trace.record import OP_WRITE, RECORD_DTYPE, Trace
from repro.trace.synthetic import SyntheticTraceGenerator
from repro.trace.workloads import get_workload

__all__ = ["mix_traces", "generate_mix"]


def generate_mix(
    workloads: list[str],
    requests_per_core: int = 2000,
    *,
    seed: int = 20160816,
    units_per_line: int = 8,
    address_stride: int = 1 << 20,
) -> Trace:
    """One single-core stream per named workload, merged into a trace.

    ``workloads[i]`` drives core ``i``; each core's lines live in a
    private window ``[i * address_stride, ...)`` so that bank conflicts
    — not data sharing — carry the interference.
    """
    if not workloads:
        raise ValueError("need at least one workload")
    streams = []
    for core, name in enumerate(workloads):
        gen = SyntheticTraceGenerator(
            get_workload(name),
            num_cores=1,
            units_per_line=units_per_line,
            seed=seed + core,
        )
        sub = gen.generate(requests_per_core)
        records = sub.records.copy()
        records["core"] = core
        records["line"] = records["line"] + np.uint64(core * address_stride)
        streams.append((records, sub.write_counts))
    return mix_traces(streams, name="+".join(workloads), seed=seed,
                      units_per_line=units_per_line)


def mix_traces(
    streams: list[tuple[np.ndarray, np.ndarray]],
    *,
    name: str = "mix",
    seed: int = 0,
    units_per_line: int = 8,
) -> Trace:
    """Merge per-core (records, write_counts) streams on the instruction
    clock, keeping each stream's write-count rows aligned with its write
    records."""
    tagged = []
    for records, counts in streams:
        clock = np.cumsum(records["gap"], dtype=np.int64)
        w_ord = np.cumsum(records["op"] == OP_WRITE) - 1
        tagged.append((records, counts, clock, w_ord))

    total = sum(len(r) for r, _, _, _ in tagged)
    merged = np.empty(total, dtype=RECORD_DTYPE)
    merged_counts = []
    # k-way merge by clock (stable across streams by index order).
    idx = [0] * len(tagged)
    for out_i in range(total):
        best = -1
        best_clock = None
        for s, (records, _, clock, _) in enumerate(tagged):
            if idx[s] >= len(records):
                continue
            c = clock[idx[s]]
            if best_clock is None or c < best_clock:
                best, best_clock = s, c
        records, counts, _, w_ord = tagged[best]
        rec = records[idx[best]]
        merged[out_i] = rec
        if rec["op"] == OP_WRITE:
            merged_counts.append(counts[w_ord[idx[best]]])
        idx[best] += 1

    write_counts = (
        np.stack(merged_counts).astype(np.uint8)
        if merged_counts
        else np.zeros((0, units_per_line, 2), dtype=np.uint8)
    )
    return Trace(
        workload=name,
        seed=seed,
        records=merged,
        write_counts=write_counts,
        units_per_line=units_per_line,
        meta={"mixed": True},
    )
