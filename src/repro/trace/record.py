"""Trace container and record format.

A trace is a flat, time-ordered sequence of post-LLC memory requests:

========  =====  ====================================================
field     dtype  meaning
========  =====  ====================================================
``core``  u1     issuing core (0..3 for the paper's 4-core CMP)
``op``    u1     :data:`OP_READ` or :data:`OP_WRITE`
``gap``   u4     instructions the core executes *before* this request
``line``  u8     cache-line address (line index, not byte address)
========  =====  ====================================================

Writes additionally carry a **bit-change profile**: for write *w* (in
record order), ``write_counts[w, u] = (n_set, n_reset)`` — the number of
cells of data unit *u* the write changes, post-inversion.  Per DESIGN.md
§4 the schemes are functions of these counts, so carrying the counts
(2 bytes/unit) instead of full payloads (8 bytes/unit) keeps big traces
small; :func:`repro.trace.content.realize_payload` can materialize bit-
exact payloads from the counts when the functional cell-level model needs
them.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

__all__ = ["OP_READ", "OP_WRITE", "RECORD_DTYPE", "Trace"]

OP_READ = 0
OP_WRITE = 1

RECORD_DTYPE = np.dtype(
    [("core", "u1"), ("op", "u1"), ("gap", "u4"), ("line", "u8")]
)


@dataclass
class Trace:
    """One workload's memory trace plus its generation metadata."""

    workload: str
    seed: int
    records: np.ndarray                     # RECORD_DTYPE, time-ordered per core
    write_counts: np.ndarray                # (n_writes, units, 2) uint8
    units_per_line: int = 8
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.records.dtype != RECORD_DTYPE:
            raise TypeError(f"records must have dtype {RECORD_DTYPE}")
        n_writes = int((self.records["op"] == OP_WRITE).sum())
        if self.write_counts.shape != (n_writes, self.units_per_line, 2):
            raise ValueError(
                f"write_counts shape {self.write_counts.shape} does not match "
                f"{n_writes} writes x {self.units_per_line} units"
            )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    @property
    def n_reads(self) -> int:
        return int((self.records["op"] == OP_READ).sum())

    @property
    def n_writes(self) -> int:
        return int((self.records["op"] == OP_WRITE).sum())

    @property
    def write_indices(self) -> np.ndarray:
        """Record indices of the write requests, in order."""
        return np.nonzero(self.records["op"] == OP_WRITE)[0]

    def instructions_per_core(self) -> dict[int, int]:
        """Total instructions each core executes (sum of its gaps)."""
        out: dict[int, int] = {}
        for core in np.unique(self.records["core"]):
            mask = self.records["core"] == core
            out[int(core)] = int(self.records["gap"][mask].sum(dtype=np.int64))
        return out

    # ------------------------------------------------------------------
    def measured_rpki_wpki(self) -> tuple[float, float]:
        """Back out RPKI/WPKI from the trace (validates calibration)."""
        total_instr = sum(self.instructions_per_core().values())
        if total_instr == 0:
            return 0.0, 0.0
        return (
            1000.0 * self.n_reads / total_instr,
            1000.0 * self.n_writes / total_instr,
        )

    def fingerprint(self) -> str:
        """Content hash identifying this trace for result caching.

        Two traces with the same fingerprint drive bit-identical
        simulations: the hash covers every request record, every write's
        bit-change profile, and the geometry (``units_per_line``).  The
        workload label and seed are included so differently-provenanced
        traces never alias even if their payloads collide structurally.
        """
        h = hashlib.sha256()
        h.update(f"{self.workload}\x00{self.seed}\x00{self.units_per_line}\x00".encode())
        h.update(np.ascontiguousarray(self.records).tobytes())
        h.update(np.ascontiguousarray(self.write_counts).tobytes())
        return h.hexdigest()

    def mean_bit_profile(self) -> tuple[float, float]:
        """Average (SET, RESET) cells per data unit across all writes —
        the quantity Figure 3 plots."""
        if self.n_writes == 0:
            return 0.0, 0.0
        counts = self.write_counts.astype(np.float64)
        return float(counts[..., 0].mean()), float(counts[..., 1].mean())

    def per_core(self, core: int) -> np.ndarray:
        return self.records[self.records["core"] == core]
