"""Synthetic post-LLC trace generator calibrated to Table III / Figure 3.

Each core produces an independent request stream:

* **gaps** — geometric with mean ``1000 / (RPKI + WPKI)`` instructions,
  so the measured per-kilo-instruction rates converge to Table III;
* **ops** — Bernoulli with ``P(write) = WPKI / (RPKI + WPKI)``;
* **lines** — drawn from a two-level pool: a *shared* region sized by the
  workload's Table III sharing level plus a per-core *private* region,
  each with a hot subset (temporal locality).  High-exchange workloads
  steer more writes into the shared region, so cores contend for the
  same banks the way producer-consumer PARSEC codes do;
* **write contents** — per-write (SET, RESET) unit profiles from the
  :class:`~repro.trace.content.ContentModel`.

Per-core streams are merged on their cumulative instruction clock, which
approximates global program order well enough for the controller's FCFS
arbitration (exact interleaving is decided by the DES at replay time).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.content import ContentModel
from repro.trace.record import OP_READ, OP_WRITE, RECORD_DTYPE, Trace
from repro.trace.workloads import (
    WorkloadProfile,
    get_workload,
    shared_fraction,
)

__all__ = ["SyntheticTraceGenerator", "generate_trace"]

_EXCHANGE_WRITE_SHARED = {"low": 0.1, "medium": 0.4, "high": 0.7}


@dataclass
class SyntheticTraceGenerator:
    """Reusable generator bound to one workload profile.

    ``pattern`` selects the address-stream shape:

    * ``"pooled"`` (default) — the two-level shared/private pools with
      hot subsets described in the module docstring;
    * ``"streaming"`` — each core walks lines sequentially from its
      private base (perfect bank rotation, maximal bank parallelism);
    * ``"strided"`` — each core walks with a fixed ``stride`` in lines;
      a stride that is a multiple of the bank count camps on one bank,
      the classic pathological interleaving.
    """

    profile: WorkloadProfile
    num_cores: int = 4
    units_per_line: int = 8
    seed: int = 20160816
    pattern: str = "pooled"
    stride: int = 1

    def __post_init__(self) -> None:
        if self.pattern not in ("pooled", "streaming", "strided"):
            raise ValueError(f"unknown pattern {self.pattern!r}")
        if self.stride < 1:
            raise ValueError("stride must be >= 1")

    # ------------------------------------------------------------------
    def _line_pools(self) -> tuple[np.ndarray, list[np.ndarray]]:
        """Partition the footprint into shared + per-core private pools."""
        n = self.profile.footprint_lines
        share = int(n * shared_fraction(self.profile))
        shared = np.arange(share, dtype=np.uint64)
        remaining = n - share
        per_core = max(remaining // self.num_cores, 1)
        privates = [
            np.arange(
                share + c * per_core, share + (c + 1) * per_core, dtype=np.uint64
            )
            for c in range(self.num_cores)
        ]
        return shared, privates

    def _draw_lines(
        self,
        rng: np.random.Generator,
        n: int,
        ops: np.ndarray,
        shared: np.ndarray,
        private: np.ndarray,
    ) -> np.ndarray:
        """Pick line addresses with locality and sharing behaviour."""
        prof = self.profile
        p_shared_write = _EXCHANGE_WRITE_SHARED[prof.exchange]
        p_shared_read = shared_fraction(prof)

        use_shared = rng.random(n) < np.where(
            ops == OP_WRITE, p_shared_write, p_shared_read
        )
        hot = rng.random(n) < prof.hot_probability

        def pick(pool: np.ndarray, hot_mask: np.ndarray) -> np.ndarray:
            if pool.size == 0:
                pool = np.arange(1, dtype=np.uint64)
            hot_n = max(int(pool.size * prof.hot_fraction), 1)
            idx_hot = rng.integers(0, hot_n, size=n)
            idx_cold = rng.integers(0, pool.size, size=n)
            return pool[np.where(hot_mask, idx_hot, idx_cold)]

        lines_shared = pick(shared, hot)
        lines_private = pick(private, hot)
        return np.where(use_shared & (shared.size > 0), lines_shared, lines_private)

    # ------------------------------------------------------------------
    def generate(
        self,
        requests_per_core: int = 5000,
        *,
        burstiness: float = 0.3,
    ) -> Trace:
        """Produce a merged multi-core trace.

        ``requests_per_core`` fixes the statistical weight of every
        workload regardless of its memory intensity; the implied
        instruction counts (and hence simulated time) scale inversely
        with RPKI+WPKI, exactly as the real workloads' running times do.
        """
        prof = self.profile
        # zlib.crc32, not hash(): the builtin str hash is randomized per
        # interpreter run and would make traces irreproducible across
        # invocations.
        import zlib

        name_key = zlib.crc32(prof.name.encode())
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, name_key])
        )
        shared, privates = self._line_pools()

        all_cores, all_ops, all_gaps, all_lines, all_times = [], [], [], [], []
        mean_gap = prof.mean_gap_instructions
        for core in range(self.num_cores):
            n = requests_per_core
            # Geometric gaps (support >= 1) with the calibrated mean.
            p = min(1.0, 1.0 / mean_gap)
            gaps = rng.geometric(p, size=n).astype(np.uint32)
            ops = (rng.random(n) < prof.write_fraction).astype(np.uint8)
            if self.pattern == "pooled":
                lines = self._draw_lines(rng, n, ops, shared, privates[core])
            else:
                step = 1 if self.pattern == "streaming" else self.stride
                base = core * prof.footprint_lines
                lines = (base + step * np.arange(n, dtype=np.uint64)).astype(
                    np.uint64
                )
            clock = np.cumsum(gaps, dtype=np.int64)  # instruction clock
            all_cores.append(np.full(n, core, dtype=np.uint8))
            all_ops.append(ops)
            all_gaps.append(gaps)
            all_lines.append(lines)
            all_times.append(clock)

        cores = np.concatenate(all_cores)
        ops = np.concatenate(all_ops)
        gaps = np.concatenate(all_gaps)
        lines = np.concatenate(all_lines)
        clock = np.concatenate(all_times)

        order = np.argsort(clock, kind="stable")  # merge on instruction clock
        records = np.empty(cores.size, dtype=RECORD_DTYPE)
        records["core"] = cores[order]
        records["op"] = ops[order]
        records["gap"] = gaps[order]
        records["line"] = lines[order]

        n_writes = int((records["op"] == OP_WRITE).sum())
        content = ContentModel(
            prof, unit_bits=64, burstiness=burstiness
        )
        write_counts = content.draw_counts(rng, n_writes, self.units_per_line)

        return Trace(
            workload=prof.name,
            seed=self.seed,
            records=records,
            write_counts=write_counts,
            units_per_line=self.units_per_line,
            meta={
                "requests_per_core": requests_per_core,
                "num_cores": self.num_cores,
                "burstiness": burstiness,
            },
        )


def generate_trace(
    workload: str,
    requests_per_core: int = 5000,
    *,
    num_cores: int = 4,
    seed: int = 20160816,
    units_per_line: int = 8,
    burstiness: float = 0.3,
    pattern: str = "pooled",
    stride: int = 1,
) -> Trace:
    """Convenience wrapper: generate a trace for a named PARSEC workload."""
    gen = SyntheticTraceGenerator(
        get_workload(workload),
        num_cores=num_cores,
        units_per_line=units_per_line,
        seed=seed,
        pattern=pattern,
        stride=stride,
    )
    return gen.generate(requests_per_core, burstiness=burstiness)
