"""repro — reproduction of *Tetris Write: Exploring More Write Parallelism
Considering PCM Asymmetries* (Li et al., ICPP 2016).

Public API tour
---------------
* :mod:`repro.config` — Table II parameter sets (:func:`default_config`,
  :func:`mobile_config`).
* :mod:`repro.core` — the contribution: Algorithm 1 read stage,
  Algorithm 2 analysis/packing, the FSM executor, Equation 5.
* :mod:`repro.schemes` — the uniform write-scheme interface: DCW,
  Conventional, Flip-N-Write, 2-Stage-Write, Three-Stage-Write, Tetris.
* :mod:`repro.pcm` — the device substrate: timing/power/energy, chips,
  banks, device, write driver.
* :mod:`repro.memctrl` / :mod:`repro.cpu` / :mod:`repro.cache` /
  :mod:`repro.sim` — the full-system substrates (FR-FCFS controller,
  trace-driven cores, cache hierarchy, DES kernel).
* :mod:`repro.trace` — PARSEC-calibrated synthetic workloads.
* :mod:`repro.experiments` — one harness per paper figure/table.

Quick start::

    import numpy as np
    from repro import analyze, default_config, read_stage
    from repro.pcm.state import LineState

    cfg = default_config()
    old = LineState.from_logical(np.zeros(8, dtype=np.uint64))
    new = np.full(8, 0x0F0F, dtype=np.uint64)
    rs = read_stage(old.physical, old.flip, new)
    sched = analyze(rs.n_set, rs.n_reset,
                    K=cfg.K, L=cfg.L, power_budget=cfg.bank_power_budget)
    print(sched.service_time_ns(cfg.timings.t_set_ns))
"""

from repro.config import SystemConfig, default_config, mobile_config
from repro.core import analyze, execute_schedule, read_stage
from repro.core.analysis import TetrisScheduler
from repro.core.schedule import TetrisSchedule
from repro.schemes import ALL_SCHEMES, COMPARED_SCHEMES, get_scheme

__version__ = "1.0.0"

__all__ = [
    "ALL_SCHEMES",
    "COMPARED_SCHEMES",
    "SystemConfig",
    "TetrisSchedule",
    "TetrisScheduler",
    "analyze",
    "default_config",
    "execute_schedule",
    "get_scheme",
    "mobile_config",
    "read_stage",
    "__version__",
]
