"""Analytic cell pricer: full sweep rows without running the DES.

Two halves, mirroring the two halves of a DES cell
(:func:`repro.parallel.engine._execute_cell`):

* :func:`price_write_service` — per-write ``(service_ns, units, energy)``
  arrays, the same numbers ``precompute_write_service`` produces but
  built only from the oracle's closed forms (Eqs. 1-4), the vectorized
  Algorithm-2 packer (``repro.core.batch``) and the count tables the
  trace already carries.  Bit-identical to the production tables by
  construction (asserted in ``tests/test_fastpath.py``).
* :func:`model_cell` — a two-regime analytic model of the restricted
  controller semantics that replaces the event-driven simulation:

  - **Free-run regime.**  While the write queue is below the drain
    watermark, no request ever waits: reads cost ``t_read``, writes cost
    the issuing core nothing (posted to the write queue).  Each core's
    timeline is a single ``cumsum`` over its records plus a scalar delay
    offset ``D`` accumulated at regime boundaries; write arrivals are
    merged across cores in time order by a small pick loop.
  - **Drain-window regime.**  When occupancy reaches the high watermark
    the controller turns demand-blind, and queueing effects dominate.
    The model switches to an *exact* event simulation of the window
    (write completions, starved-read chains, core resumes) until the
    system is quiescent: drain flag off, no writes in flight, no queued
    reads, no stalled cores.  Windows are rare (a few per thousand
    writes) and short, so the exact replay costs little.

  Validated against the DES on the full Fig 11-14 grid (8 workloads x 6
  schemes, 4000 requests/core): mean absolute error 0.4-1.4% per metric,
  max 5.6% (read latency on saturated cells); see docs/PERFORMANCE.md.

Import discipline (simlint SL016): this package must not import
``repro.sim``, ``repro.pcm`` or ``repro.schemes`` — the fast path has to
stay falsifiable against the production simulator, which it cannot be if
it computes answers *with* the production simulator.  The energy
constants below therefore mirror ``repro.pcm.energy.EnergyModel`` rather
than importing it; ``tests/test_fastpath.py`` pins them to the real
model.
"""

from __future__ import annotations

import heapq
from collections import deque

import numpy as np

from repro.config import SystemConfig
from repro.core.batch import pack_batch
from repro.oracle import analytic
from repro.trace.record import OP_WRITE, Trace

__all__ = [
    "PRICED_SCHEMES",
    "model_cell",
    "price_cell",
    "price_write_service",
]

#: Schemes the pricer covers — a subset of the production registry
#: (pinned by tests); an unknown name routes the cell to the DES with
#: the ``unpriced-scheme`` envelope reason (currently only ``palp``,
#: whose min-of-two-plans packing has no vectorized pricer yet).
PRICED_SCHEMES = frozenset(
    {
        "conventional",
        "dcw",
        "flip_n_write",
        "two_stage",
        "three_stage",
        "tetris",
        "tetris_relaxed",
        "preset",
        "wire",
        "datacon",
    }
)

#: Schemes that pay the read-before-write (``WriteScheme.requires_read``).
_READ_SCHEMES = frozenset(
    {"dcw", "flip_n_write", "three_stage", "tetris", "tetris_relaxed",
     "wire", "datacon"}
)

#: Schemes that pay the analysis stage on every write.
_ANALYSIS_SCHEMES = frozenset({"tetris", "tetris_relaxed"})

#: Mirror of ``EnergyModel.read_energy_per_line`` (not a config knob).
READ_ENERGY_PER_LINE = 10.0

#: Mirror of ``precompute_write_service``'s PreSET expectation: random
#: line content has ~half zeros per 64-bit unit.
PRESET_EXPECTED_ZEROS = 32

#: Mirror of ``MemoryController.forward_latency_ns`` (constructor
#: default; the sweep path never overrides it).
FWD_LATENCY_NS = 1.0


# ----------------------------------------------------------------------
# Write-service pricing: the precompute_write_service mirror.
# ----------------------------------------------------------------------
def price_write_service(
    trace: Trace, scheme: str, config: SystemConfig
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-write ``(service_ns, units, energy)`` for one (trace, scheme).

    Reproduces ``precompute_write_service(trace, scheme, config)`` (no
    variation, no adaptive analysis — the sweep engine's exact call)
    without touching ``repro.pcm`` / ``repro.schemes``.
    """
    if scheme not in PRICED_SCHEMES:
        raise KeyError(f"no analytic pricing for scheme {scheme!r}")
    point = analytic.OperatingPoint.from_config(config)
    n_writes = trace.n_writes
    n_set = trace.write_counts[..., 0].astype(np.int64)
    n_reset = trace.write_counts[..., 1].astype(np.int64)
    changed_set = n_set.sum(axis=1)
    changed_reset = n_reset.sum(axis=1)
    cells_per_line = trace.units_per_line * config.data_unit_bits
    e_set = 1.0 * config.timings.t_set_ns
    e_reset = config.L * config.timings.t_reset_ns
    read_energy = READ_ENERGY_PER_LINE if scheme in _READ_SCHEMES else 0.0
    t_read = config.timings.t_read_ns
    t_set = config.timings.t_set_ns

    if scheme == "preset":
        n_zero = np.full(
            (n_writes, trace.units_per_line), PRESET_EXPECTED_ZEROS, dtype=np.int64
        )
        packed = pack_batch(
            np.zeros_like(n_zero),
            n_zero,
            K=config.K,
            L=config.L,
            power_budget=config.bank_power_budget,
            allow_split=True,
        )
        units = packed.service_units()
        service = units * t_set
        cells = n_zero.sum(axis=1).astype(np.float64)
        energy = cells * (e_reset + e_set)
    elif scheme == "tetris_relaxed":
        units = np.array(
            [
                analytic.tetris_relaxed_units(n_set[w], n_reset[w], point)
                for w in range(n_writes)
            ]
        )
        service = t_read + config.analysis_overhead_ns + units * t_set
        energy = _write_energy(changed_set, changed_reset, e_set, e_reset) + read_energy
    elif scheme == "datacon":
        # One conventional per-data-unit share per dirty unit; energy is
        # DCW's (changed cells, plain encoding).
        dirty = np.count_nonzero(n_set + n_reset, axis=1)
        per_dirty = config.units_per_line / config.data_units_per_line
        units = dirty.astype(np.float64) * per_dirty
        service = t_read + units * t_set
        energy = _write_energy(changed_set, changed_reset, e_set, e_reset) + read_energy
    elif scheme == "tetris":
        packed = pack_batch(
            n_set,
            n_reset,
            K=config.K,
            L=config.L,
            power_budget=config.bank_power_budget,
            allow_split=True,
        )
        units = packed.service_units()
        service = t_read + config.analysis_overhead_ns + units * t_set
        energy = _write_energy(changed_set, changed_reset, e_set, e_reset) + read_energy
    else:
        wc_units = analytic.worst_case_units(scheme, point)
        units = np.full(n_writes, wc_units)
        read = t_read if scheme in _READ_SCHEMES else 0.0
        service = np.full(n_writes, read + wc_units * t_set)
        if scheme in ("conventional", "two_stage"):
            half = cells_per_line / 2.0
            energy = np.full(n_writes, float(_write_energy(half, half, e_set, e_reset)))
            energy += read_energy
        else:
            energy = (
                _write_energy(changed_set, changed_reset, e_set, e_reset) + read_energy
            )

    return (
        np.asarray(service, dtype=np.float64),
        np.asarray(units, dtype=np.float64),
        np.asarray(energy, dtype=np.float64),
    )


def _write_energy(n_set_bits, n_reset_bits, e_set: float, e_reset: float):
    """Mirror of ``EnergyModel.write_energy`` (same dtype discipline)."""
    return (
        np.asarray(n_set_bits, dtype=np.float64) * e_set
        + np.asarray(n_reset_bits, dtype=np.float64) * e_reset
    )


# ----------------------------------------------------------------------
# The two-regime system model.
# ----------------------------------------------------------------------
EV_DONE = 0  # write service completion on a bank
EV_RCHAIN = 1  # starved-read service completion on a bank
EV_REC = 2  # resume a core's record stream


class _Core:
    """One core's free-run schedule as plain Python lists.

    ``issue``/``finish`` are the record's free-run times; the live time
    of record ``k`` is ``issue[k] + D`` where ``D`` is the core's
    accumulated delay.  Lists (not arrays) because the window replay
    touches single elements on its hot path.
    """

    __slots__ = (
        "issue",
        "finish",
        "is_rd",
        "line",
        "bank",
        "widx",
        "n",
        "D",
        "k",
        "instr",
        "blocked",
    )

    def __init__(self, r, widx_all, cycle, t_read, num_banks):
        gap_ns = r["gap"].astype(np.float64) * cycle
        is_rd = r["op"] != OP_WRITE
        cost = gap_ns + np.where(is_rd, t_read, 0.0)
        finish = np.cumsum(cost)
        issue = finish - np.where(is_rd, t_read, 0.0)
        line = r["line"].astype(np.int64)
        self.issue = issue.tolist()
        self.finish = finish.tolist()
        self.is_rd = is_rd.tolist()
        self.line = line.tolist()
        self.bank = (line % num_banks).tolist()
        self.widx = widx_all.tolist()
        self.n = len(r)
        self.D = 0.0
        self.k = 0
        self.instr = int(r["gap"].sum(dtype=np.int64))
        self.blocked = False


def model_cell(
    trace: Trace, service_ns, config: SystemConfig
) -> tuple[float, float, float, float, int]:
    """Analytic system metrics for one cell.

    Returns ``(read_latency_ns, write_latency_ns, ipc, runtime_ns,
    forwarded_reads)`` — the DES outputs the sweep rows are built from.
    ``service_ns`` is the per-write service array (from
    :func:`price_write_service` or a production table).
    """
    t_read = config.timings.t_read_ns
    fwd_ns = FWD_LATENCY_NS
    cycle = config.cpu.cycle_ns * config.cpu.base_cpi
    num_banks = config.organization.num_banks * config.organization.num_ranks
    hi = config.memctrl.drain_high_watermark
    lo = config.memctrl.drain_low_watermark
    wq_cap = config.memctrl.write_queue_entries

    recs = trace.records
    is_write_all = recs["op"] == OP_WRITE
    write_ord_all = np.where(is_write_all, np.cumsum(is_write_all) - 1, -1)

    cores = [
        _Core(
            recs[recs["core"] == c],
            write_ord_all[recs["core"] == c].astype(np.int64),
            cycle,
            t_read,
            num_banks,
        )
        for c in range(config.cpu.num_cores)
    ]

    svc = np.asarray(service_ns, dtype=np.float64).tolist()
    n_writes = trace.n_writes
    write_lat = [0.0] * n_writes
    read_extra = 0.0
    n_fwd = 0

    qb = [deque() for _ in range(num_banks)]  # per-bank pending writes
    occ = 0  # global write-queue occupancy
    pend_lines = {}  # line -> pending-write count (read forwarding)

    # ------------------------------------------------------------------
    def window_sim(t0):
        """Exact replay of one drain window starting at time ``t0``."""
        nonlocal read_extra, n_fwd, occ
        draining = True
        bank_busy = [0] * num_banks  # 0 idle, 1 write, 2 read
        writes_in_flight = 0
        rq = [deque() for _ in range(num_banks)]  # starved reads
        n_rq = 0
        stalled = deque()  # cores frozen on a full write queue
        n_blocked = 0
        seq = 0
        evq = []
        push_ev = heapq.heappush

        def start_write(b, now):
            nonlocal occ, draining, writes_in_flight, seq, n_blocked
            arr, wi, ln = qb[b].popleft()
            occ -= 1
            if occ <= lo:
                draining = False
            cnt = pend_lines[ln] - 1
            if cnt:
                pend_lines[ln] = cnt
            else:
                del pend_lines[ln]
            done = now + svc[wi]
            write_lat[wi] = done - arr
            bank_busy[b] = 1
            writes_in_flight += 1
            seq += 1
            push_ev(evq, (done, seq, EV_DONE, b))
            if stalled:
                core = stalled.popleft()
                core.blocked = False
                n_blocked -= 1
                # The core was frozen at its write record; it resubmits
                # now, so its delay grows by the time spent stalled.
                core.D = now - core.issue[core.k]
                seq += 1
                push_ev(evq, (now, seq, EV_REC, core))

        def start_read_chain(b, now):
            nonlocal n_rq, read_extra, seq
            arr, core = rq[b].popleft()
            n_rq -= 1
            done = now + t_read
            read_extra += done - t_read - arr
            bank_busy[b] = 2
            seq += 1
            push_ev(evq, (done, seq, EV_RCHAIN, (b, core)))

        def run_core(c, now):
            """Advance one core inline until it interacts with the window
            state (starved read, queue-full stall) or falls behind the
            event queue head."""
            nonlocal occ, draining, read_extra, n_fwd, n_blocked, n_rq, seq
            k = c.k
            n = c.n
            D = c.D
            issue = c.issue
            finish = c.finish
            is_rd = c.is_rd
            line = c.line
            bank = c.bank
            widx = c.widx
            while k < n:
                t = issue[k] + D
                if evq and t > evq[0][0]:
                    break
                if is_rd[k]:
                    ln = line[k]
                    if ln in pend_lines:
                        n_fwd += 1
                        read_extra += fwd_ns - t_read
                        D = (t + fwd_ns) - finish[k]
                        k += 1
                        continue
                    b = bank[k]
                    if bank_busy[b] or (draining and qb[b]):
                        rq[b].append((t, c))
                        n_rq += 1
                        c.blocked = True
                        n_blocked += 1
                        c.k = k
                        c.D = D
                        return
                    k += 1
                    continue
                # Write record.
                if occ >= wq_cap:
                    stalled.append(c)
                    c.blocked = True
                    n_blocked += 1
                    c.k = k
                    c.D = D
                    return
                wi = widx[k]
                b = bank[k]
                ln = line[k]
                qb[b].append((t, wi, ln))
                occ += 1
                pend_lines[ln] = pend_lines.get(ln, 0) + 1
                D = t - finish[k]
                k += 1
                if draining:
                    if not bank_busy[b]:
                        start_write(b, t)
                elif occ >= hi:
                    draining = True
                    for bb in range(num_banks):
                        if not bank_busy[bb] and qb[bb]:
                            start_write(bb, t)
                            if not draining:
                                break
            c.k = k
            c.D = D
            if k < n:
                seq += 1
                push_ev(evq, (issue[k] + D, seq, EV_REC, c))

        # Seed: retire stale free-run records, kick idle banks, resume
        # cores.  Macro invariant: every unprocessed record with live
        # time <= t0 is a read (writes are merged in global time order),
        # and those reads already completed in the free-run regime —
        # only their forwarding hits need accounting.
        for c in cores:
            if c.blocked or c.k >= c.n:
                continue
            k = c.k
            D = c.D
            nh = 0
            line = c.line
            is_rd = c.is_rd
            issue = c.issue
            n = c.n
            while k < n and is_rd[k] and issue[k] + D <= t0:
                if line[k] in pend_lines:
                    nh += 1
                k += 1
            if nh:
                n_fwd += nh
                read_extra += nh * (fwd_ns - t_read)
                D -= nh * (t_read - fwd_ns)
            c.k = k
            c.D = D
        for b in range(num_banks):
            if draining and qb[b] and not bank_busy[b]:
                start_write(b, t0)
            if not draining:
                break
        for c in cores:
            if c.k < c.n and not c.blocked:
                seq += 1
                push_ev(evq, (c.issue[c.k] + c.D, seq, EV_REC, c))

        while evq:
            t, _, kind, payload = heapq.heappop(evq)
            if kind == EV_REC:
                c = payload
                if not c.blocked and c.k < c.n:
                    run_core(c, t)
                continue
            if kind == EV_DONE:
                b = payload
                writes_in_flight -= 1
            else:  # EV_RCHAIN
                b, core = payload
                core.blocked = False
                n_blocked -= 1
                core.D = t - core.finish[core.k]
                core.k += 1
            bank_busy[b] = 0
            if draining and qb[b]:
                start_write(b, t)
            elif rq[b]:
                start_read_chain(b, t)
            if kind == EV_RCHAIN:
                run_core(core, t)
            if (
                not draining
                and writes_in_flight == 0
                and n_rq == 0
                and not stalled
                and n_blocked == 0
            ):
                return

    # ------------------------------------------------------------------
    # Macro loop: free-run between windows; writes accumulate unserved.
    while True:
        best_t = None
        best_c = None
        best_k = -1
        for c in cores:
            k = c.k
            is_rd = c.is_rd
            n = c.n
            while k < n and is_rd[k]:
                k += 1
            if k < n:
                t = c.issue[k] + c.D
                if best_t is None or t < best_t:
                    best_t, best_c, best_k = t, c, k
        if best_c is None:
            break
        c, k = best_c, best_k
        if pend_lines and k > c.k:
            # Reads skipped over on the way to this write may hit a
            # pending line: they complete by forwarding, not the array.
            nh = 0
            line = c.line
            for j in range(c.k, k):
                if line[j] in pend_lines:
                    nh += 1
            if nh:
                n_fwd += nh
                read_extra += nh * (fwd_ns - t_read)
                c.D -= nh * (t_read - fwd_ns)
                best_t = c.issue[k] + c.D
        wi = c.widx[k]
        b = c.bank[k]
        ln = c.line[k]
        qb[b].append((best_t, wi, ln))
        occ += 1
        pend_lines[ln] = pend_lines.get(ln, 0) + 1
        c.k = k + 1
        if occ >= hi:
            window_sim(best_t)

    finishes = [(c.finish[c.n - 1] + c.D) if c.n else 0.0 for c in cores]
    runtime = max(finishes) if finishes else 0.0
    if occ:
        # Writes still queued when the last record retires are flushed
        # per bank from the end of the run (the DES's final drain).
        for b in range(num_banks):
            free = runtime
            for arr, wi, ln in qb[b]:
                free += svc[wi]
                write_lat[wi] = free - arr

    n_reads = trace.n_reads
    read_lat = t_read + (read_extra / n_reads if n_reads else 0.0)
    w_lat = (sum(write_lat) / n_writes) if n_writes else 0.0
    total_instr = sum(c.instr for c in cores)
    ipc = total_instr / (runtime / config.cpu.cycle_ns) if runtime > 0 else 0.0
    return read_lat, w_lat, ipc, runtime, n_fwd


# ----------------------------------------------------------------------
# Full rows.
# ----------------------------------------------------------------------
def price_cell(
    trace: Trace, workload: str, scheme: str, config: SystemConfig
) -> dict:
    """One sweep row as a field dict (``ExperimentResult(**fields)``).

    Field coercion matches ``_execute_cell``: builtin ``float``/``int``
    so a fresh row is byte-identical after a JSON cache round-trip.
    ``events`` is 0 — the analytic lane processes no DES events — which
    also marks the row's lane in cached artifacts.
    """
    service, units, energy = price_write_service(trace, scheme, config)
    read_lat, w_lat, ipc, runtime, n_fwd = model_cell(trace, service, config)
    return {
        "workload": workload,
        "scheme": scheme,
        "read_latency_ns": float(read_lat),
        "write_latency_ns": float(w_lat),
        "ipc": float(ipc),
        "runtime_ns": float(runtime),
        "mean_write_units": float(units.mean()) if units.size else 0.0,
        "mean_write_energy": float(energy.mean()) if energy.size else 0.0,
        "forwarded_reads": int(n_fwd),
        "events": 0,
    }
