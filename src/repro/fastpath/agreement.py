"""Row-agreement policy for the differential recheck.

The fastpath is a *model* of the DES, not a re-implementation: pricing
fields (``mean_write_units``, ``mean_write_energy``) must match exactly
— both lanes compute them from the same tables — while system metrics
(latencies, IPC, runtime) carry modelling error with measured bounds
(see docs/PERFORMANCE.md).  The tolerance table below is those measured
errors plus margin; a fastpath row outside a band against its DES
re-run is a **divergence** — a certificate-visible event that fails CI.

``forwarded_reads`` and ``events`` are informational: the model counts
forwarding slightly differently inside drain windows, and reports
``events = 0`` by definition, so neither participates in agreement.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "FIELD_TOLERANCES",
    "FieldTolerance",
    "compare_rows",
]


@dataclass(frozen=True)
class FieldTolerance:
    """Acceptance band for one row field: ``|a-b| <= rel*|b| + abs``."""

    field: str
    rel: float
    abs: float = 0.0

    def accepts(self, fast: float, des: float) -> bool:
        return abs(fast - des) <= self.rel * abs(des) + self.abs


#: Measured model error (full Fig 11-14 corpus) plus ~2x margin.
FIELD_TOLERANCES: tuple[FieldTolerance, ...] = (
    FieldTolerance("read_latency_ns", rel=0.12, abs=5.0),
    FieldTolerance("write_latency_ns", rel=0.05, abs=50.0),
    FieldTolerance("ipc", rel=0.04),
    FieldTolerance("runtime_ns", rel=0.04, abs=100.0),
    # Pricing is shared arithmetic, not a model: exact (fp noise only).
    FieldTolerance("mean_write_units", rel=1e-9, abs=1e-9),
    FieldTolerance("mean_write_energy", rel=1e-9, abs=1e-6),
)


def compare_rows(fast: dict, des: dict) -> list[dict]:
    """Compare a fastpath row against its DES re-run.

    Both rows are ``ExperimentResult`` field dicts.  Returns one entry
    per out-of-band field (empty list = rows agree): ``{"field",
    "fastpath", "des", "rel", "abs", "tol_rel", "tol_abs"}``.
    """
    divergences: list[dict] = []
    for tol in FIELD_TOLERANCES:
        f = float(fast[tol.field])
        d = float(des[tol.field])
        if not tol.accepts(f, d):
            divergences.append(
                {
                    "field": tol.field,
                    "fastpath": f,
                    "des": d,
                    "abs": abs(f - d),
                    "rel": abs(f - d) / abs(d) if d else float("inf"),
                    "tol_rel": tol.rel,
                    "tol_abs": tol.abs,
                }
            )
    return divergences
