"""Sampled differential recheck of fastpath rows.

After a sweep, a seeded sample of the cells the analytic lane priced is
re-run through the DES and compared field-by-field under the agreement
bands (:mod:`repro.fastpath.agreement`).  The DES runner is *injected*
by the caller (the sweep engine passes its own cell executor), so this
module stays free of simulator imports — the lane-independence contract
(SL016) covers the whole package, and the recheck is the one sanctioned
bridge between the lanes, crossing it through a callable rather than an
import.

Sampling is deterministic in the sweep's root seed: the same grid and
seed recheck the same cells, so CI certificates are reproducible.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.fastpath.agreement import compare_rows

__all__ = [
    "DEFAULT_RECHECK_FRACTION",
    "recheck_rows",
    "select_recheck_indices",
]

DEFAULT_RECHECK_FRACTION = 0.02


def select_recheck_indices(
    candidates: Sequence[int], fraction: float, root_seed: int
) -> list[int]:
    """Seeded sample of cell indices to re-run through the DES.

    At least one cell is always rechecked when any fastpath cell exists
    and ``fraction > 0`` — a certificate claiming model validity must
    carry at least one piece of evidence.
    """
    if not candidates or fraction <= 0.0:
        return []
    k = max(1, int(round(fraction * len(candidates))))
    k = min(k, len(candidates))
    rng = np.random.default_rng(np.random.SeedSequence([root_seed, 0x7EC4]))
    picks = rng.choice(len(candidates), size=k, replace=False)
    return sorted(int(candidates[i]) for i in picks)


def recheck_rows(
    samples: Sequence[tuple[int, dict]],
    des_runner: Callable[[int], dict],
) -> list[dict]:
    """Re-run sampled cells through the injected DES runner and compare.

    ``samples`` is ``(cell_index, fastpath_row_fields)``; ``des_runner``
    maps a cell index to the DES row's field dict.  Returns one record
    per sample: ``{"index", "divergences": [...]}`` (empty divergence
    list = the lanes agree on that cell).
    """
    records: list[dict] = []
    for index, fast_row in samples:
        des_row = des_runner(index)
        records.append(
            {"index": int(index), "divergences": compare_rows(fast_row, des_row)}
        )
    return records
