"""Oracle-certified analytic fast path for sweep cells.

For cells inside a verified envelope (single-level cells, no fault
injection, the paper's FIFO-drain controller, registered schemes) a
sweep row can be *priced* analytically — closed-form service tables
plus a two-regime queueing model — instead of *simulated*, at ~17x the
speed with sub-6% error on every system metric (docs/PERFORMANCE.md).

Lane discipline: the fast path must never be able to copy the DES's
answers, so this package may not import ``repro.sim``, ``repro.pcm`` or
``repro.schemes`` (simlint SL016).  Trust comes from the per-run
certificate (:mod:`repro.fastpath.certificate`): every row records its
lane, and a seeded sample of fastpath rows is re-run through the DES
and compared under measured agreement bands
(:mod:`repro.fastpath.agreement`).
"""

from repro.fastpath.agreement import FIELD_TOLERANCES, FieldTolerance, compare_rows
from repro.fastpath.certificate import (
    CERTIFICATE_VERSION,
    build_certificate,
    write_certificate,
)
from repro.fastpath.envelope import (
    EnvelopeDecision,
    FastpathEnvelopeError,
    classify,
)
from repro.fastpath.pricer import (
    PRICED_SCHEMES,
    model_cell,
    price_cell,
    price_write_service,
)
from repro.fastpath.recheck import (
    DEFAULT_RECHECK_FRACTION,
    recheck_rows,
    select_recheck_indices,
)

__all__ = [
    "CERTIFICATE_VERSION",
    "DEFAULT_RECHECK_FRACTION",
    "EnvelopeDecision",
    "FIELD_TOLERANCES",
    "FastpathEnvelopeError",
    "FieldTolerance",
    "PRICED_SCHEMES",
    "build_certificate",
    "classify",
    "compare_rows",
    "model_cell",
    "price_cell",
    "price_write_service",
    "recheck_rows",
    "select_recheck_indices",
    "write_certificate",
]
