"""Per-run lane certificates.

Every sweep emits a certificate: a JSON artifact recording, for each
cell, which lane produced its row and why, plus the outcome of the
sampled differential recheck.  The certificate is the audit trail that
makes the analytic lane trustworthy — a row in the results can always
be traced to either a DES execution or a fastpath pricing *plus* the
recheck evidence backing the model on this run.

Schema (``docs/ORACLE.md`` documents triage):

.. code-block:: json

    {
      "version": 1,
      "mode": "auto",
      "recheck_fraction": 0.02,
      "summary": {"cells": 48, "fastpath": 40, "des": 8,
                  "recheck_samples": 1, "recheck_divergences": 0},
      "cells": [{"index": 0, "workload": "dedup", "scheme": "dcw",
                 "seed": 20160816, "variant": "", "lane": "fastpath",
                 "source": "executed", "reasons": []}],
      "rechecks": [{"index": 0, "workload": "dedup", "scheme": "dcw",
                    "divergences": []}]
    }

No wall-clock timestamps by design (SL002): certificates from identical
runs are byte-identical, so they diff cleanly in CI artifacts.
"""

from __future__ import annotations

import json
import os
import tempfile

__all__ = [
    "CERTIFICATE_VERSION",
    "build_certificate",
    "write_certificate",
]

CERTIFICATE_VERSION = 1


def build_certificate(
    *,
    mode: str,
    recheck_fraction: float,
    cells: list[dict],
    rechecks: list[dict],
) -> dict:
    """Assemble the certificate document from per-cell lane records."""
    lanes = [c["lane"] for c in cells]
    n_div = sum(1 for r in rechecks if r["divergences"])
    return {
        "version": CERTIFICATE_VERSION,
        "mode": mode,
        "recheck_fraction": recheck_fraction,
        "summary": {
            "cells": len(cells),
            "fastpath": lanes.count("fastpath"),
            "des": lanes.count("des"),
            "recheck_samples": len(rechecks),
            "recheck_divergences": n_div,
        },
        "cells": cells,
        "rechecks": rechecks,
    }


def write_certificate(path: str, certificate: dict) -> None:
    """Atomically write the certificate JSON next to the results."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".cert.tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(certificate, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
