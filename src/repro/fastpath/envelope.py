"""Fastpath envelope: which cells the analytic lane may price.

The pricer (:mod:`repro.fastpath.pricer`) models the *paper's*
controller: FIFO drain between fixed watermarks, one outstanding read
per core, one subarray per bank, no fault injection.  Every ablation
knob that leaves that regime — write pausing, coalescing, SJF drain,
opportunistic drain, extra subarrays, memory-level parallelism, faults —
falls back to the DES.  :func:`classify` encodes the boundary as data
(a reason list), so callers can report *why* a cell routed to the DES
and tests can probe each condition independently.

The decision is conservative by design: anything not explicitly
verified against the oracle corpus is outside.  Being outside is never
an error under ``--fastpath auto`` — it just means the slow lane — and
always an error under ``--fastpath force``
(:class:`FastpathEnvelopeError`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig
from repro.fastpath.pricer import PRICED_SCHEMES

__all__ = [
    "EnvelopeDecision",
    "FastpathEnvelopeError",
    "classify",
]


@dataclass(frozen=True)
class EnvelopeDecision:
    """Outcome of envelope classification for one cell.

    ``reasons`` is empty iff ``inside`` — each entry is a short
    machine-stable tag (``"faults-enabled"``, ``"unpriced-scheme"``, ...)
    recorded in the run certificate.
    """

    inside: bool
    reasons: tuple[str, ...] = ()


class FastpathEnvelopeError(ValueError):
    """A cell was forced onto the fastpath lane outside the envelope."""

    def __init__(self, scheme: str, workload: str, reasons: tuple[str, ...]):
        self.scheme = scheme
        self.workload = workload
        self.reasons = reasons
        super().__init__(
            f"cell ({workload}, {scheme}) is outside the fastpath envelope "
            f"({', '.join(reasons)}); use --fastpath auto or off"
        )


def classify(
    config: SystemConfig, scheme: str, *, supplied_trace: bool = False
) -> EnvelopeDecision:
    """Decide whether one (config, scheme) cell is analytically priceable.

    ``supplied_trace`` marks cells running user-supplied trace files:
    the pricer itself handles any record stream, but the oracle corpus
    that certifies it only covers the synthetic generators, so supplied
    traces stay on the DES lane.
    """
    reasons: list[str] = []

    if scheme not in PRICED_SCHEMES:
        reasons.append("unpriced-scheme")
    if config.faults.enabled:
        reasons.append("faults-enabled")
    if config.trace.enabled:
        reasons.append("obs-tracing-enabled")
    if supplied_trace:
        reasons.append("supplied-trace")

    mc = config.memctrl
    if mc.write_pausing:
        reasons.append("write-pausing")
    if mc.write_coalescing:
        reasons.append("write-coalescing")
    if mc.opportunistic_drain:
        reasons.append("opportunistic-drain")
    if mc.drain_order != "fifo":
        reasons.append("drain-order-not-fifo")

    if config.organization.subarrays_per_bank != 1:
        reasons.append("subarray-parallelism")
    if config.cpu.max_outstanding_reads != 1:
        reasons.append("memory-level-parallelism")
    if config.cpu.num_cores > mc.read_queue_entries:
        reasons.append("read-queue-pressure")

    # The Algorithm-2 burst splitter needs headroom for one cell's
    # current (SET = 1, RESET = L); below that the packer itself raises.
    if config.bank_power_budget < max(1.0, config.L):
        reasons.append("budget-below-cell-cost")

    return EnvelopeDecision(inside=not reasons, reasons=tuple(reasons))
