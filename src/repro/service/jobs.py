"""Job model of the sweep service: grids, content-addressed IDs, journal.

A *job* is one tenant's experiment grid.  The submitted
:class:`GridSpec` is expanded into cells by the **same planner the
serial engine uses** (:meth:`repro.parallel.engine.SweepEngine.plan`),
so a cell's payload, cache key, and journal key are bit-identical to
what ``SweepEngine.run()`` would compute — which is what makes
cross-tenant single-flight dedup and cache sharing sound.

Identity discipline (mirrors :class:`~repro.parallel.resultcache.
ResultCache`):

* a **cell ID** is its journal content address — sha256 over canonical
  config JSON, trace key, scheme, and the code-version salt;
* a **job ID** is sha256 over the salt, the tenant, and the grid's
  canonical JSON — resubmitting the same grid is idempotent (same job),
  and any source change rolls every ID.

Durability: :class:`JobStore` appends ``submitted`` / ``done`` /
``cancelled`` markers to an fsync'd :class:`~repro.parallel.journal.
SweepJournal`.  A restarted server replays the markers, re-plans every
unfinished job, and re-queues only the cells whose completions are not
already in the shared cell journal — zero re-execution of finished
work (``docs/SERVICE.md``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.parallel.engine import FASTPATH_MODES, PlannedCell, SweepEngine
from repro.parallel.journal import SweepJournal
from repro.schemes import SCHEME_REGISTRY
from repro.service.protocol import E_BAD_GRID, ProtocolError
from repro.trace.workloads import WORKLOAD_NAMES

__all__ = [
    "GridSpec",
    "JOB_STATES",
    "Job",
    "JobStore",
    "job_id_for",
]

JOB_STATES = ("queued", "running", "done", "cancelled")

#: Admission ceiling on grid size: cells = schemes x workloads.  A grid
#: larger than this is a client error, not a queueable job.
MAX_GRID_CELLS = 4096


@dataclass(frozen=True)
class GridSpec:
    """One submitted experiment grid (the ``"grid"`` object on the wire)."""

    schemes: tuple[str, ...]
    workloads: tuple[str, ...]
    requests_per_core: int = 400
    seed: int = 20160816
    #: Analytic-lane policy for this grid; "off" keeps server results
    #: bit-identical to pre-fastpath deployments unless a tenant opts in.
    fastpath: str = "off"

    @classmethod
    def from_dict(cls, doc: object) -> "GridSpec":
        """Validate a wire-level grid object; ``bad-grid`` on anything off.

        Validation happens at admission so a typo'd scheme name is a
        structured error to the submitting client, not a crashed cell
        an hour into the queue.
        """
        if not isinstance(doc, dict):
            raise ProtocolError(
                E_BAD_GRID, f"grid must be an object, got {type(doc).__name__}"
            )
        unknown = set(doc) - {
            "schemes", "workloads", "requests_per_core", "seed", "fastpath",
        }
        if unknown:
            raise ProtocolError(
                E_BAD_GRID, f"unknown grid field(s): {sorted(unknown)}"
            )
        schemes = doc.get("schemes")
        workloads = doc.get("workloads")
        if not isinstance(schemes, (list, tuple)) or not schemes:
            raise ProtocolError(E_BAD_GRID, "grid.schemes must be a non-empty list")
        if not isinstance(workloads, (list, tuple)) or not workloads:
            raise ProtocolError(E_BAD_GRID, "grid.workloads must be a non-empty list")
        for s in schemes:
            if s not in SCHEME_REGISTRY:
                raise ProtocolError(
                    E_BAD_GRID,
                    f"unknown scheme {s!r} "
                    f"(registered: {sorted(SCHEME_REGISTRY)})",
                )
        for w in workloads:
            if w not in WORKLOAD_NAMES:
                raise ProtocolError(
                    E_BAD_GRID,
                    f"unknown workload {w!r} (known: {list(WORKLOAD_NAMES)})",
                )
        requests = doc.get("requests_per_core", 400)
        seed = doc.get("seed", 20160816)
        if not isinstance(requests, int) or isinstance(requests, bool) or requests < 1:
            raise ProtocolError(
                E_BAD_GRID, "grid.requests_per_core must be a positive integer"
            )
        if not isinstance(seed, int) or isinstance(seed, bool) or seed < 0:
            raise ProtocolError(
                E_BAD_GRID, "grid.seed must be a non-negative integer"
            )
        fastpath = doc.get("fastpath", "off")
        if fastpath not in FASTPATH_MODES:
            raise ProtocolError(
                E_BAD_GRID,
                f"grid.fastpath must be one of {list(FASTPATH_MODES)}, "
                f"got {fastpath!r}",
            )
        if len(schemes) * len(workloads) > MAX_GRID_CELLS:
            raise ProtocolError(
                E_BAD_GRID,
                f"grid has {len(schemes) * len(workloads)} cells "
                f"(limit {MAX_GRID_CELLS}); split the submission",
            )
        return cls(
            schemes=tuple(dict.fromkeys(schemes)),
            workloads=tuple(dict.fromkeys(workloads)),
            requests_per_core=requests,
            seed=seed,
            fastpath=fastpath,
        )

    def to_dict(self) -> dict:
        return {
            "schemes": list(self.schemes),
            "workloads": list(self.workloads),
            "requests_per_core": self.requests_per_core,
            "seed": self.seed,
            "fastpath": self.fastpath,
        }

    def engine(self, *, cache, cache_dir=None, workers: int = 1) -> SweepEngine:
        """The planning/execution engine for this grid.

        ``cache`` follows :class:`SweepEngine` semantics (instance /
        ``None`` for the env default / ``False`` to disable), so the
        server's shared store and the client's degraded mode both plan
        with identical keys.
        """
        return SweepEngine(
            requests_per_core=self.requests_per_core,
            root_seed=self.seed,
            workers=workers,
            cache=cache,
            cache_dir=cache_dir,
            fastpath=self.fastpath,
        )

    def plan(self, *, cache) -> list[PlannedCell]:
        return self.engine(cache=cache).plan(self.schemes, self.workloads)


def job_id_for(tenant: str, spec: GridSpec, salt: str) -> str:
    """Deterministic content-addressed job ID (code-salted like the cache)."""
    h = hashlib.sha256()
    for part in ("job:1", salt, tenant, json.dumps(spec.to_dict(), sort_keys=True)):
        h.update(part.encode())
        h.update(b"\x00")
    return "j" + h.hexdigest()[:16]


@dataclass
class Job:
    """Runtime state of one accepted grid (server side).

    ``rows``/``errors`` are keyed by the planned cell's grid index so
    the final ``rows`` list reassembles in grid order — the exact order
    a serial ``SweepEngine.run()`` would return.
    """

    job_id: str
    tenant: str
    spec: GridSpec
    planned: list[PlannedCell]
    state: str = "queued"
    rows: dict[int, dict] = field(default_factory=dict)
    errors: dict[int, dict] = field(default_factory=dict)
    cached_cells: int = 0      # served from cache/journal, no execution
    deduped_cells: int = 0     # attached to another tenant's in-flight cell
    executed_cells: int = 0    # cells this job triggered execution of
    #: asyncio.Queue sinks of active ``watch`` streams (server-managed)
    subscribers: list = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.planned)

    @property
    def done(self) -> int:
        return len(self.rows) + len(self.errors)

    @property
    def finished(self) -> bool:
        return self.state in ("done", "cancelled")

    def ordered_rows(self) -> list[dict]:
        """Successful rows in grid order (serial-run order)."""
        return [self.rows[i] for i in sorted(self.rows)]

    def ordered_errors(self) -> list[dict]:
        return [self.errors[i] for i in sorted(self.errors)]

    def snapshot(self, *, queue_position: int = 0, eta_s: float = 0.0) -> dict:
        """The ``status``/``progress`` view of this job."""
        return {
            "job": self.job_id,
            "tenant": self.tenant,
            "state": self.state,
            "total": self.total,
            "done": len(self.rows),
            "failed": len(self.errors),
            "cached": self.cached_cells,
            "deduped": self.deduped_cells,
            "executed": self.executed_cells,
            "fastpath_cells": sum(
                1 for pc in self.planned if pc.lane == "fastpath"
            ),
            "des_cells": sum(1 for pc in self.planned if pc.lane == "des"),
            "queue_position": queue_position,
            "eta_s": eta_s,
        }


class JobStore:
    """Durable job lifecycle markers on an fsync'd append-only journal.

    Keys are ``{job_id}:{event}`` with ``event`` in ``submitted`` /
    ``done`` / ``cancelled``; the :class:`SweepJournal` dedup makes
    every marker idempotent.  Cell *results* live in the shared cell
    journal + result cache, never here — this store only has to answer
    "which jobs were accepted and not yet finished?" after a restart.
    """

    def __init__(self, path: str | Path, *, fsync: bool = True) -> None:
        self.journal = SweepJournal(path, fsync=fsync)
        self._records = self.journal.load()

    def record_submitted(self, job: Job) -> None:
        self.journal.append(
            f"{job.job_id}:submitted",
            {"tenant": job.tenant, "grid": job.spec.to_dict()},
        )

    def record_done(self, job_id: str) -> None:
        self.journal.append(f"{job_id}:done", {})

    def record_cancelled(self, job_id: str) -> None:
        self.journal.append(f"{job_id}:cancelled", {})

    def pending_jobs(self) -> list[tuple[str, str, GridSpec]]:
        """``(job_id, tenant, spec)`` for accepted-but-unfinished jobs.

        Invalid persisted grids (e.g. a scheme renamed across versions)
        are skipped: the journal must never brick a restart.
        """
        records = self.journal.load()
        pending: list[tuple[str, str, GridSpec]] = []
        for key, row in records.items():
            job_id, _, event = key.rpartition(":")
            if event != "submitted":
                continue
            if f"{job_id}:done" in records or f"{job_id}:cancelled" in records:
                continue
            try:
                spec = GridSpec.from_dict(row.get("grid"))
            except ProtocolError:
                continue
            pending.append((job_id, str(row.get("tenant", "default")), spec))
        return sorted(pending)
