"""Wire protocol of the sweep service: newline-delimited JSON frames.

One frame is one JSON object on one line (``docs/SERVICE.md``).  Every
frame carries ``"v": PROTOCOL_VERSION``; requests add a ``"verb"`` and
responses either ``"ok": true`` plus verb-specific fields or
``"ok": false`` plus a structured ``"error"`` object::

    {"v": 1, "verb": "submit", "tenant": "alice", "grid": {...}}
    {"v": 1, "ok": true, "job": "j1f3c...", "cells": 8}
    {"v": 1, "ok": false,
     "error": {"code": "admission-rejected",
               "message": "tenant queue full", "retry_after_s": 1.5}}

Design rules:

* **Bounded frames** — a frame larger than :data:`MAX_FRAME_BYTES` is a
  protocol violation (``frame-too-large``); the server answers with a
  structured error and closes, because an over-long line means the
  stream can no longer be trusted to be line-synchronized.
* **Structured errors, never tracebacks** — every failure a client can
  cause maps to a stable ``code`` from :data:`ERROR_CODES`; admission
  and drain rejections carry ``retry_after_s`` so well-behaved clients
  back off instead of hammering.
* **Versioned** — a frame with the wrong ``v`` is rejected with
  ``bad-version`` rather than mis-parsed, so protocol evolution is a
  version bump, not a silent drift.

This module is pure data (encode/decode/validate); it owns no sockets,
so both the asyncio server and the synchronous client share it.
"""

from __future__ import annotations

import json

__all__ = [
    "ERROR_CODES",
    "E_ADMISSION",
    "E_BAD_FRAME",
    "E_BAD_GRID",
    "E_BAD_VERSION",
    "E_DRAINING",
    "E_FRAME_TOO_LARGE",
    "E_INTERNAL",
    "E_UNKNOWN_JOB",
    "E_UNKNOWN_VERB",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "VERBS",
    "decode_frame",
    "encode_frame",
    "error_frame",
    "ok_frame",
    "request_frame",
]

PROTOCOL_VERSION = 1

#: Hard per-frame ceiling in both directions.  Grid specs are small
#: (names + ints); anything near this size is hostile or corrupt.
MAX_FRAME_BYTES = 1 << 20

#: Verbs the server dispatches; anything else is ``unknown-verb``.
VERBS = frozenset({"submit", "status", "watch", "cancel", "drain", "ping"})

# Stable error codes (docs/SERVICE.md).  Clients switch on these, never
# on message text.
E_BAD_FRAME = "bad-frame"
E_FRAME_TOO_LARGE = "frame-too-large"
E_BAD_VERSION = "bad-version"
E_UNKNOWN_VERB = "unknown-verb"
E_BAD_GRID = "bad-grid"
E_ADMISSION = "admission-rejected"
E_DRAINING = "draining"
E_UNKNOWN_JOB = "unknown-job"
E_INTERNAL = "internal"

ERROR_CODES = frozenset(
    {
        E_BAD_FRAME,
        E_FRAME_TOO_LARGE,
        E_BAD_VERSION,
        E_UNKNOWN_VERB,
        E_BAD_GRID,
        E_ADMISSION,
        E_DRAINING,
        E_UNKNOWN_JOB,
        E_INTERNAL,
    }
)


class ProtocolError(Exception):
    """A structured, client-visible protocol failure.

    Raising one anywhere in a request handler turns into exactly one
    error frame on the wire; ``retry_after_s`` (admission / draining
    rejections) tells the client when resubmitting may succeed.
    """

    def __init__(
        self, code: str, message: str, *, retry_after_s: float | None = None
    ) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown protocol error code: {code!r}")
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.retry_after_s = retry_after_s

    def to_frame(self) -> dict:
        return error_frame(
            self.code, self.message, retry_after_s=self.retry_after_s
        )


# ----------------------------------------------------------------------
# Frame construction.
# ----------------------------------------------------------------------
def request_frame(verb: str, **fields) -> dict:
    """A versioned request frame for ``verb``."""
    return {"v": PROTOCOL_VERSION, "verb": verb, **fields}


def ok_frame(**fields) -> dict:
    """A versioned success response."""
    return {"v": PROTOCOL_VERSION, "ok": True, **fields}


def error_frame(
    code: str, message: str, *, retry_after_s: float | None = None
) -> dict:
    """A versioned structured-error response."""
    error: dict = {"code": code, "message": message}
    if retry_after_s is not None:
        error["retry_after_s"] = float(retry_after_s)
    return {"v": PROTOCOL_VERSION, "ok": False, "error": error}


# ----------------------------------------------------------------------
# Encode / decode.
# ----------------------------------------------------------------------
def encode_frame(frame: dict) -> bytes:
    """Serialize one frame to its wire line (canonical key order)."""
    line = (
        json.dumps(frame, sort_keys=True, separators=(",", ":")).encode("utf-8")
        + b"\n"
    )
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(
            E_FRAME_TOO_LARGE,
            f"encoded frame is {len(line)} bytes "
            f"(limit {MAX_FRAME_BYTES})",
        )
    return line


def decode_frame(line: bytes | str) -> dict:
    """Parse and validate one wire line into a frame dict.

    Raises :class:`ProtocolError` (``bad-frame`` / ``frame-too-large`` /
    ``bad-version``) on anything malformed; never lets a parse error
    escape raw.
    """
    if isinstance(line, str):
        line = line.encode("utf-8")
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(
            E_FRAME_TOO_LARGE,
            f"frame is {len(line)} bytes (limit {MAX_FRAME_BYTES})",
        )
    try:
        frame = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(E_BAD_FRAME, f"not a JSON line: {exc}") from exc
    if not isinstance(frame, dict):
        raise ProtocolError(
            E_BAD_FRAME, f"frame must be a JSON object, got {type(frame).__name__}"
        )
    if frame.get("v") != PROTOCOL_VERSION:
        raise ProtocolError(
            E_BAD_VERSION,
            f"protocol version {frame.get('v')!r} unsupported "
            f"(speak v{PROTOCOL_VERSION})",
        )
    return frame
