"""Multi-tenant cell scheduler: admission, DRR fairness, single-flight.

The scheduler owns the path from "job accepted" to "row delivered":

* **Admission control** — each tenant may own at most
  ``max_queued_cells`` queued cells; a submit that would exceed it is
  rejected with a structured ``admission-rejected`` error carrying
  ``retry_after_s`` (estimated from the live per-cell service rate), so
  clients back off instead of deepening an unbounded queue.
* **Deficit round robin** — each dispatch round credits every backlogged
  tenant ``quantum`` cells and drains up to its deficit, so a tenant
  submitting a 1000-cell grid cannot starve one submitting 8 cells:
  over any window both make progress within ``quantum`` of equal share.
* **Single-flight dedup** — cells are identified by their journal
  content address (config x trace x scheme x code salt).  A cell
  already queued or executing gets *waiters attached*, never a second
  execution; with the shared :class:`ResultCache` as artifact store,
  any tenant's result is every tenant's cache hit.
* **Blocking work stays off the event loop** — cell execution, cache
  writes, and fsync'd journal appends all run in executor threads /
  the supervised worker pool; the asyncio side only routes completions
  (enforced by simlint SL015).

Execution is batched: each round selects up to ``workers`` cells
(across tenants, in DRR order) and runs them through the exact same
code a serial :meth:`SweepEngine.run` uses — either inline
:func:`execute_cell_payload` (``workers=1``) or a supervised
:class:`WorkerSupervisor` pool — so rows are byte-identical to a
serial run of the same grid.
"""

from __future__ import annotations

import asyncio
import dataclasses
import threading
from collections import deque
from dataclasses import dataclass, field

from repro.obs import MetricRegistry
from repro.parallel.engine import (
    CellError,
    execute_cell_payload,
)
from repro.parallel.journal import SweepJournal
from repro.parallel.resultcache import ResultCache, code_salt
from repro.parallel.supervisor import RetryPolicy, WorkerSupervisor
from repro.service.jobs import Job
from repro.service.protocol import E_ADMISSION, ProtocolError

__all__ = [
    "CellWork",
    "Scheduler",
    "TenantState",
]


@dataclass
class CellWork:
    """One unique cell in flight, with every (job, index) waiting on it."""

    key: str                   # journal content address (single-flight key)
    cache_key: str | None
    payload: tuple             # engine worker payload (PlannedCell.payload)
    tenant: str                # owning tenant for queue accounting
    waiters: list[tuple[Job, int]] = field(default_factory=list)


@dataclass
class TenantState:
    """Per-tenant DRR queue state."""

    name: str
    queue: deque = field(default_factory=deque)
    deficit: float = 0.0


class Scheduler:
    """Fair, deduplicating dispatcher onto the supervised worker layer.

    All mutable scheduling state (tenant queues, the in-flight map, job
    bookkeeping) is touched only from the event loop; executor threads
    see immutable payloads and the thread-safe journal/cache appenders.
    """

    def __init__(
        self,
        *,
        cache: ResultCache | None,
        cell_journal: SweepJournal | None,
        workers: int = 1,
        max_queued_cells: int = 512,
        quantum: float = 1.0,
        retry: RetryPolicy | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if quantum <= 0:
            raise ValueError("quantum must be > 0")
        self.cache = cache
        self.cell_journal = cell_journal
        self.journal_rows: dict[str, dict] = (
            cell_journal.load() if cell_journal is not None else {}
        )
        self.workers = int(workers)
        self.max_queued_cells = int(max_queued_cells)
        self.quantum = float(quantum)
        self.retry = retry if retry is not None else RetryPolicy()
        self.tenants: dict[str, TenantState] = {}
        #: round-robin FIFO of backlogged tenants; a tenant rejoins at
        #: the tail after service, so small batches resume where the
        #: previous one stopped instead of restarting from tenant #1.
        self._active: deque[str] = deque()
        self.inflight: dict[str, CellWork] = {}
        self.metrics = MetricRegistry()
        self._m = self.metrics.scope("service")
        self._wake = asyncio.Event()
        self._stopping = False
        self._idle = asyncio.Event()
        self._idle.set()
        self._journal_lock = threading.Lock()
        self._ema_cell_s: float | None = None
        self._salt = cache.salt if cache is not None else code_salt()
        #: server hook fired once per job reaching a terminal state
        self.on_job_complete = None

    # ------------------------------------------------------------------
    # Admission + enqueue (called by the server's submit handler).
    # ------------------------------------------------------------------
    def resolve_planned(self, planned) -> list[tuple[object, dict | None]]:
        """Blocking phase of a submit: cache / journal lookups.

        Runs in an executor thread (file reads + fsync'd journal
        appends must not block the event loop).  Returns
        ``(planned_cell, row_or_None)`` pairs; a cache hit is also
        copied into the cell journal so a later restart resumes from
        the journal alone.
        """
        out = []
        for pc in planned:
            row = self.journal_rows.get(pc.journal_key)
            if row is None and self.cache is not None and pc.cache_key:
                row = self.cache.get(pc.cache_key)
                if row is not None:
                    self._journal_row(pc.journal_key, pc.payload, row)
            out.append((pc, row))
        return out

    def queued_cells(self, tenant: str) -> int:
        ts = self.tenants.get(tenant)
        return len(ts.queue) if ts is not None else 0

    def attach(self, job: Job, resolved, *, admit: bool = True) -> None:
        """Event-loop phase of a submit: admission check + fair enqueue.

        Raises :class:`ProtocolError` (``admission-rejected``) before
        mutating anything if the tenant's queue would overflow.
        Deduped cells (attached to another tenant's in-flight work)
        cost the submitter no queue budget — they add no execution.
        ``admit=False`` skips the check (restart recovery of jobs that
        were already accepted once).
        """
        fresh: list = []
        immediate: list = []
        for pc, row in resolved:
            if row is None:
                # A completion may have landed between the resolve
                # phase and now; the in-memory journal view is current.
                row = self.journal_rows.get(pc.journal_key)
            if row is not None:
                immediate.append((pc, row))
            else:
                fresh.append(pc)
        new_work = [
            pc for pc in fresh if pc.journal_key not in self.inflight
        ]
        ts = self.tenants.setdefault(job.tenant, TenantState(job.tenant))
        if admit and len(ts.queue) + len(new_work) > self.max_queued_cells:
            raise ProtocolError(
                E_ADMISSION,
                f"tenant {job.tenant!r} would have "
                f"{len(ts.queue) + len(new_work)} queued cells "
                f"(limit {self.max_queued_cells})",
                retry_after_s=self.eta_s(len(ts.queue)),
            )
        for pc, row in immediate:
            job.rows[pc.index] = row
            job.cached_cells += 1
            self._m.counter("cells_cached").inc(1)
        for pc in fresh:
            work = self.inflight.get(pc.journal_key)
            if work is not None:
                work.waiters.append((job, pc.index))
                job.deduped_cells += 1
                self._m.counter("cells_deduped").inc(1)
                continue
            work = CellWork(
                key=pc.journal_key,
                cache_key=pc.cache_key,
                payload=pc.payload,
                tenant=job.tenant,
                waiters=[(job, pc.index)],
            )
            self.inflight[pc.journal_key] = work
            ts.queue.append(work)
            job.executed_cells += 1
        if ts.queue and job.tenant not in self._active:
            self._active.append(job.tenant)
        self._m.counter("jobs_submitted").inc(1)
        if job.state == "queued" and job.done < job.total:
            job.state = "running"
        self._finish_if_done(job)
        if self.inflight:
            self._idle.clear()
        self._wake.set()

    def cancel_job(self, job: Job) -> int:
        """Withdraw a job's queued cells; shared cells lose one waiter.

        Cells already executing finish (their row still lands in the
        journal/cache for everyone else); returns how many queued cells
        were removed outright.
        """
        removed = 0
        for ts in self.tenants.values():
            kept: deque = deque()
            for work in ts.queue:
                work.waiters = [(j, i) for j, i in work.waiters if j is not job]
                if work.waiters:
                    kept.append(work)
                else:
                    self.inflight.pop(work.key, None)
                    removed += 1
            ts.queue = kept
        for work in self.inflight.values():
            work.waiters = [(j, i) for j, i in work.waiters if j is not job]
        return removed

    # ------------------------------------------------------------------
    # DRR selection.
    # ------------------------------------------------------------------
    def _select_batch(self, n: int) -> list[CellWork]:
        """Up to ``n`` cells in deficit-round-robin order across tenants.

        The active FIFO persists across calls: a tenant served this
        batch rejoins at the tail, so even ``n=1`` batches rotate over
        every backlogged tenant instead of restarting from the first —
        over any window each backlogged tenant's service stays within
        one ``quantum`` of its equal share.
        """
        batch: list[CellWork] = []
        while len(batch) < n and self._active:
            name = self._active.popleft()
            ts = self.tenants.get(name)
            if ts is None or not ts.queue:
                if ts is not None:
                    ts.deficit = 0.0  # classic DRR: no banked credit when idle
                continue
            ts.deficit += self.quantum
            while ts.deficit >= 1.0 and ts.queue and len(batch) < n:
                batch.append(ts.queue.popleft())
                ts.deficit -= 1.0
            if ts.queue:
                self._active.append(name)  # still backlogged: back of the line
            else:
                ts.deficit = 0.0
        return batch

    # ------------------------------------------------------------------
    # Dispatch loop.
    # ------------------------------------------------------------------
    async def run(self) -> None:
        """Dispatch batches until :meth:`stop`; blocking work in threads."""
        loop = asyncio.get_running_loop()
        while True:
            batch = self._select_batch(max(1, self.workers))
            if not batch:
                if not self.inflight:
                    self._idle.set()
                if self._stopping:
                    return
                self._wake.clear()
                await self._wake.wait()
                continue
            start = loop.time()
            results = await loop.run_in_executor(None, self._run_batch, batch)
            self._note_cell_seconds((loop.time() - start) / len(batch))
            for work, kind, outcome in results:
                self._complete(work, kind, outcome)

    def stop(self) -> None:
        """Finish queued work, then let :meth:`run` return."""
        self._stopping = True
        self._wake.set()

    async def wait_idle(self) -> None:
        """Block until no cell is queued or executing (drain barrier)."""
        await self._idle.wait()

    # ------------------------------------------------------------------
    # Batch execution (executor thread; blocking by design).
    # ------------------------------------------------------------------
    def _run_batch(self, batch: list[CellWork]) -> list[tuple]:
        """Execute a batch and persist successes; returns completions.

        Payloads are re-indexed batch-locally so mixed-job batches keep
        unique supervisor task IDs; the index never reaches the DES, so
        rows stay byte-identical to a serial run.
        """
        payloads = [(bi,) + w.payload[1:] for bi, w in enumerate(batch)]
        values: dict[int, object] = {}
        if self.workers <= 1 or len(payloads) == 1:
            for payload in payloads:
                bi, value = execute_cell_payload(payload)
                values[bi] = value
        else:
            supervisor = WorkerSupervisor(
                execute_cell_payload,
                workers=min(self.workers, len(payloads)),
                policy=self.retry,
                retry_value_signal=(
                    lambda v: "exception" if isinstance(v[1], CellError) else None
                ),
                name="service",
            )
            for report in supervisor.run((p[0], p) for p in payloads):
                if report.failure is not None:
                    payload = payloads[report.task_id]
                    values[report.task_id] = CellError(
                        workload=payload[1],
                        scheme=payload[2],
                        seed=payload[3],
                        variant=payload[4],
                        error_type=report.failure.error_type,
                        message=report.failure.message,
                        traceback_text=report.failure.traceback_text,
                        attempts=report.attempts,
                        last_signal=report.last_signal,
                    )
                else:
                    bi, value = report.value
                    values[bi] = value
        out: list[tuple] = []
        for bi, work in enumerate(batch):
            value = values[bi]
            if isinstance(value, CellError):
                out.append((work, "error", dataclasses.asdict(value)))
                continue
            row = dataclasses.asdict(value)
            if self.cache is not None and work.cache_key is not None:
                self.cache.put(
                    work.cache_key,
                    row,
                    meta={
                        "scheme": work.payload[2],
                        "workload": work.payload[1],
                        "seed": work.payload[3],
                        "variant": work.payload[4],
                        "lane": work.payload[8],
                        "salt": self._salt,
                    },
                )
            self._journal_row(work.key, work.payload, row)
            out.append((work, "row", row))
        return out

    def _journal_row(self, key: str, payload: tuple, row: dict) -> None:
        """Thread-safe append of a completed cell to the shared journal."""
        self.journal_rows[key] = row
        if self.cell_journal is None:
            return
        with self._journal_lock:
            self.cell_journal.append(
                key,
                row,
                meta={
                    "scheme": payload[2],
                    "workload": payload[1],
                    "seed": payload[3],
                    "variant": payload[4],
                    "lane": payload[8],
                    "salt": self._salt,
                },
            )

    # ------------------------------------------------------------------
    # Completion routing (event loop).
    # ------------------------------------------------------------------
    def _complete(self, work: CellWork, kind: str, outcome: dict) -> None:
        self.inflight.pop(work.key, None)
        lane = work.payload[8]
        self._m.counter(
            "cells_fastpath" if lane == "fastpath" else "cells_des"
        ).inc(1)
        if kind == "error":
            self._m.counter("cells_failed").inc(1)
        else:
            self._m.counter("cells_executed").inc(1)
        for job, index in work.waiters:
            if job.finished:
                continue
            if kind == "error":
                job.errors[index] = outcome
            else:
                job.rows[index] = outcome
            self._emit(job, "progress")
            self._finish_if_done(job)

    def _finish_if_done(self, job: Job) -> None:
        if not job.finished and job.done >= job.total:
            job.state = "done"
            self._m.counter("jobs_done").inc(1)
            self._emit(job, "done")
            if self.on_job_complete is not None:
                self.on_job_complete(job)

    def finish_job(self, job: Job) -> None:
        """Terminal transition driven by the server (cancel): notify all.

        The caller sets ``job.state`` first; this emits the final event
        to watchers and fires the completion hook exactly once.
        """
        self._m.counter("jobs_cancelled").inc(1)
        self._emit(job, "cancelled")
        if self.on_job_complete is not None:
            self.on_job_complete(job)

    def _emit(self, job: Job, event: str) -> None:
        """Push one progress event to every live watcher of ``job``."""
        payload = dict(
            job.snapshot(
                queue_position=self.queue_position(job),
                eta_s=self.eta_s(job.total - job.done),
            ),
            event=event,
            counters=self.counter_values(),
        )
        for queue in list(job.subscribers):
            try:
                queue.put_nowait(payload)
            except asyncio.QueueFull:
                job.subscribers.remove(queue)  # slow watcher: drop the stream

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def queue_position(self, job: Job) -> int:
        """Cells ahead of the job's first queued cell in its tenant queue."""
        ts = self.tenants.get(job.tenant)
        if ts is None:
            return 0
        for pos, work in enumerate(ts.queue):
            if any(j is job for j, _ in work.waiters):
                return pos
        return 0

    def _note_cell_seconds(self, cell_s: float) -> None:
        if self._ema_cell_s is None:
            self._ema_cell_s = cell_s
        else:
            self._ema_cell_s = 0.7 * self._ema_cell_s + 0.3 * cell_s

    def eta_s(self, remaining_cells: int) -> float:
        """Estimated seconds until ``remaining_cells`` more completions."""
        per_cell_s = self._ema_cell_s if self._ema_cell_s is not None else 0.5
        return round(
            per_cell_s * max(0, remaining_cells) / max(1, self.workers), 3
        )

    def counter_values(self) -> dict[str, int]:
        """Current ``repro.obs`` service counters (progress-event feed)."""
        return {
            name.split(".", 1)[1]: int(value)
            for name, value in self.metrics.to_dict().items()
            if name.startswith("service.") and isinstance(value, (int, float))
        }
