"""The asyncio sweep server: accept grids, schedule cells, stream progress.

:class:`SweepService` is the long-running front door
(``tetris-write serve``).  One instance owns:

* a shared :class:`~repro.parallel.resultcache.ResultCache` (the
  artifact store every tenant hits),
* the fsync'd **cell journal** (completed cells, engine-compatible
  content addresses) and **job journal** (submitted/done/cancelled
  markers) under ``state_dir`` — together they make a ``SIGKILL``'d
  server resumable with zero re-execution,
* the :class:`~repro.service.scheduler.Scheduler` (admission, DRR
  fairness, single-flight dedup, supervised execution).

Connection discipline (``docs/SERVICE.md``): every client-caused
failure is answered with a structured error frame; only a frame that
breaks line synchronization (over-long line) closes the connection.  A
mid-stream disconnect cancels nothing — accepted jobs keep running and
their results stay journaled for any later ``status`` call.  The server
process must never die from client input.

Blocking work (planning, cache/journal I/O, the DES itself) runs in
executor threads or the supervised worker pool; handler coroutines only
route frames (simlint SL015 enforces this for the whole package).
"""

from __future__ import annotations

import asyncio
from functools import partial
from pathlib import Path

from repro.parallel.journal import SweepJournal
from repro.parallel.resultcache import ResultCache
from repro.parallel.supervisor import RetryPolicy
from repro.service.jobs import GridSpec, Job, JobStore, job_id_for
from repro.service.protocol import (
    E_BAD_FRAME,
    E_DRAINING,
    E_FRAME_TOO_LARGE,
    E_INTERNAL,
    E_UNKNOWN_JOB,
    E_UNKNOWN_VERB,
    MAX_FRAME_BYTES,
    VERBS,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_frame,
    ok_frame,
)
from repro.service.scheduler import Scheduler

__all__ = ["SweepService"]


class SweepService:
    """One server instance: jobs, scheduler, journals, connections."""

    def __init__(
        self,
        *,
        state_dir: str | Path,
        cache: ResultCache | None = None,
        workers: int = 1,
        max_queued_cells: int = 512,
        quantum: float = 1.0,
        retry: RetryPolicy | None = None,
        fsync: bool = True,
    ) -> None:
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.cache = (
            cache if cache is not None else ResultCache(self.state_dir / "cache")
        )
        self.cell_journal = SweepJournal(
            self.state_dir / "cells.jsonl", fsync=fsync
        )
        self.store = JobStore(self.state_dir / "jobs.jsonl", fsync=fsync)
        self.scheduler = Scheduler(
            cache=self.cache,
            cell_journal=self.cell_journal,
            workers=workers,
            max_queued_cells=max_queued_cells,
            quantum=quantum,
            retry=retry,
        )
        self.scheduler.on_job_complete = self._persist_done
        self.jobs: dict[str, Job] = {}
        self.draining = False
        self.drained = asyncio.Event()
        self._dispatch_task: asyncio.Task | None = None

    @property
    def salt(self) -> str:
        return self.scheduler._salt

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the dispatcher and resume journaled in-flight jobs."""
        self._dispatch_task = asyncio.create_task(self.scheduler.run())
        await self._recover()

    async def _recover(self) -> None:
        """Re-plan every accepted-but-unfinished job from the journals.

        Cells whose completions are in the cell journal resolve without
        execution (zero re-execution resume); only genuinely unfinished
        cells re-enter the queue.  Recovery bypasses admission — these
        jobs were already accepted once.
        """
        loop = asyncio.get_running_loop()
        pending = await loop.run_in_executor(None, self.store.pending_jobs)
        for job_id, tenant, spec in pending:
            planned = await loop.run_in_executor(
                None, partial(spec.plan, cache=self.cache)
            )
            job = Job(job_id=job_id, tenant=tenant, spec=spec, planned=planned)
            resolved = await loop.run_in_executor(
                None, self.scheduler.resolve_planned, planned
            )
            self.jobs[job_id] = job
            self.scheduler.attach(job, resolved, admit=False)

    async def shutdown(self) -> None:
        """Stop dispatching after the queue drains and join the task."""
        self.scheduler.stop()
        if self._dispatch_task is not None:
            await self._dispatch_task
            self._dispatch_task = None

    async def serve_unix(self, path: str | Path) -> asyncio.AbstractServer:
        await self.start()
        return await asyncio.start_unix_server(
            self.handle_connection, path=str(path), limit=MAX_FRAME_BYTES
        )

    async def serve_tcp(self, host: str, port: int) -> asyncio.AbstractServer:
        await self.start()
        return await asyncio.start_server(
            self.handle_connection, host=host, port=port, limit=MAX_FRAME_BYTES
        )

    def _persist_done(self, job: Job) -> None:
        """Durably mark a finished job without blocking the loop.

        The marker is a restart optimization (skips re-planning), never
        a correctness requirement — cell completions are already in the
        cell journal — so fire-and-forget is sound here.
        """
        if job.state == "done":
            asyncio.get_running_loop().run_in_executor(
                None, self.store.record_done, job.job_id
            )
        if self.draining and all(j.finished for j in self.jobs.values()):
            self.drained.set()

    # ------------------------------------------------------------------
    # Connection handling.
    # ------------------------------------------------------------------
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one client: a loop of frames until EOF or a framing error.

        Per-frame failures (malformed JSON, unknown verb, rejected
        submit) answer with one structured error frame and keep the
        connection; an over-long line means line synchronization is
        lost, so the error frame is followed by a close.
        """
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(
                        writer,
                        error_frame(
                            E_FRAME_TOO_LARGE,
                            f"line exceeds {MAX_FRAME_BYTES} bytes; closing",
                        ),
                    )
                    break
                if not line:
                    break  # clean client EOF
                if not line.strip():
                    continue
                try:
                    frame = decode_frame(line)
                    reply = await self._dispatch(frame, writer)
                except ProtocolError as exc:
                    await self._send(writer, exc.to_frame())
                    if exc.code == E_FRAME_TOO_LARGE:
                        break
                    continue
                except (ConnectionError, asyncio.IncompleteReadError):
                    raise
                except Exception as exc:
                    # A handler bug must degrade to a structured error on
                    # this one connection, never a dead server.
                    await self._send(
                        writer,
                        error_frame(
                            E_INTERNAL, f"{type(exc).__name__}: {exc}"
                        ),
                    )
                    continue
                if reply is not None:
                    await self._send(writer, reply)
        except (ConnectionError, asyncio.IncompleteReadError):
            # Mid-stream disconnect: nothing to answer; accepted jobs
            # keep running and stay queryable.
            return
        except asyncio.CancelledError:
            # Server teardown cancels handlers parked in readline();
            # finishing normally here keeps the streams machinery from
            # logging the cancellation as a callback exception.
            return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                return  # peer vanished while closing: already closed

    async def _send(self, writer: asyncio.StreamWriter, frame: dict) -> None:
        writer.write(encode_frame(frame))
        await writer.drain()

    # ------------------------------------------------------------------
    # Verb dispatch.
    # ------------------------------------------------------------------
    async def _dispatch(
        self, frame: dict, writer: asyncio.StreamWriter
    ) -> dict | None:
        verb = frame.get("verb")
        if not isinstance(verb, str) or verb not in VERBS:
            raise ProtocolError(
                E_UNKNOWN_VERB,
                f"unknown verb {verb!r} (know: {sorted(VERBS)})",
            )
        if verb == "ping":
            return ok_frame(pong=True, draining=self.draining)
        if verb == "submit":
            return await self._handle_submit(frame)
        if verb == "status":
            return self._handle_status(frame)
        if verb == "cancel":
            return self._handle_cancel(frame)
        if verb == "drain":
            return self._handle_drain()
        return await self._handle_watch(frame, writer)

    # -- submit ---------------------------------------------------------
    async def _handle_submit(self, frame: dict) -> dict:
        if self.draining:
            raise ProtocolError(
                E_DRAINING,
                "server is draining; no new jobs accepted",
                retry_after_s=max(
                    1.0, self.scheduler.eta_s(len(self.scheduler.inflight))
                ),
            )
        tenant = frame.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            raise ProtocolError(E_BAD_FRAME, "tenant must be a non-empty string")
        spec = GridSpec.from_dict(frame.get("grid"))
        job_id = job_id_for(tenant, spec, self.salt)
        existing = self.jobs.get(job_id)
        if existing is not None:
            return self._job_reply(existing, resubmitted=True)
        loop = asyncio.get_running_loop()
        planned = await loop.run_in_executor(
            None, partial(spec.plan, cache=self.cache)
        )
        resolved = await loop.run_in_executor(
            None, self.scheduler.resolve_planned, planned
        )
        # A concurrent identical submit may have landed during the
        # executor phases; content-addressed IDs make this idempotent.
        existing = self.jobs.get(job_id)
        if existing is not None:
            return self._job_reply(existing, resubmitted=True)
        job = Job(job_id=job_id, tenant=tenant, spec=spec, planned=planned)
        self.scheduler.attach(job, resolved)  # may raise admission-rejected
        self.jobs[job_id] = job
        await loop.run_in_executor(None, self.store.record_submitted, job)
        return self._job_reply(job)

    def _job_reply(self, job: Job, **extra) -> dict:
        reply = ok_frame(
            **job.snapshot(
                queue_position=self.scheduler.queue_position(job),
                eta_s=self.scheduler.eta_s(job.total - job.done),
            ),
            **extra,
        )
        if job.finished:
            reply["rows"] = job.ordered_rows()
            reply["errors"] = job.ordered_errors()
        return reply

    # -- status ---------------------------------------------------------
    def _job_for(self, frame: dict) -> Job:
        job_id = frame.get("job")
        job = self.jobs.get(job_id) if isinstance(job_id, str) else None
        if job is None:
            raise ProtocolError(E_UNKNOWN_JOB, f"no such job: {job_id!r}")
        return job

    def _handle_status(self, frame: dict) -> dict:
        if frame.get("job") is not None:
            return self._job_reply(self._job_for(frame))
        return ok_frame(
            draining=self.draining,
            workers=self.scheduler.workers,
            jobs={
                job_id: job.snapshot(
                    queue_position=self.scheduler.queue_position(job),
                    eta_s=self.scheduler.eta_s(job.total - job.done),
                )
                for job_id, job in self.jobs.items()
            },
            tenants={
                name: len(ts.queue)
                for name, ts in self.scheduler.tenants.items()
            },
            counters=self.scheduler.counter_values(),
        )

    # -- cancel ---------------------------------------------------------
    def _handle_cancel(self, frame: dict) -> dict:
        job = self._job_for(frame)
        if job.finished:
            return self._job_reply(job)
        removed = self.scheduler.cancel_job(job)
        job.state = "cancelled"
        self.scheduler.finish_job(job)
        asyncio.get_running_loop().run_in_executor(
            None, self.store.record_cancelled, job.job_id
        )
        return self._job_reply(job, cancelled_cells=removed)

    # -- drain ----------------------------------------------------------
    def _handle_drain(self) -> dict:
        self.draining = True
        pending = [j for j in self.jobs.values() if not j.finished]
        if not pending:
            self.drained.set()
        return ok_frame(
            draining=True,
            jobs_pending=len(pending),
            cells_pending=len(self.scheduler.inflight),
        )

    # -- watch ----------------------------------------------------------
    async def _handle_watch(
        self, frame: dict, writer: asyncio.StreamWriter
    ) -> None:
        """Stream progress events for one job until it finishes."""
        job = self._job_for(frame)
        await self._send(
            writer,
            self._job_reply(job, event="snapshot"),
        )
        if job.finished:
            return None
        queue: asyncio.Queue = asyncio.Queue(maxsize=1024)
        job.subscribers.append(queue)
        try:
            while True:
                event = await queue.get()
                await self._send(writer, ok_frame(**event))
                if event.get("state") in ("done", "cancelled"):
                    return None
        finally:
            if queue in job.subscribers:
                job.subscribers.remove(queue)
