"""Client side of the sweep service: sync sockets + in-process fallback.

:class:`ServiceClient` speaks the NDJSON protocol over a Unix or TCP
socket with plain blocking sockets — the client is a short-lived CLI
tool, so an event loop would buy nothing.  Error frames surface as
:class:`~repro.service.protocol.ProtocolError` (same structured codes
the server raised), so callers can branch on ``exc.code`` and honor
``retry_after_s``.

Endpoint syntax (``--endpoint`` / ``REPRO_SERVICE``)::

    unix:/run/tetris-write.sock     explicit unix socket
    tcp:127.0.0.1:7733              explicit TCP
    /run/tetris-write.sock          bare path -> unix
    127.0.0.1:7733                  host:port -> tcp

**Degraded mode:** when no endpoint is configured,
:func:`run_inprocess` executes the same validated :class:`GridSpec`
directly through :class:`~repro.parallel.engine.SweepEngine` and
returns a reply shaped like a finished job — ``tetris-write submit``
works identically with or without a server, and the rows are
byte-identical either way.
"""

from __future__ import annotations

import dataclasses
import os
import socket
from typing import Iterator

from repro.service.jobs import GridSpec, job_id_for
from repro.service.protocol import (
    E_BAD_FRAME,
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frame,
    encode_frame,
    request_frame,
)

__all__ = [
    "ServiceClient",
    "endpoint_from_env",
    "parse_endpoint",
    "run_inprocess",
]

DEFAULT_TIMEOUT_S = 60.0


def endpoint_from_env() -> str | None:
    """The configured service endpoint (``REPRO_SERVICE``), or ``None``."""
    return os.environ.get("REPRO_SERVICE") or None


def parse_endpoint(spec: str) -> tuple[str, object]:
    """``("unix", path)`` or ``("tcp", (host, port))`` from an endpoint."""
    if spec.startswith("unix:"):
        return "unix", spec[len("unix:"):]
    if spec.startswith("tcp:"):
        rest = spec[len("tcp:"):]
        host, _, port = rest.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(f"malformed tcp endpoint: {spec!r}")
        return "tcp", (host, int(port))
    if spec.startswith(("/", ".")):
        return "unix", spec
    host, _, port = spec.rpartition(":")
    if host and port.isdigit():
        return "tcp", (host, int(port))
    raise ValueError(f"cannot parse endpoint: {spec!r}")


class ServiceClient:
    """One service endpoint; each request opens a short-lived connection.

    ``watch`` holds its connection open and yields event frames until
    the job reaches a terminal state.
    """

    def __init__(
        self,
        endpoint: str,
        *,
        tenant: str = "default",
        timeout_s: float = DEFAULT_TIMEOUT_S,
    ) -> None:
        self.kind, self.target = parse_endpoint(endpoint)
        self.endpoint = endpoint
        self.tenant = tenant
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    def _connect(self) -> socket.socket:
        if self.kind == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout_s)
            sock.connect(self.target)
        else:
            sock = socket.create_connection(self.target, timeout=self.timeout_s)
        return sock

    @staticmethod
    def _read_frame(fh) -> dict | None:
        """One reply frame from the stream, or ``None`` on clean EOF."""
        line = fh.readline(MAX_FRAME_BYTES + 1)
        if not line:
            return None
        if len(line) > MAX_FRAME_BYTES:
            raise ProtocolError(
                E_BAD_FRAME, "server reply exceeds the frame limit"
            )
        return decode_frame(line)

    @staticmethod
    def _checked(frame: dict | None) -> dict:
        if frame is None:
            raise ProtocolError(E_BAD_FRAME, "server closed mid-request")
        if frame.get("ok"):
            return frame
        error = frame.get("error") or {}
        raise ProtocolError(
            error.get("code", E_BAD_FRAME),
            error.get("message", "unspecified server error"),
            retry_after_s=error.get("retry_after_s"),
        )

    def request(self, frame: dict) -> dict:
        """Send one frame, return the (checked) single reply frame."""
        with self._connect() as sock, sock.makefile("rwb") as fh:
            fh.write(encode_frame(frame))
            fh.flush()
            return self._checked(self._read_frame(fh))

    # ------------------------------------------------------------------
    def ping(self) -> dict:
        return self.request(request_frame("ping"))

    def submit(self, grid: dict | GridSpec, *, tenant: str | None = None) -> dict:
        if isinstance(grid, GridSpec):
            grid = grid.to_dict()
        return self.request(
            request_frame(
                "submit", tenant=tenant or self.tenant, grid=grid
            )
        )

    def status(self, job_id: str | None = None) -> dict:
        return self.request(request_frame("status", job=job_id))

    def cancel(self, job_id: str) -> dict:
        return self.request(request_frame("cancel", job=job_id))

    def drain(self) -> dict:
        return self.request(request_frame("drain"))

    def watch(self, job_id: str) -> Iterator[dict]:
        """Yield progress frames until the job is done/cancelled or EOF."""
        with self._connect() as sock, sock.makefile("rwb") as fh:
            fh.write(encode_frame(request_frame("watch", job=job_id)))
            fh.flush()
            while True:
                frame = self._read_frame(fh)
                if frame is None:
                    return
                frame = self._checked(frame)
                yield frame
                if frame.get("state") in ("done", "cancelled"):
                    return

    def wait(self, job_id: str) -> dict:
        """Watch to completion, then return the final status (with rows)."""
        for _ in self.watch(job_id):
            pass
        return self.status(job_id)


# ----------------------------------------------------------------------
# Degraded mode: no server configured.
# ----------------------------------------------------------------------
def run_inprocess(
    grid: dict | GridSpec,
    *,
    tenant: str = "local",
    cache: object | None = None,
    cache_dir: str | None = None,
    workers: int = 1,
) -> dict:
    """Execute a grid without a server; reply shaped like a finished job.

    The grid goes through the same :class:`GridSpec` validation and the
    same engine as the service, so switching between degraded and
    served mode changes latency, never results.
    """
    spec = grid if isinstance(grid, GridSpec) else GridSpec.from_dict(grid)
    engine = spec.engine(
        cache=cache, cache_dir=cache_dir, workers=max(1, int(workers))
    )
    result = engine.run(spec.schemes, spec.workloads)
    return {
        "ok": True,
        "local": True,
        "job": job_id_for(tenant, spec, engine._salt()),
        "tenant": tenant,
        "state": "done",
        "total": result.stats.cells,
        "done": len(result.rows),
        "failed": len(result.errors),
        "cached": result.stats.cache_hits,
        "rows": [dataclasses.asdict(r) for r in result.rows],
        "errors": [dataclasses.asdict(e) for e in result.errors],
        "stats": result.stats.to_dict(),
    }
