"""``repro.service`` — the multi-tenant sweep job server (docs/SERVICE.md).

Simulation-as-a-service on top of the parallel layer: an asyncio front
door (:class:`SweepService`) accepts experiment-grid jobs from many
concurrent clients over an NDJSON socket protocol, admits and
fair-queues them per tenant (deficit round robin), dedups identical
cells across tenants into a single execution (single-flight, with the
shared :class:`~repro.parallel.resultcache.ResultCache` as artifact
store), journals everything for crash-restart resume, and streams
per-job progress.  Results are byte-identical to a serial
:meth:`~repro.parallel.engine.SweepEngine.run` of the same grid.

Layering: ``repro.service`` sits above ``repro.parallel`` /
``repro.experiments`` and below ``repro.cli`` in the ``simlint.toml``
architecture DAG; simlint SL015 bans blocking calls inside its
``async def`` bodies.
"""

from repro.service.client import (
    ServiceClient,
    endpoint_from_env,
    parse_endpoint,
    run_inprocess,
)
from repro.service.jobs import GridSpec, Job, JobStore, job_id_for
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_frame,
    ok_frame,
    request_frame,
)
from repro.service.scheduler import Scheduler
from repro.service.server import SweepService

__all__ = [
    "GridSpec",
    "Job",
    "JobStore",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Scheduler",
    "ServiceClient",
    "SweepService",
    "decode_frame",
    "encode_frame",
    "endpoint_from_env",
    "error_frame",
    "job_id_for",
    "ok_frame",
    "parse_endpoint",
    "request_frame",
    "run_inprocess",
]
