"""FR-FCFS selection policy and the optional row-buffer model.

FR-FCFS ("first-ready, first-come-first-served") prefers requests that
are *ready* — targeting an idle bank, and with a row buffer, an open row
— breaking ties by age.  The paper's variant adds the classic write-drain
twist: reads have priority, and writes are serviced in batches when the
write queue fills ("services the write requests only when the write
queue is full").

The paper's PCM timing is flat (50 ns reads, Table II), so the default
policy has no row buffer and first-ready reduces to bank-idleness; the
:class:`RowBufferModel` is provided for the row-locality ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import MemCtrlConfig
from repro.memctrl.queues import BoundedQueue
from repro.memctrl.request import MemRequest, ReqKind

__all__ = ["FRFCFSPolicy", "RowBufferModel"]


@dataclass
class RowBufferModel:
    """Optional per-bank open-row tracking.

    ``hit_ns`` / ``miss_ns`` replace the flat read latency when enabled.
    The paper's configuration does not model one (reads are flat 50 ns);
    this exists for the sensitivity bench.
    """

    lines_per_row: int = 32
    hit_ns: float = 30.0
    miss_ns: float = 60.0
    open_rows: dict[int, int] = field(default_factory=dict)

    def row_of(self, line: int) -> int:
        return line // self.lines_per_row

    def is_hit(self, bank: int, line: int) -> bool:
        return self.open_rows.get(bank) == self.row_of(line)

    def access(self, bank: int, line: int) -> float:
        hit = self.is_hit(bank, line)
        self.open_rows[bank] = self.row_of(line)
        return self.hit_ns if hit else self.miss_ns


class FRFCFSPolicy:
    """Chooses the next request for an idle bank.

    Drain-mode state machine: enter when write occupancy reaches the high
    watermark, leave when it falls to the low watermark.  While draining,
    writes win; otherwise reads win and writes go out only opportunistically
    (when the bank has no read waiting and opportunistic drain is on).
    """

    def __init__(
        self,
        config: MemCtrlConfig,
        row_buffer: RowBufferModel | None = None,
        write_predictor=None,
    ) -> None:
        """``write_predictor(req) -> ns`` enables the "sjf" drain order:
        among a bank's pending writes the shortest predicted service goes
        first.  Tetris makes the prediction exact (the analysis stage has
        already run); without a predictor the order falls back to FIFO."""
        self.config = config
        self.row_buffer = row_buffer
        self.write_predictor = write_predictor
        self.draining = False
        self.drain_entries = 0  # times drain mode was entered (stats)
        # End-of-run flush: once set, writes drain unconditionally (the
        # cores have finished; nothing is left to prioritize).
        self.force_drain = False

    # ------------------------------------------------------------------
    def update_drain_state(self, write_queue: BoundedQueue) -> None:
        if self.force_drain:
            self.draining = True
            return
        occ = write_queue.occupancy()
        if not self.draining and occ >= self.config.drain_high_watermark:
            self.draining = True
            self.drain_entries += 1
        elif self.draining and occ <= self.config.drain_low_watermark:
            self.draining = False

    def _first_ready(self, queue: BoundedQueue, bank: int) -> MemRequest | None:
        """Row-hit-first within the bank when a row buffer exists,
        otherwise plain oldest-for-bank (flat-timing degeneration)."""
        if self.row_buffer is not None:
            hit = queue.oldest_where(
                lambda r: r.bank == bank and self.row_buffer.is_hit(bank, r.line)
            )
            if hit is not None:
                return hit
        return queue.oldest_for_bank(bank)

    def _next_write(self, write_queue: BoundedQueue, bank: int) -> MemRequest | None:
        if (
            self.config.drain_order == "sjf"
            and self.write_predictor is not None
        ):
            best: MemRequest | None = None
            best_ns = 0.0
            for req in write_queue:
                if req.bank != bank:
                    continue
                ns = self.write_predictor(req)
                if best is None or ns < best_ns:
                    best, best_ns = req, ns
            return best
        return self._first_ready(write_queue, bank)

    def select(
        self,
        bank: int,
        read_queue: BoundedQueue,
        write_queue: BoundedQueue,
    ) -> MemRequest | None:
        """Pick the next request for an idle bank (or None).

        Candidate lookups are lazy: the losing queue is only scanned when
        the winning queue has no candidate for the bank.  select() runs
        after every bank completion, so skipping the dead scan is a real
        win on read-heavy phases (candidate search is O(queue)).
        """
        self.update_drain_state(write_queue)
        if self.draining:
            write = self._next_write(write_queue, bank)
            if write is not None:
                return write
            return self._first_ready(read_queue, bank)
        read = self._first_ready(read_queue, bank)
        if read is not None:
            return read
        if self.config.opportunistic_drain:
            return self._next_write(write_queue, bank)
        return None
