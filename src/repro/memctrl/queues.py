"""Bounded request queues with per-bank selection.

The controller keeps one :class:`BoundedQueue` per direction.  Selection
helpers return the *oldest* entry matching a predicate — the FCFS leg of
FR-FCFS — without removing it, so the policy can inspect candidates for
several banks before committing.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator

from repro.memctrl.request import MemRequest

__all__ = ["BoundedQueue"]


class BoundedQueue:
    """FIFO with a hard capacity (models the 32-entry R/W queues)."""

    def __init__(self, capacity: int, name: str = "queue") -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self._items: deque[MemRequest] = deque()
        # Lines with a pending write, for read forwarding (multiset:
        # the same line can be enqueued twice).
        self._line_counts: dict[int, int] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[MemRequest]:
        return iter(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._items

    def occupancy(self) -> int:
        return len(self._items)

    # ------------------------------------------------------------------
    def push(self, req: MemRequest) -> bool:
        """Append if space is available; returns False when full."""
        if self.full:
            return False
        self._items.append(req)
        self._line_counts[req.line] = self._line_counts.get(req.line, 0) + 1
        return True

    def oldest_for_bank(self, bank: int) -> MemRequest | None:
        for req in self._items:
            if req.bank == bank:
                return req
        return None

    def oldest_where(
        self, pred: Callable[[MemRequest], bool]
    ) -> MemRequest | None:
        for req in self._items:
            if pred(req):
                return req
        return None

    def remove(self, req: MemRequest) -> None:
        self._items.remove(req)
        count = self._line_counts[req.line] - 1
        if count:
            self._line_counts[req.line] = count
        else:
            del self._line_counts[req.line]

    def contains_line(self, line: int) -> bool:
        """Is a request for this line pending? (read-forwarding check)"""
        return line in self._line_counts

    def banks_pending(self) -> set[int]:
        return {req.bank for req in self._items}
