"""Event-driven memory controller binding queues, policy and banks.

The controller is deliberately agnostic of *what* a write costs: a
:class:`ServiceModel` prices each request, which is how the same
controller serves every write scheme — the Fig 11-14 experiments swap the
service model, nothing else.  Two implementations exist in
:mod:`repro.experiments.fullsystem`: a precomputed one (per-write service
times from the vectorized scheme pipeline) and a functional one (live
:class:`~repro.pcm.device.PCMDevice` with real cell contents).

Flow control: cores submit requests; a full queue returns ``False`` and
the core registers a waiter callback that fires when a slot frees —
modelling the pipeline backpressure that makes slow writes throttle
issue.  Read forwarding: a read hitting a line with a pending write is
answered from the write queue in ``forward_latency_ns``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.config import SystemConfig
from repro.memctrl.frfcfs import FRFCFSPolicy, RowBufferModel
from repro.memctrl.queues import BoundedQueue
from repro.memctrl.request import MemRequest, ReqKind
from repro.obs.runtime import tracer_for
from repro.sim.engine import Simulator
from repro.sim.stats import Histogram, LatencyStat, TimeSeries

__all__ = ["ServiceModel", "ControllerStats", "MemoryController"]


class ServiceModel(Protocol):
    """Prices requests; optionally commits write content."""

    def read_ns(self, req: MemRequest) -> float: ...

    def write_ns(self, req: MemRequest) -> float: ...


@dataclass
class ControllerStats:
    """Aggregate controller metrics for one run.

    ``warmup_requests`` implements the standard measurement methodology:
    the first N completions (cold caches, empty queues) are counted for
    conservation but excluded from the latency statistics.
    """

    warmup_requests: int = 0
    completed_reads: int = 0
    completed_writes: int = 0

    read_latency: LatencyStat = field(default_factory=lambda: LatencyStat("read"))
    write_latency: LatencyStat = field(default_factory=lambda: LatencyStat("write"))
    read_wait: LatencyStat = field(default_factory=lambda: LatencyStat("read_wait"))
    write_wait: LatencyStat = field(default_factory=lambda: LatencyStat("write_wait"))
    # Tail-latency histograms (percentiles via Histogram.percentile).
    read_hist: Histogram = field(
        default_factory=lambda: Histogram("read", bin_width=50.0, num_bins=256)
    )
    write_hist: Histogram = field(
        default_factory=lambda: Histogram("write", bin_width=200.0, num_bins=256)
    )
    forwarded_reads: int = 0
    read_stalls: int = 0
    write_stalls: int = 0
    write_pauses: int = 0
    coalesced_writes: int = 0
    subarray_reads: int = 0
    bank_busy_ns: dict[int, float] = field(default_factory=dict)

    @property
    def completed(self) -> int:
        """All completions, warmup included (conservation checks)."""
        return self.completed_reads + self.completed_writes

    def record(self, req: MemRequest) -> None:
        if req.kind is ReqKind.READ:
            self.completed_reads += 1
        else:
            self.completed_writes += 1
        if self.completed <= self.warmup_requests:
            return  # warmup: counted for conservation, excluded from stats
        if req.kind is ReqKind.READ:
            self.read_latency.add(req.latency_ns)
            self.read_wait.add(req.queue_wait_ns)
            self.read_hist.add(req.latency_ns)
        else:
            self.write_latency.add(req.latency_ns)
            self.write_wait.add(req.queue_wait_ns)
            self.write_hist.add(req.latency_ns)


class MemoryController:
    """FR-FCFS controller over ``num_banks`` independently-busy banks."""

    def __init__(
        self,
        sim: Simulator,
        config: SystemConfig,
        service: ServiceModel,
        *,
        row_buffer: RowBufferModel | None = None,
        forward_latency_ns: float = 1.0,
        enable_forwarding: bool = True,
        warmup_requests: int = 0,
    ) -> None:
        self.sim = sim
        self.config = config
        self.service = service
        mc = config.memctrl
        self.read_queue = BoundedQueue(mc.read_queue_entries, "read")
        self.write_queue = BoundedQueue(mc.write_queue_entries, "write")
        # SJF drain needs side-effect-free service prediction; models
        # that can provide it expose predict_write_ns (the precomputed
        # model does, the functional one does not).
        predictor = getattr(service, "predict_write_ns", None)
        self.policy = FRFCFSPolicy(mc, row_buffer, write_predictor=predictor)
        # Ranks multiply the independent service units: global bank id
        # = line mod (banks x ranks), matching AddressMap's decode.
        self.num_banks = (
            config.organization.num_banks * config.organization.num_ranks
        )
        self.bank_busy = [False] * self.num_banks
        # Per-bank in-flight bookkeeping for write pausing: the request
        # being serviced, its completion event, and its finish time.
        self._inflight: list[tuple[MemRequest, object, float] | None] = (
            [None] * self.num_banks
        )
        # Per-bank paused write: (request, remaining service ns).
        self._paused: list[tuple[MemRequest, float] | None] = [None] * self.num_banks
        self.stats = ControllerStats(warmup_requests=warmup_requests)
        self.forward_latency_ns = forward_latency_ns
        self.enable_forwarding = enable_forwarding
        self._read_waiters: deque[Callable[[], None]] = deque()
        self._write_waiters: deque[Callable[[], None]] = deque()
        self._kick_scheduled = False
        # Subarray read-under-write (refs [13]/[15]): one extra read port
        # per bank, usable while a write occupies a *different* subarray.
        self.subarrays = config.organization.subarrays_per_bank
        self._read_port_busy = [False] * self.num_banks
        # Optional queue-occupancy tracing (sparkline diagnostics).
        self.occupancy_trace: "TimeSeries | None" = None
        # Observability (repro.obs): None unless config.trace.enabled,
        # so untraced runs pay one `is None` test per site.
        self._obs = tracer_for(config)

    # ------------------------------------------------------------------
    # Observability emissions (all sites guard on self._obs).
    # ------------------------------------------------------------------
    def _trace_depths(self) -> None:
        obs = self._obs
        obs.counter(
            "memctrl.read_queue", float(self.read_queue.occupancy()),
            pid="memctrl", cat="queue",
        )
        obs.counter(
            "memctrl.write_queue", float(self.write_queue.occupancy()),
            pid="memctrl", cat="queue",
        )

    def _trace_complete(self, bank: int, req: MemRequest) -> None:
        obs = self._obs
        kind = "read" if req.kind is ReqKind.READ else "write"
        obs.complete(
            f"{kind} line{req.line}",
            ts_ns=req.start_ns,
            dur_ns=max(0.0, req.finish_ns - req.start_ns),
            pid="memctrl",
            tid=f"bank{bank}",
            cat="service",
            args={
                "line": req.line,
                "wait_ns": req.queue_wait_ns,
                "latency_ns": req.latency_ns,
            },
        )
        m = obs.metrics.scope("memctrl")
        m.counter(f"{kind}s.completed").inc()
        m.latency(f"{kind}s.latency_ns").add(req.latency_ns)
        m.gauge(f"bank{bank}.busy_ns").set(
            self.stats.bank_busy_ns.get(bank, 0.0)
        )

    # ------------------------------------------------------------------
    # Submission API (called by cores).
    # ------------------------------------------------------------------
    def submit(self, req: MemRequest) -> bool:
        """Try to accept a request; False means the queue is full."""
        req.enqueue_ns = self.sim.now
        if req.kind is ReqKind.READ:
            if self.enable_forwarding and self.write_queue.contains_line(req.line):
                # Serve from the write queue: no bank access needed.
                req.forwarded = True
                self.stats.forwarded_reads += 1
                if self._obs is not None:
                    self._obs.instant(
                        "read_forwarded", pid="memctrl", tid="queue",
                        cat="queue", args={"line": req.line},
                    )
                    self._obs.metrics.counter("memctrl.forwarded_reads").inc()
                self.sim.schedule(self.forward_latency_ns, self._complete_forward, req)
                return True
            if not self.read_queue.push(req):
                self.stats.read_stalls += 1
                if self._obs is not None:
                    self._obs.instant(
                        "read_stall", pid="memctrl", tid="queue", cat="queue",
                    )
                    self._obs.metrics.counter("memctrl.read_stalls").inc()
                return False
            if self.config.memctrl.write_pausing:
                self._maybe_pause(req)
        else:
            if self.config.memctrl.write_coalescing:
                pending = self.write_queue.oldest_where(
                    lambda r: r.line == req.line
                )
                if pending is not None:
                    # Absorb: the queued entry will carry the newest data
                    # (its payload index advances); this request is done.
                    pending.write_idx = req.write_idx
                    self.stats.coalesced_writes += 1
                    req.start_ns = req.finish_ns = self.sim.now
                    self.stats.record(req)
                    if req.on_done is not None:
                        req.on_done(req)
                    return True
            if not self.write_queue.push(req):
                self.stats.write_stalls += 1
                if self._obs is not None:
                    self._obs.instant(
                        "write_stall", pid="memctrl", tid="queue", cat="queue",
                    )
                    self._obs.metrics.counter("memctrl.write_stalls").inc()
                return False
            self._sample_occupancy()
        if self._obs is not None:
            self._trace_depths()
        self._schedule_kick()
        return True

    def track_write_occupancy(self) -> TimeSeries:
        """Enable write-queue occupancy tracing; returns the series."""
        self.occupancy_trace = TimeSeries("write_queue")
        return self.occupancy_trace

    def _sample_occupancy(self) -> None:
        if self.occupancy_trace is not None:
            self.occupancy_trace.sample(
                self.sim.now, self.write_queue.occupancy()
            )

    # ------------------------------------------------------------------
    # Write pausing (refs [23-24]: serve critical reads by suspending an
    # in-flight write at sub-write-unit granularity).
    # ------------------------------------------------------------------
    def _subarray_of(self, line: int) -> int:
        return (line // self.num_banks) % self.subarrays

    def _maybe_pause(self, read: MemRequest) -> None:
        bank = read.bank
        inflight = self._inflight[bank]
        if inflight is None or self._paused[bank] is not None:
            return
        req, event, finish_ns = inflight
        if req.kind is not ReqKind.WRITE:
            return
        if self.subarrays > 1 and (
            self._subarray_of(read.line) != self._subarray_of(req.line)
        ):
            return  # the read can bypass through another subarray instead
        remaining = finish_ns - self.sim.now
        if remaining <= self.config.memctrl.pause_threshold_ns:
            return  # about to finish anyway; not worth the re-ramp
        event.cancel()
        self._inflight[bank] = None
        self.bank_busy[bank] = False
        self._paused[bank] = (
            req, remaining + self.config.memctrl.pause_overhead_ns
        )
        self.stats.write_pauses += 1
        if self._obs is not None:
            self._obs.instant(
                "write_paused", pid="memctrl", tid=f"bank{bank}",
                cat="service",
                args={"line": req.line, "remaining_ns": remaining},
            )
            self._obs.metrics.counter("memctrl.write_pauses").inc()

    def _resume_paused(self, bank: int) -> bool:
        """Restart a paused write; returns True if one was resumed."""
        paused = self._paused[bank]
        if paused is None:
            return False
        req, remaining = paused
        self._paused[bank] = None
        self.bank_busy[bank] = True
        self.stats.bank_busy_ns[bank] = (
            self.stats.bank_busy_ns.get(bank, 0.0) + remaining
        )
        event = self.sim.schedule(remaining, self._complete, bank, req)
        self._inflight[bank] = (req, event, self.sim.now + remaining)
        return True

    def stall_until_read_slot(self, callback: Callable[[], None]) -> None:
        self._read_waiters.append(callback)

    def stall_until_write_slot(self, callback: Callable[[], None]) -> None:
        self._write_waiters.append(callback)

    # ------------------------------------------------------------------
    # Scheduling engine.
    # ------------------------------------------------------------------
    def _schedule_kick(self) -> None:
        """Coalesce same-timestamp kicks into one pass."""
        if not self._kick_scheduled:
            self._kick_scheduled = True
            self.sim.schedule(0.0, self._kick)

    def _kick(self) -> None:
        self._kick_scheduled = False
        for bank in range(self.num_banks):
            if self.bank_busy[bank]:
                if self.subarrays > 1:
                    self._try_read_under_write(bank)
                continue
            if self._paused[bank] is not None:
                # A paused write owns the bank: pending reads cut in line,
                # anything else waits for the resume.
                read = self.read_queue.oldest_for_bank(bank)
                if read is not None:
                    self._start_service(bank, read)
                else:
                    self._resume_paused(bank)
                continue
            req = self.policy.select(bank, self.read_queue, self.write_queue)
            if req is None:
                continue
            self._start_service(bank, req)

    def _start_service(self, bank: int, req: MemRequest) -> None:
        queue = self.read_queue if req.kind is ReqKind.READ else self.write_queue
        queue.remove(req)
        if req.kind is ReqKind.WRITE:
            self._sample_occupancy()
        if self._obs is not None:
            self._trace_depths()
        self._notify_waiters(req.kind)
        req.start_ns = self.sim.now
        if req.kind is ReqKind.READ:
            if self.policy.row_buffer is not None:
                service_ns = self.policy.row_buffer.access(bank, req.line)
            else:
                service_ns = self.service.read_ns(req)
        else:
            service_ns = self.service.write_ns(req)
        if service_ns < 0:
            raise ValueError(f"negative service time for {req}")
        self.bank_busy[bank] = True
        self.stats.bank_busy_ns[bank] = (
            self.stats.bank_busy_ns.get(bank, 0.0) + service_ns
        )
        event = self.sim.schedule(service_ns, self._complete, bank, req)
        self._inflight[bank] = (req, event, self.sim.now + service_ns)

    def _try_read_under_write(self, bank: int) -> None:
        """Serve a read through a free subarray while a write occupies
        the bank (the refs [13]/[15] intra-bank parallelism)."""
        if self._read_port_busy[bank]:
            return
        inflight = self._inflight[bank]
        if inflight is None or inflight[0].kind is not ReqKind.WRITE:
            return
        write_sub = self._subarray_of(inflight[0].line)
        read = self.read_queue.oldest_where(
            lambda r: r.bank == bank and self._subarray_of(r.line) != write_sub
        )
        if read is None:
            return
        self.read_queue.remove(read)
        self._notify_waiters(ReqKind.READ)
        read.start_ns = self.sim.now
        service_ns = self.service.read_ns(read)
        self._read_port_busy[bank] = True
        self.stats.subarray_reads += 1
        self.sim.schedule(service_ns, self._complete_read_port, bank, read)

    def _complete_read_port(self, bank: int, req: MemRequest) -> None:
        self._read_port_busy[bank] = False
        req.finish_ns = self.sim.now
        self.stats.record(req)
        if req.on_done is not None:
            req.on_done(req)
        self._schedule_kick()

    def _notify_waiters(self, kind: ReqKind) -> None:
        waiters = self._read_waiters if kind is ReqKind.READ else self._write_waiters
        if waiters:
            waiters.popleft()()

    # ------------------------------------------------------------------
    # Completion.
    # ------------------------------------------------------------------
    def _complete(self, bank: int, req: MemRequest) -> None:
        self.bank_busy[bank] = False
        self._inflight[bank] = None
        req.finish_ns = self.sim.now
        self.stats.record(req)
        if self._obs is not None:
            self._trace_complete(bank, req)
        if req.on_done is not None:
            req.on_done(req)
        self._schedule_kick()

    def _complete_forward(self, req: MemRequest) -> None:
        req.start_ns = req.enqueue_ns
        req.finish_ns = self.sim.now
        self.stats.record(req)
        if req.on_done is not None:
            req.on_done(req)

    def flush_writes(self) -> None:
        """Drain the write queue unconditionally (end-of-run)."""
        self.policy.force_drain = True
        self._schedule_kick()

    # ------------------------------------------------------------------
    @property
    def idle(self) -> bool:
        """True when no requests are queued, in flight, or paused."""
        return (
            self.read_queue.empty
            and self.write_queue.empty
            and not any(self.bank_busy)
            and not any(self._read_port_busy)
            and not any(p is not None for p in self._paused)
        )
