"""Memory controller substrate: FR-FCFS with separate read/write queues.

Matches the paper's Table II controller: 32-entry read and write queues,
read-priority scheduling, and write servicing only when the write queue
fills (drain watermarks).  With a flat PCM array (no row buffer — reads
are a constant 50 ns) FR-FCFS degenerates to oldest-first per ready bank;
an optional row-buffer model is provided for sensitivity studies.
"""

from repro.memctrl.request import MemRequest, ReqKind
from repro.memctrl.queues import BoundedQueue
from repro.memctrl.frfcfs import FRFCFSPolicy, RowBufferModel
from repro.memctrl.controller import ControllerStats, MemoryController, ServiceModel

__all__ = [
    "BoundedQueue",
    "ControllerStats",
    "FRFCFSPolicy",
    "MemRequest",
    "MemoryController",
    "ReqKind",
    "RowBufferModel",
    "ServiceModel",
]
