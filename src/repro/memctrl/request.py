"""Memory request record shared by the controller, cores and stats."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["ReqKind", "MemRequest"]


class ReqKind(enum.Enum):
    READ = "read"
    WRITE = "write"


@dataclass
class MemRequest:
    """One post-LLC request flowing through the controller.

    ``write_idx`` indexes the trace's write-payload/count tables (and the
    precomputed service-time array); -1 for reads.  Timestamps are filled
    in as the request progresses; ``on_done`` fires at completion (used
    by cores to unblock on reads).
    """

    req_id: int
    kind: ReqKind
    core: int
    line: int
    bank: int
    write_idx: int = -1
    enqueue_ns: float = -1.0
    start_ns: float = -1.0
    finish_ns: float = -1.0
    forwarded: bool = False
    on_done: Callable[["MemRequest"], Any] | None = field(default=None, repr=False)

    @property
    def queue_wait_ns(self) -> float:
        """Time spent waiting in the queue before bank service began."""
        if self.start_ns < 0 or self.enqueue_ns < 0:
            return 0.0
        return self.start_ns - self.enqueue_ns

    @property
    def latency_ns(self) -> float:
        """Total request latency (enqueue to completion)."""
        if self.finish_ns < 0 or self.enqueue_ns < 0:
            return 0.0
        return self.finish_ns - self.enqueue_ns
