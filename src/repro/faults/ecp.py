"""Graceful degradation: ECP pointer tables and line retirement.

When the program-and-verify loop (:mod:`repro.faults.model`) exhausts its
retry budget and a line still holds mismatched cells, two hardware
mechanisms absorb the damage before the write is declared lost:

* :class:`ECPTable` — Error-Correcting Pointers (Schechter et al.,
  ISCA 2010): each line carries ``entries_per_line`` pointer+replacement-
  cell pairs.  A pointer permanently substitutes one dead array cell with
  a spare cell, so writes and reads to that position succeed regardless
  of the array cell's stuck value.  Entries are allocated on first
  mismatch and never freed.
* :class:`SparePool` — when a line needs more pointers than it has, the
  whole line is *retired*: its logical address is remapped to a fresh
  physical line from a per-domain spare pool.  Remapping composes with
  Start-Gap (``repro.pcm.wear``): Start-Gap permutes logical→physical
  inside a region, and the spare pool remaps the *resulting* physical
  line, so the two never fight over an address.

When the spare pool is empty the write cannot be made durable and the
memory controller surfaces :class:`UncorrectableWriteError` — a
structured, machine-readable failure instead of silent corruption.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

__all__ = ["ECPTable", "SparePool", "UncorrectableWriteError"]

_U64 = np.uint64

# Spare physical lines live in their own address space far above any
# demand line so a remap target can never collide with a trace address.
SPARE_BASE = 1 << 62


class UncorrectableWriteError(RuntimeError):
    """A write could not be made durable by retries, ECP, or retirement.

    Attributes
    ----------
    line:
        The logical line address the demand write targeted.
    physical_line:
        The physical line the final attempt ran on.
    stuck_bits:
        Number of mismatched (stuck) cells that exceeded correction.
    context:
        Extra machine-readable detail (attempts, spares_used, ...).
    """

    def __init__(
        self, message: str, *, line: int, physical_line: int, stuck_bits: int,
        **context: Any,
    ) -> None:
        self.line = line
        self.physical_line = physical_line
        self.stuck_bits = stuck_bits
        self.context: Mapping[str, Any] = dict(context)
        detail = ", ".join(f"{k}={v!r}" for k, v in self.context.items())
        super().__init__(
            f"{message} (line={line}, physical_line={physical_line}, "
            f"stuck_bits={stuck_bits}" + (f", {detail}" if detail else "") + ")"
        )


class ECPTable:
    """Per-line error-correcting pointers (fixed capacity per line).

    The table stores, per physical line, the bit positions whose array
    cell has been substituted by a replacement cell.  Replacement cells
    are modeled as fault-free (their count per line is tiny, and ECP's
    own replacement-cell wear is second-order — see docs/FAULTS.md).
    """

    def __init__(self, entries_per_line: int) -> None:
        if entries_per_line < 0:
            raise ValueError("entries_per_line must be non-negative")
        self.entries_per_line = entries_per_line
        # physical line -> (units,) uint64 mask of substituted positions.
        self._covered: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    def covered_mask(self, pline: int, units: int) -> np.ndarray:
        """Mask of positions substituted by replacement cells."""
        mask = self._covered.get(pline)
        if mask is None:
            return np.zeros(units, dtype=_U64)
        return mask

    def entries_used(self, pline: int) -> int:
        mask = self._covered.get(pline)
        if mask is None:
            return 0
        return int(np.bitwise_count(mask).sum())

    def try_assign(self, pline: int, mismatch_mask: np.ndarray) -> bool:
        """Allocate pointers for every newly mismatched position.

        Returns ``False`` (and assigns nothing) when the union of
        existing and new entries would exceed the per-line capacity —
        the caller must then retire the line.
        """
        mismatch_mask = np.asarray(mismatch_mask, dtype=_U64)
        existing = self.covered_mask(pline, mismatch_mask.size)
        union = existing | mismatch_mask
        if int(np.bitwise_count(union).sum()) > self.entries_per_line:
            return False
        if not np.array_equal(union, existing):
            self._covered[pline] = union
        return True

    def lines_with_entries(self) -> list[int]:
        return sorted(p for p, m in self._covered.items()
                      if int(np.bitwise_count(m).sum()))


class SparePool:
    """Retirement pool: remaps worn-out physical lines to fresh spares."""

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self.spares_used = 0
        # old physical line -> replacement physical line (one hop each;
        # resolve() follows chains so a retired spare can itself retire).
        self._remap: dict[int, int] = {}

    # ------------------------------------------------------------------
    @property
    def spares_left(self) -> int:
        return self.capacity - self.spares_used

    def resolve(self, pline: int) -> int:
        """Follow the remap chain to the line's current physical home."""
        while pline in self._remap:
            pline = self._remap[pline]
        return pline

    def can_retire(self) -> bool:
        return self.spares_used < self.capacity

    def retire(self, pline: int) -> int:
        """Retire ``pline``; returns the fresh spare now backing it."""
        if not self.can_retire():
            raise RuntimeError("spare pool exhausted")
        if pline in self._remap:
            raise ValueError(f"physical line {pline} already retired")
        spare = SPARE_BASE + self.spares_used
        self.spares_used += 1
        self._remap[pline] = spare
        return spare

    @property
    def retired_lines(self) -> list[int]:
        return sorted(self._remap)
