"""Deterministic program-failure model and the verify-and-retry loop.

Real PCM programs fail two ways:

* **transiently** — a pulse lands but the cell's resistance misses its
  band (variation, drift).  Modeled as a per-bit Bernoulli failure per
  program pulse, with the rate scaled by the line's
  :class:`~repro.pcm.variation.ProcessVariation` factor (slow regions
  fail more often);
* **permanently** — endurance exhaustion.  Each cell draws a lognormal
  endurance at first touch (seeded per physical line); once its program
  count (:class:`~repro.pcm.wear.WearTracker` in cell-tracking mode)
  crosses that threshold, the cell *sticks* at the value it held and no
  pulse changes it again.

:meth:`FaultModel.program_line` runs the bounded program-and-verify
cycle the schemes' write path delegates to: apply a pass, read back,
re-schedule only the still-wrong cells as a tiny residual Tetris
schedule, repeat up to ``max_write_attempts`` passes per physical home.
On exhaustion the mismatched cells go to the ECP table; over-ECP lines
retire to the spare pool (the rewrite on the fresh spare gets its own
retry budget); an empty pool raises
:class:`~repro.faults.ecp.UncorrectableWriteError`.

Everything is counter-based deterministic: transient masks derive from
``SeedSequence([seed, 2, pline, draw_index])`` and endurance thresholds
from ``SeedSequence([seed, 1, pline])``, so a fixed seed and a fixed
access sequence reproduce bit-identical failures run-to-run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.analysis import TetrisScheduler
from repro.faults.ecp import ECPTable, SparePool, UncorrectableWriteError
from repro.obs.runtime import tracer_for
from repro.pcm.variation import ProcessVariation
from repro.pcm.wear import WearTracker

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.config import SystemConfig

__all__ = ["FaultModel", "RetryReport"]

_U64 = np.uint64
_MASK63 = (1 << 63) - 1


@dataclass(frozen=True)
class RetryReport:
    """What one write's fault handling did (consumed by the scheme layer).

    ``attempts`` counts *all* program passes including the scheme's own
    first pass; ``retry_*`` cover only the extra passes (and the full
    rewrite after a retirement), which is exactly what the scheme must
    add on top of its already-priced pristine outcome.
    """

    attempts: int
    retried_bits: int
    retry_set: int
    retry_reset: int
    retry_units: float
    degraded: bool
    retired: bool
    physical_line: int
    ecp_used: int


class FaultModel:
    """Seeded fault injection + program-and-verify for one fault domain."""

    def __init__(
        self, config: "SystemConfig", *, wear: WearTracker | None = None
    ) -> None:
        fc = config.faults
        self.config = config
        self.fc = fc
        self.unit_bits = config.data_unit_bits
        self._shifts = np.arange(self.unit_bits, dtype=_U64)
        self._lane = (
            _U64(0xFFFF_FFFF_FFFF_FFFF)
            if self.unit_bits == 64
            else _U64((1 << self.unit_bits) - 1)
        )
        self.variation = (
            ProcessVariation(
                sigma=fc.variation_sigma,
                region_lines=fc.variation_region_lines,
                seed=fc.seed,
            )
            if fc.variation_sigma > 0
            else None
        )
        # Residual schedules re-enter the Tetris packer against the same
        # bank operating point as demand writes (oversized bursts split).
        self.scheduler = TetrisScheduler(
            config.K, config.L, config.bank_power_budget, allow_split=True
        )
        self.ecp = ECPTable(fc.ecp_entries)
        self.spares = SparePool(fc.spare_lines)
        self.wear = (
            wear
            if wear is not None and wear.cell_tracking
            else WearTracker(cell_tracking=True, unit_bits=self.unit_bits)
        )
        # Permanent per-physical-line fault state.
        self._stuck: dict[int, np.ndarray] = {}       # mask of dead cells
        self._stuck_vals: dict[int, np.ndarray] = {}  # values they hold
        self._endurance: dict[int, np.ndarray] = {}   # (units, bits) f64
        self._draws: dict[int, int] = {}              # transient draw ctr
        # Aggregate counters (mirrored into sim.stats.FaultStats).
        self.writes = 0
        self.retried_writes = 0
        self.degraded_writes = 0
        self.retirements = 0
        self.uncorrectable = 0
        self.total_attempts = 0
        self.transient_failures = 0
        # Observability: None unless config.trace.enabled.
        self._obs = tracer_for(config)

    # ------------------------------------------------------------------
    # Address resolution.
    # ------------------------------------------------------------------
    def physical_of(self, line: int) -> int:
        """Current physical home of a logical line (after retirements)."""
        return self.spares.resolve(int(line))

    # ------------------------------------------------------------------
    # Seeded draws.
    # ------------------------------------------------------------------
    def _endurance_of(self, pline: int, units: int) -> np.ndarray:
        thresh = self._endurance.get(pline)
        if thresh is None:
            fc = self.fc
            rng = np.random.default_rng(
                np.random.SeedSequence([fc.seed, 1, pline & _MASK63])
            )
            # lognormal(mu, sigma) has mean exp(mu + sigma^2/2); pick mu
            # so the per-cell endurance mean is exactly endurance_mean.
            mu = float(np.log(fc.endurance_mean)) - fc.endurance_sigma**2 / 2.0
            thresh = rng.lognormal(mu, fc.endurance_sigma, size=(units, self.unit_bits))
            self._endurance[pline] = thresh
        return thresh

    def _transient_rate(self, line: int) -> float:
        rate = self.fc.transient_bit_error_rate
        if rate <= 0.0:
            return 0.0
        if self.variation is not None:
            rate *= self.variation.factor_of(int(line))
        return min(rate, 0.999999)

    def _transient_fail_mask(self, rate: float, pline: int, units: int) -> np.ndarray:
        if rate <= 0.0:
            return np.zeros(units, dtype=_U64)
        idx = self._draws.get(pline, 0)
        self._draws[pline] = idx + 1
        rng = np.random.default_rng(
            np.random.SeedSequence([self.fc.seed, 2, pline & _MASK63, idx])
        )
        bits = rng.random((units, self.unit_bits)) < rate
        return self._pack(bits)

    def _pack(self, bits: np.ndarray) -> np.ndarray:
        """(units, unit_bits) bool -> (units,) uint64 bit mask."""
        return np.bitwise_or.reduce(bits.astype(_U64) << self._shifts, axis=1)

    # ------------------------------------------------------------------
    # The verify-and-retry cycle.
    # ------------------------------------------------------------------
    def program_line(
        self, line: int, before: np.ndarray, intended: np.ndarray
    ) -> RetryReport:
        """Run one write's fault handling against the physical array.

        ``before``/``intended`` are the effective (post-correction)
        images around the scheme's committed write.  The scheme has
        already priced and counted the *first* pass; this method models
        its cell-level success, runs the retry passes, and returns the
        extra latency/energy quantities the scheme must fold into its
        outcome.  Raises :class:`UncorrectableWriteError` (with the
        stored image restored by the caller) when no mechanism can make
        the write durable.
        """
        before = np.asarray(before, dtype=_U64)
        intended = np.asarray(intended, dtype=_U64)
        units = intended.size
        line = int(line)
        pline = self.physical_of(line)
        rate = self._transient_rate(line)

        self.writes += 1
        attempts = 0            # total passes, across homes
        home_attempts = 0       # passes on the current physical home
        retry_set = 0
        retry_reset = 0
        retry_units = 0.0
        degraded = False
        retired = False

        stuck = self._stuck.get(pline)
        vals = self._stuck_vals.get(pline)
        cov = self.ecp.covered_mask(pline, units)
        hard = (stuck & ~cov) if stuck is not None else np.zeros(units, dtype=_U64)
        # What a read of the array + ECP currently returns.
        actual = (before & ~hard)
        if vals is not None:
            actual |= vals & hard

        while True:
            want = (actual ^ intended) & self._lane
            if not want.any():
                break

            if home_attempts >= self.fc.max_write_attempts:
                # Retries exhausted on this home: absorb into ECP or retire.
                if self.ecp.try_assign(pline, want):
                    degraded = True
                    self.degraded_writes += 1
                    if self._obs is not None:
                        self._obs.instant(
                            "fault.ecp_assigned", pid="faults", tid="ecp",
                            cat="faults",
                            args={"line": line, "pline": pline,
                                  "ecp_used": self.ecp.entries_used(pline)},
                        )
                        self._obs.metrics.counter("faults.ecp_degraded").inc()
                    break
                if not self.spares.can_retire():
                    self.uncorrectable += 1
                    self.total_attempts += attempts
                    if self._obs is not None:
                        self._obs.instant(
                            "fault.uncorrectable", pid="faults", tid="retire",
                            cat="faults", args={"line": line, "pline": pline},
                        )
                        self._obs.metrics.counter("faults.uncorrectable").inc()
                    raise UncorrectableWriteError(
                        "retries, ECP and spares exhausted",
                        line=line,
                        physical_line=pline,
                        stuck_bits=int(np.bitwise_count(want).sum()),
                        attempts=attempts,
                        spares_used=self.spares.spares_used,
                    )
                old_pline = pline
                pline = self.spares.retire(pline)
                retired = True
                self.retirements += 1
                if self._obs is not None:
                    self._obs.instant(
                        "fault.retired", pid="faults", tid="retire",
                        cat="faults",
                        args={"line": line, "from": old_pline, "to": pline,
                              "spares_used": self.spares.spares_used},
                    )
                    self._obs.metrics.counter("faults.retirements").inc()
                home_attempts = 0
                # A fresh spare starts fully RESET; the full rewrite runs
                # through the same priced retry machinery below.
                actual = np.zeros(units, dtype=_U64)
                continue

            attempts += 1
            home_attempts += 1
            set_mask = want & intended
            reset_mask = want & ~intended & self._lane
            n1 = np.bitwise_count(set_mask).astype(np.int64)
            n0 = np.bitwise_count(reset_mask).astype(np.int64)
            if attempts > 1:
                # Passes beyond the scheme's own are priced as residual
                # Tetris schedules and extra cell programs.
                sched = self.scheduler.schedule(n1, n0)
                retry_units += sched.service_units()
                retry_set += int(n1.sum())
                retry_reset += int(n0.sum())
                if self._obs is not None:
                    self._obs.instant(
                        "fault.retry_pass", pid="faults", tid="retry",
                        cat="faults",
                        args={"line": line, "pline": pline,
                              "attempt": attempts,
                              "bits": int(n1.sum() + n0.sum())},
                    )
                    self._obs.metrics.counter("faults.retry_passes").inc()

            # Apply the pass: ECP-substituted cells always take the new
            # value (replacement cells are fault-free); hard-stuck cells
            # never change; the rest fail per-bit at the transient rate.
            cov = self.ecp.covered_mask(pline, units)
            stuck = self._stuck.get(pline)
            hard = (stuck & ~cov) if stuck is not None else np.zeros(units, dtype=_U64)
            fail = self._transient_fail_mask(rate, pline, units) & want & ~cov & ~hard
            if fail.any():
                self.transient_failures += int(np.bitwise_count(fail).sum())
            success = want & ~hard & ~fail
            actual = (actual & ~success) | (intended & success)

            # Wear: pulses fired at array cells (substituted positions
            # pulse their replacement cell, which is not tracked).
            self.wear.record_masks(pline, set_mask & ~cov, reset_mask & ~cov)
            self._update_stuck(pline, units, actual)
            stuck = self._stuck.get(pline)
            if stuck is not None:
                vals = self._stuck_vals[pline]
                hard = stuck & ~cov
                # A cell that died holding the wrong value re-reads wrong.
                actual = (actual & ~hard) | (vals & hard)

        self.total_attempts += attempts
        if attempts > 1 or retired:
            self.retried_writes += 1
        return RetryReport(
            attempts=attempts,
            retried_bits=retry_set + retry_reset,
            retry_set=retry_set,
            retry_reset=retry_reset,
            retry_units=retry_units,
            degraded=degraded,
            retired=retired,
            physical_line=pline,
            ecp_used=self.ecp.entries_used(pline),
        )

    def _update_stuck(self, pline: int, units: int, actual: np.ndarray) -> None:
        """Kill cells whose program count crossed their endurance."""
        counts = self.wear.cell_programs(pline, units)
        if not counts.any():
            return
        thresh = self._endurance_of(pline, units)
        dead = self._pack(counts >= thresh) & self._lane
        if not dead.any():
            return
        stuck = self._stuck.get(pline)
        if stuck is None:
            stuck = np.zeros(units, dtype=_U64)
            self._stuck_vals[pline] = np.zeros(units, dtype=_U64)
        new_dead = dead & ~stuck
        if not new_dead.any():
            return
        # A dying cell sticks at the value its last pulse left behind.
        self._stuck[pline] = stuck | new_dead
        vals = self._stuck_vals[pline]
        self._stuck_vals[pline] = (vals & ~new_dead) | (actual & new_dead)

    # ------------------------------------------------------------------
    # Read-back audit.
    # ------------------------------------------------------------------
    def readback(self, line: int, stored: np.ndarray) -> np.ndarray:
        """What a read of ``line`` returns, given the committed image.

        Overlays the line's current home with its hard-stuck values; ECP
        substitution hides covered cells.  After every successful
        :meth:`program_line` this equals the committed image — the
        no-silent-corruption audit the acceptance criteria demand.
        """
        stored = np.asarray(stored, dtype=_U64)
        pline = self.physical_of(line)
        stuck = self._stuck.get(pline)
        if stuck is None:
            return stored.copy()
        cov = self.ecp.covered_mask(pline, stored.size)
        hard = stuck & ~cov
        return (stored & ~hard) | (self._stuck_vals[pline] & hard)

    def stuck_cells(self, line: int, units: int) -> int:
        """Dead array cells at the line's current home (incl. covered)."""
        stuck = self._stuck.get(self.physical_of(int(line)))
        if stuck is None:
            return 0
        return int(np.bitwise_count(stuck).sum())
