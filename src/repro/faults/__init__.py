"""Fault injection, program-and-verify, and graceful degradation.

The subsystem the write path delegates to when ``FaultConfig.enabled``:

* :class:`~repro.faults.model.FaultModel` — deterministic seeded
  transient + endurance-driven stuck-at faults and the bounded
  program-and-verify retry cycle;
* :class:`~repro.faults.ecp.ECPTable` /
  :class:`~repro.faults.ecp.SparePool` — ECP pointer absorption and
  line retirement;
* :class:`~repro.faults.ecp.UncorrectableWriteError` — the structured
  failure surfaced when no mechanism can make a write durable.

See docs/FAULTS.md for the full semantics.
"""

from repro.faults.ecp import ECPTable, SparePool, UncorrectableWriteError
from repro.faults.model import FaultModel, RetryReport

__all__ = [
    "ECPTable",
    "FaultModel",
    "RetryReport",
    "SparePool",
    "UncorrectableWriteError",
]
