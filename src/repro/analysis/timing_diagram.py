"""Chip-level timing diagrams — the reproduction of the paper's Figure 4.

Given one cache-line write (per-unit SET/RESET counts), render how each
scheme lays the write out on the time axis, in sub-write-unit resolution:

* Flip-N-Write: pairs of data units per write unit, serially;
* 2-Stage-Write: one stage-0 block, then SET pairs... (2L units per slot);
* Three-Stage-Write: half-length stage-0, then the same stage-1;
* Tetris Write: the actual Algorithm-2 schedule — write-1 bursts as long
  bars, write-0 bursts dropped into the interspaces.

The ASCII rendering marks each sub-slot a burst is active in with ``1``
(write-1) / ``0`` (write-0), one row per data unit, so the "Tetris"
shape of the schedule is visible in a terminal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SystemConfig, default_config
from repro.core.analysis import TetrisScheduler
from repro.core.schedule import TetrisSchedule

__all__ = ["scheme_timeline", "render_timing_diagram", "render_tetris_schedule"]


@dataclass(frozen=True)
class Timeline:
    """Completion times (in t_set units) of each scheme for one write."""

    conventional: float
    flip_n_write: float
    two_stage: float
    three_stage: float
    tetris: float
    tetris_schedule: TetrisSchedule


def scheme_timeline(
    n_set: np.ndarray,
    n_reset: np.ndarray,
    config: SystemConfig | None = None,
    *,
    power_budget: float | None = None,
) -> Timeline:
    """Compute every scheme's write-stage length for one cache line.

    Baselines use their worst-case closed forms (as in Fig 4); Tetris is
    scheduled for real.  Read-before-write time is excluded, as in the
    figure (its T1..T4 marks compare the write stages).  ``power_budget``
    overrides the bank budget — the paper's worked example uses per-chip
    numbers against a budget of 32.
    """
    cfg = config if config is not None else default_config()
    nm = cfg.units_per_line
    K, L = cfg.K, cfg.L
    budget = cfg.bank_power_budget if power_budget is None else power_budget
    sched = TetrisScheduler(K, L, budget).schedule(n_set, n_reset)
    return Timeline(
        conventional=float(nm),
        flip_n_write=nm / 2.0,
        two_stage=nm / K + nm / (2 * L),
        three_stage=nm / (2 * K) + nm / (2 * L),
        tetris=sched.service_units(),
        tetris_schedule=sched,
    )


def render_tetris_schedule(sched: TetrisSchedule, n_units: int) -> str:
    """ASCII occupancy grid: rows = data units, columns = sub-slots."""
    slots = max(sched.total_sub_slots, 1)
    grid = [["." for _ in range(slots)] for _ in range(n_units)]
    for op in sched.write1_queue:
        for s in range(op.slot * sched.K, (op.slot + 1) * sched.K):
            grid[op.unit][s] = "1"
    for op in sched.write0_queue:
        # '*' marks a sub-slot where the unit's own write-1 burst and its
        # write-0 burst overlap (distinct cells, both FSMs active).
        grid[op.unit][op.slot] = "*" if grid[op.unit][op.slot] == "1" else "0"

    lines = []
    header = "unit  " + "".join(
        "|" if s % sched.K == 0 else " " for s in range(slots)
    )
    lines.append(header)
    for u in range(n_units):
        lines.append(f"  u{u}  " + "".join(grid[u]))
    lines.append(
        f"      result={sched.result} write unit(s), "
        f"subresult={sched.subresult} extra sub-slot(s), "
        f"service={sched.service_units():.3f} x Tset"
    )
    return "\n".join(lines)


def render_timing_diagram(
    n_set: np.ndarray,
    n_reset: np.ndarray,
    config: SystemConfig | None = None,
    *,
    power_budget: float | None = None,
) -> str:
    """Full Figure-4-style comparison for one write."""
    cfg = config if config is not None else default_config()
    tl = scheme_timeline(n_set, n_reset, cfg, power_budget=power_budget)
    n_units = np.atleast_1d(np.asarray(n_set)).size

    scale = 4  # characters per t_set
    def bar(units: float, label: str) -> str:
        return f"{label:16s} " + "=" * max(int(round(units * scale)), 1) + (
            f" {units:.2f} x Tset"
        )

    parts = [
        "Chip-level write-stage timing (cf. paper Fig. 4; read stage excluded)",
        bar(tl.conventional, "conventional"),
        bar(tl.flip_n_write, "flip_n_write"),
        bar(tl.two_stage, "two_stage"),
        bar(tl.three_stage, "three_stage"),
        bar(tl.tetris, "tetris"),
        "",
        "Tetris schedule detail ('1' = write-1 burst, '0' = write-0 burst):",
        render_tetris_schedule(tl.tetris_schedule, n_units),
    ]
    return "\n".join(parts)
