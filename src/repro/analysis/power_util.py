"""Power-budget utilization: the paper's §III motivation, quantified.

The charge pump reserves its full budget for the duration of every write
unit; the *useful* draw is only what the programmed cells consume.  The
paper argues the state of the art wastes most of the reservation
(Flip-N-Write utilizes ≈ (9.6 x 2)/64 ≈ 30 % in its bit-count metric)
and Tetris exists to close that gap.

We compute the finer time-integrated version: per cache-line write,

    utilization = ∫ current(t) dt / (budget x service time)

with each SET cell drawing 1 unit for ``t_set`` and each RESET cell
drawing ``L`` units for ``t_reset``.  Baselines reserve their fixed
worst-case durations; Tetris reserves ``(result + subresult/K)·t_set``.
"""

from __future__ import annotations

import numpy as np

from repro.config import SystemConfig, default_config
from repro.core.batch import pack_batch

__all__ = ["power_utilization"]


def power_utilization(
    n_set: np.ndarray,
    n_reset: np.ndarray,
    scheme: str,
    config: SystemConfig | None = None,
) -> np.ndarray:
    """Per-write power-budget utilization in [0, 1].

    ``n_set`` / ``n_reset`` are (writes, units) post-inversion change
    counts.  For the cell-oblivious schemes (conventional, two_stage)
    every cell is programmed, so the useful draw uses the full unit
    width split evenly between polarities (random-data expectation).
    """
    cfg = config if config is not None else default_config()
    n_set = np.atleast_2d(np.asarray(n_set, dtype=np.float64))
    n_reset = np.atleast_2d(np.asarray(n_reset, dtype=np.float64))
    t = cfg.timings
    budget = cfg.bank_power_budget

    if scheme in ("conventional", "two_stage"):
        cells = cfg.data_unit_bits / 2.0
        useful = n_set.shape[1] * (
            cells * 1.0 * t.t_set_ns + cells * cfg.L * t.t_reset_ns
        )
        useful = np.full(n_set.shape[0], useful)
    else:
        useful = (
            n_set.sum(axis=1) * 1.0 * t.t_set_ns
            + n_reset.sum(axis=1) * cfg.L * t.t_reset_ns
        )

    if scheme == "tetris":
        packed = pack_batch(
            n_set.astype(int), n_reset.astype(int),
            K=cfg.K, L=cfg.L, power_budget=budget,
        )
        duration = packed.service_units() * t.t_set_ns
    else:
        units = {
            "conventional": float(cfg.units_per_line),
            "dcw": float(cfg.units_per_line),
            "flip_n_write": cfg.units_per_line / 2.0,
            "two_stage": cfg.units_per_line / cfg.K
            + cfg.units_per_line / (2 * cfg.L),
            "three_stage": cfg.units_per_line / (2 * cfg.K)
            + cfg.units_per_line / (2 * cfg.L),
        }[scheme]
        duration = np.full(n_set.shape[0], units * t.t_set_ns)

    reserved = budget * duration
    out = np.zeros(n_set.shape[0])
    nonzero = reserved > 0
    out[nonzero] = useful[nonzero] / reserved[nonzero]
    return np.clip(out, 0.0, 1.0)
