"""Metric helpers matching the paper's reporting conventions.

The evaluation section reports *reductions* ("65% read latency
reduction") and *improvement factors* ("2X IPC improvement", Equation 6),
always against the DCW baseline and averaged over the 8 workloads.  The
paper's averages behave like arithmetic means of the per-workload
normalized values; we provide both arithmetic and geometric means, and
use arithmetic in the benches to mirror the paper.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

__all__ = [
    "reduction_percent",
    "improvement_factor",
    "normalize_to_baseline",
    "geometric_mean",
    "arithmetic_mean",
]


def reduction_percent(value: float, baseline: float) -> float:
    """``(baseline - value) / baseline`` in percent (the Figs 11/12/14 metric)."""
    if baseline == 0:
        return 0.0
    return 100.0 * (baseline - value) / baseline


def improvement_factor(value: float, baseline: float) -> float:
    """``value / baseline`` (Equation 6's IPC improvement)."""
    if baseline == 0:
        return 0.0
    return value / baseline


def normalize_to_baseline(
    values: Mapping[str, float], baseline_key: str
) -> dict[str, float]:
    """Divide every entry by the baseline entry (Figs 11-14 y-axes)."""
    base = values[baseline_key]
    if base == 0:
        raise ZeroDivisionError(f"baseline {baseline_key!r} is zero")
    return {k: v / base for k, v in values.items()}


def arithmetic_mean(values: Iterable[float]) -> float:
    seq = list(values)
    return sum(seq) / len(seq) if seq else 0.0


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
