"""Plain-text tables and bar charts for the bench harnesses.

The benches print the same rows/series the paper's figures plot; these
helpers keep that output aligned and readable in a terminal (no plotting
dependency is available offline).
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["format_table", "ascii_bar_chart", "sparkline"]

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values, *, peak: float | None = None) -> str:
    """Render a numeric series as a unicode block sparkline.

    ``peak`` pins the scale (useful for comparing two series); defaults
    to the series maximum.
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    top = peak if peak is not None else max(vals)
    if top <= 0:
        return _SPARK_BLOCKS[0] * len(vals)
    out = []
    for v in vals:
        idx = int(min(v, top) / top * (len(_SPARK_BLOCKS) - 1) + 0.5)
        out.append(_SPARK_BLOCKS[idx])
    return "".join(out)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    float_fmt: str = "{:.3f}",
    title: str | None = None,
) -> str:
    """Fixed-width table with a header rule.

    Floats are formatted with ``float_fmt`` (NaN — e.g. a normalization
    against a zero baseline — renders as ``n/a``); everything else with
    ``str``.  Column widths adapt to content.
    """

    def cell(value: object) -> str:
        if isinstance(value, float):
            if math.isnan(value):
                return "n/a"
            return float_fmt.format(value)
        return str(value)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, v in enumerate(row):
            widths[i] = max(widths[i], len(v))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def ascii_bar_chart(
    values: Mapping[str, float],
    *,
    width: int = 50,
    title: str | None = None,
    fmt: str = "{:.3f}",
) -> str:
    """Horizontal bar chart normalized to the largest value."""
    if not values:
        return title or ""
    peak = max(values.values())
    label_w = max(len(k) for k in values)
    out = []
    if title:
        out.append(title)
    for key, val in values.items():
        bar = "#" * (int(round(width * val / peak)) if peak > 0 else 0)
        out.append(f"{key.rjust(label_w)} | {bar} {fmt.format(val)}")
    return "\n".join(out)
