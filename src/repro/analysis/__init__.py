"""Post-processing: metrics, reporting, diagrams, validation, explainers."""

from repro.analysis.bottleneck import explain_run, format_breakdown
from repro.analysis.metrics import (
    geometric_mean,
    improvement_factor,
    normalize_to_baseline,
    reduction_percent,
)
from repro.analysis.power_util import power_utilization
from repro.analysis.report import ascii_bar_chart, format_table, sparkline
from repro.analysis.timing_diagram import render_timing_diagram, scheme_timeline
from repro.analysis.validation import ValidationError, validate_system_result

__all__ = [
    "ValidationError",
    "ascii_bar_chart",
    "explain_run",
    "format_breakdown",
    "format_table",
    "geometric_mean",
    "improvement_factor",
    "normalize_to_baseline",
    "power_utilization",
    "reduction_percent",
    "render_timing_diagram",
    "scheme_timeline",
    "sparkline",
    "validate_system_result",
]
