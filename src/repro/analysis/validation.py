"""Run-level sanity validation for full-system results.

A simulation that silently drops requests or double-books a bank can
still print plausible-looking averages; these checks turn such bugs into
hard failures.  The integration tests run them on every grid result, and
users extending the simulator are encouraged to call
:func:`validate_system_result` on theirs.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.cpu.system import SystemResult
from repro.trace.record import Trace

__all__ = ["ValidationError", "validate_system_result"]


class ValidationError(AssertionError):
    """A conservation or bound invariant failed for a run."""


def validate_system_result(
    result: SystemResult, trace: Trace, config: SystemConfig
) -> None:
    """Check conservation and bound invariants of one run.

    * every trace request completed exactly once (reads + writes);
    * every core retired exactly its slice's instructions;
    * runtime covers the slowest core;
    * no bank was busy for longer than the simulated time;
    * latencies are bounded below by the raw service floors.
    """
    ctrl = result.controller
    if ctrl.completed != len(trace):
        raise ValidationError(
            f"request conservation: {ctrl.completed} completed != "
            f"{len(trace)} issued"
        )
    if ctrl.completed_reads != trace.n_reads:
        raise ValidationError(
            f"read conservation: {ctrl.completed_reads} != {trace.n_reads}"
        )
    if ctrl.completed_writes != trace.n_writes:
        raise ValidationError(
            f"write conservation: {ctrl.completed_writes} != {trace.n_writes}"
        )

    expected_instr = sum(trace.instructions_per_core().values())
    if result.total_instructions != expected_instr:
        raise ValidationError(
            f"instruction conservation: {result.total_instructions} != "
            f"{expected_instr}"
        )

    slowest = max((c.finish_ns for c in result.cores), default=0.0)
    if result.runtime_ns + 1e-6 < slowest:
        raise ValidationError("runtime does not cover the slowest core")

    # Banks cannot be busy longer than the wall clock of the run.  The
    # run extends past `runtime_ns` only by the final write-queue flush,
    # bounded by queued writes x worst-case service.
    worst_write = max(
        (float(x) for x in (config.timings.t_set_ns * config.units_per_line,)),
    )
    horizon = result.runtime_ns + config.memctrl.write_queue_entries * (
        worst_write + config.timings.t_read_ns + config.analysis_overhead_ns
    )
    for bank, busy in ctrl.bank_busy_ns.items():
        if busy > horizon + 1e-6:
            raise ValidationError(
                f"bank {bank} busy {busy:.0f} ns exceeds horizon {horizon:.0f}"
            )

    # Latency floors: a completed read cannot beat the forward latency;
    # a write cannot beat its fastest possible service.
    if ctrl.read_latency.count and ctrl.read_latency.min < 0:
        raise ValidationError("negative read latency")
    if ctrl.write_latency.count and ctrl.write_latency.min < 0:
        raise ValidationError("negative write latency")
    if result.ipc < 0 or result.ipc > 4 * len(result.cores):
        raise ValidationError(f"implausible IPC: {result.ipc}")
