"""Run explainer: where did the cycles go?

Attributes a run's wall-clock per core to compute (executing instruction
gaps), read blocking (waiting for loads), MLP-limit stalls and
write-queue backpressure, and summarizes the memory side (drain
pressure, bank utilization).  The decomposition turns "Tetris is 2.2x
faster" into "because read blocking fell from 61 % of time to 18 %" —
the causal chain of DESIGN.md §4 made visible per run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.system import SystemResult

__all__ = ["CoreBreakdown", "explain_run", "format_breakdown"]


@dataclass(frozen=True)
class CoreBreakdown:
    """Per-core time attribution (fractions of that core's runtime)."""

    core: int
    runtime_ns: float
    compute_frac: float
    read_block_frac: float
    read_slot_frac: float
    write_slot_frac: float

    @property
    def memory_bound_frac(self) -> float:
        return self.read_block_frac + self.read_slot_frac + self.write_slot_frac


def explain_run(result: SystemResult) -> list[CoreBreakdown]:
    """Decompose each core's completion time.

    Compute time is derived from the instruction count at base CPI; the
    three stall categories come from the core's accounting.  Fractions
    can sum slightly below 1 when the core idles at the very end of a
    posted write (bounded by one gap) — the residual is attributed to
    compute.
    """
    out = []
    for core_id, stats in enumerate(result.cores):
        runtime = stats.finish_ns
        if runtime <= 0:
            out.append(CoreBreakdown(core_id, 0.0, 0.0, 0.0, 0.0, 0.0))
            continue
        blocked = (
            stats.read_block_ns + stats.read_slot_stall_ns + stats.write_slot_stall_ns
        )
        compute = max(runtime - blocked, 0.0)
        out.append(
            CoreBreakdown(
                core=core_id,
                runtime_ns=runtime,
                compute_frac=compute / runtime,
                read_block_frac=stats.read_block_ns / runtime,
                read_slot_frac=stats.read_slot_stall_ns / runtime,
                write_slot_frac=stats.write_slot_stall_ns / runtime,
            )
        )
    return out


def format_breakdown(result: SystemResult) -> str:
    """Human-readable explainer for one run."""
    from repro.analysis.report import format_table

    rows = []
    for b in explain_run(result):
        rows.append([
            b.core,
            b.runtime_ns / 1e6,
            100 * b.compute_frac,
            100 * b.read_block_frac,
            100 * b.read_slot_frac,
            100 * b.write_slot_frac,
        ])
    table = format_table(
        ["core", "runtime (ms)", "compute %", "read-block %",
         "read-queue %", "write-queue %"],
        rows,
        float_fmt="{:.1f}",
        title=f"Time attribution — {result.workload} under {result.scheme}",
    )
    ctrl = result.controller
    busy = sum(ctrl.bank_busy_ns.values())
    banks = max(len(ctrl.bank_busy_ns), 1)
    table += (
        f"\nmemory side: {ctrl.read_latency.count} reads "
        f"(mean {ctrl.read_latency.mean:.0f} ns), "
        f"{ctrl.write_latency.count} writes "
        f"(mean {ctrl.write_latency.mean:.0f} ns), "
        f"bank utilization {busy / (banks * max(result.runtime_ns, 1e-9)):.1%}, "
        f"{ctrl.forwarded_reads} forwarded reads"
    )
    return table
