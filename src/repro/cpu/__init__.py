"""CPU timing model: trace-driven cores and the 4-core CMP system.

Per DESIGN.md §4 this replaces GEM5's O3 ALPHA cores with discrete-event
timing cores: a core executes the instruction gap between memory requests
at its base CPI, *blocks* on post-LLC reads (loads are on the critical
path) and *posts* writes (stalling only on write-queue backpressure).
This preserves the causal chain the paper measures — write service time
drives queue waits, queue waits drive read latency, read latency drives
IPC and running time.
"""

from repro.cpu.core import CoreStats, TraceCore
from repro.cpu.system import CMPSystem, SystemResult

__all__ = ["CMPSystem", "CoreStats", "SystemResult", "TraceCore"]
