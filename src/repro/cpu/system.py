"""The 4-core CMP: wires cores, controller and service model together.

:class:`CMPSystem` is the top of the full-system stack used by the
Fig 11-14 experiments: build it from a trace, a config and a service
model, call :meth:`run`, read the :class:`SystemResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import SystemConfig
from repro.cpu.core import CoreStats, TraceCore
from repro.memctrl.controller import ControllerStats, MemoryController, ServiceModel
from repro.memctrl.frfcfs import RowBufferModel
from repro.obs.runtime import tracer_for
from repro.obs.tracer import SimClock
from repro.sim.engine import Simulator
from repro.trace.record import OP_WRITE, Trace

__all__ = ["CMPSystem", "SystemResult"]


@dataclass
class SystemResult:
    """Everything the evaluation figures need from one run."""

    workload: str
    scheme: str
    runtime_ns: float
    total_instructions: int
    ipc: float
    per_core_ipc: list[float]
    controller: ControllerStats
    cores: list[CoreStats] = field(default_factory=list)
    events: int = 0

    @property
    def mean_read_latency_ns(self) -> float:
        return self.controller.read_latency.mean

    @property
    def mean_write_latency_ns(self) -> float:
        return self.controller.write_latency.mean


class CMPSystem:
    """Builds and runs one full-system simulation."""

    def __init__(
        self,
        trace: Trace,
        config: SystemConfig,
        service: ServiceModel,
        *,
        scheme_name: str = "unknown",
        row_buffer: RowBufferModel | None = None,
        enable_forwarding: bool = True,
        warmup_requests: int = 0,
    ) -> None:
        self.trace = trace
        self.config = config
        self.scheme_name = scheme_name
        self.sim = Simulator()
        # Observability: rebind the shared tracer onto this run's DES
        # clock so every component's events land in simulated time, and
        # hand the tracer to the engine for per-event instants.  Must
        # happen before the controller resolves its own tracer.
        self.tracer = tracer_for(config)
        if self.tracer is not None:
            if config.trace.clock == "sim":
                self.tracer.bind_clock(SimClock(self.sim))
            self.sim.tracer = self.tracer
        self.controller = MemoryController(
            self.sim,
            config,
            service,
            row_buffer=row_buffer,
            enable_forwarding=enable_forwarding,
            warmup_requests=warmup_requests,
        )
        # Global write ordinals: the key into per-write service tables.
        ops = trace.records["op"]
        write_ord = np.where(
            ops == OP_WRITE, np.cumsum(ops == OP_WRITE) - 1, -1
        ).astype(np.int64)

        self.cores: list[TraceCore] = []
        for core_id in range(config.cpu.num_cores):
            mask = trace.records["core"] == core_id
            self.cores.append(
                TraceCore(
                    self.sim,
                    core_id,
                    trace.records[mask],
                    write_ord[mask],
                    self.controller,
                    config.cpu,
                    on_finish=self._core_finished,
                )
            )

    def _core_finished(self, core: TraceCore) -> None:
        """Once every core retires, flush the residual write queue — the
        non-opportunistic drain policy would otherwise strand writes that
        never reached the high watermark."""
        if all(c.finished for c in self.cores):
            self.controller.flush_writes()

    # ------------------------------------------------------------------
    def run(self, max_events: int | None = None) -> SystemResult:
        """Run to completion (all cores done, all queues drained)."""
        for core in self.cores:
            core.start()
        self.sim.run(max_events=max_events)

        if not all(core.finished for core in self.cores):
            raise RuntimeError("simulation drained but a core never finished")

        cycle_ns = self.config.cpu.cycle_ns
        runtime = max(core.stats.finish_ns for core in self.cores)
        total_instr = sum(core.stats.instructions for core in self.cores)
        per_core_ipc = [core.stats.ipc(cycle_ns) for core in self.cores]
        # System IPC: aggregate committed instructions over the makespan.
        ipc = total_instr / (runtime / cycle_ns) if runtime > 0 else 0.0
        return SystemResult(
            workload=self.trace.workload,
            scheme=self.scheme_name,
            runtime_ns=runtime,
            total_instructions=total_instr,
            ipc=ipc,
            per_core_ipc=per_core_ipc,
            controller=self.controller.stats,
            cores=[core.stats for core in self.cores],
            events=self.sim.events_fired,
        )
