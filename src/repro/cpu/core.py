"""Trace-driven timing core.

State machine per request record::

    EXECUTING --(gap * CPI cycles)--> ISSUE
    ISSUE(read):  submit; queue full -> STALL until slot; else BLOCK
                  until the controller's completion callback
    ISSUE(write): submit; queue full -> STALL until slot; else continue
    last record done -> FINISHED (records finish_ns)

Stall time is accounted separately for read-block and queue-backpressure
so the experiments can attribute slowdowns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.config import CPUConfig
from repro.memctrl.controller import MemoryController
from repro.memctrl.request import MemRequest, ReqKind
from repro.sim.engine import Simulator
from repro.trace.record import OP_WRITE

__all__ = ["CoreStats", "TraceCore"]


@dataclass
class CoreStats:
    """Per-core accounting for IPC / running-time metrics."""

    instructions: int = 0
    reads: int = 0
    writes: int = 0
    read_block_ns: float = 0.0
    read_slot_stall_ns: float = 0.0
    write_slot_stall_ns: float = 0.0
    finish_ns: float = -1.0

    def ipc(self, cycle_ns: float) -> float:
        """Committed IPC over the core's own completion time."""
        if self.finish_ns <= 0:
            return 0.0
        cycles = self.finish_ns / cycle_ns
        return self.instructions / cycles if cycles else 0.0


class TraceCore:
    """Replays one core's slice of a memory trace."""

    def __init__(
        self,
        sim: Simulator,
        core_id: int,
        records: np.ndarray,
        write_indices: np.ndarray,
        controller: MemoryController,
        cpu: CPUConfig,
        on_finish: Callable[["TraceCore"], None] | None = None,
    ) -> None:
        """``records`` is this core's sub-array of the trace;
        ``write_indices[i]`` is the *global* write ordinal of record ``i``
        (-1 for reads) — the key into precomputed service/count tables."""
        if len(records) != len(write_indices):
            raise ValueError("records and write_indices must align")
        self.sim = sim
        self.core_id = core_id
        self.records = records
        self.write_indices = write_indices
        self.controller = controller
        self.cpu = cpu
        self.on_finish = on_finish
        self.stats = CoreStats()
        self._pc = 0          # index of the next record
        self._req_seq = 0
        self._stall_started = -1.0
        # Memory-level parallelism state: reads in flight, and whether
        # the front end is blocked at the outstanding-read limit.
        self._outstanding = 0
        self._limit_block_start = -1.0
        self._all_issued = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first gap; no-op for an empty trace slice."""
        if len(self.records) == 0:
            self.stats.finish_ns = self.sim.now
            if self.on_finish:
                self.on_finish(self)
            return
        self._execute_gap()

    @property
    def finished(self) -> bool:
        return self.stats.finish_ns >= 0

    # ------------------------------------------------------------------
    def _execute_gap(self) -> None:
        gap = int(self.records["gap"][self._pc])
        delay = gap * self.cpu.base_cpi * self.cpu.cycle_ns
        self.sim.schedule(delay, self._issue)

    def _issue(self) -> None:
        rec = self.records[self._pc]
        self.stats.instructions += int(rec["gap"])
        kind = ReqKind.WRITE if rec["op"] == OP_WRITE else ReqKind.READ
        self._req_seq += 1
        req = MemRequest(
            req_id=(self.core_id << 32) | self._req_seq,
            kind=kind,
            core=self.core_id,
            line=int(rec["line"]),
            bank=int(rec["line"]) % self.controller.num_banks,
            write_idx=int(self.write_indices[self._pc]),
        )
        if kind is ReqKind.READ:
            req.on_done = self._read_done
            if self.controller.submit(req):
                self._read_accepted()
            else:
                self._stall_started = self.sim.now
                self.controller.stall_until_read_slot(lambda: self._retry(req))
        else:
            if self.controller.submit(req):
                self.stats.writes += 1
                self._advance()
            else:
                self._stall_started = self.sim.now
                self.controller.stall_until_write_slot(lambda: self._retry(req))

    def _read_accepted(self) -> None:
        """A read entered the memory system; keep executing if the MLP
        window has room, otherwise block until a completion frees it."""
        self._outstanding += 1
        if self._outstanding < self.cpu.max_outstanding_reads:
            self._advance()
        else:
            self._limit_block_start = self.sim.now

    def _retry(self, req: MemRequest) -> None:
        """A queue slot freed; account the stall and resubmit."""
        stalled = self.sim.now - self._stall_started
        if req.kind is ReqKind.READ:
            self.stats.read_slot_stall_ns += stalled
        else:
            self.stats.write_slot_stall_ns += stalled
        self._stall_started = -1.0
        if not self.controller.submit(req):
            # Raced with another waiter; queue again.
            self._stall_started = self.sim.now
            if req.kind is ReqKind.READ:
                self.controller.stall_until_read_slot(lambda: self._retry(req))
            else:
                self.controller.stall_until_write_slot(lambda: self._retry(req))
            return
        if req.kind is ReqKind.WRITE:
            self.stats.writes += 1
            self._advance()
        else:
            self._read_accepted()

    def _read_done(self, req: MemRequest) -> None:
        self.stats.reads += 1
        self._outstanding -= 1
        if self._limit_block_start >= 0:
            self.stats.read_block_ns += self.sim.now - self._limit_block_start
            self._limit_block_start = -1.0
            self._advance()
        elif self._all_issued and self._outstanding == 0:
            self._finish()

    def _advance(self) -> None:
        self._pc += 1
        if self._pc >= len(self.records):
            self._all_issued = True
            if self._outstanding == 0:
                self._finish()
            return
        self._execute_gap()

    def _finish(self) -> None:
        self.stats.finish_ns = self.sim.now
        if self.on_finish:
            self.on_finish(self)
