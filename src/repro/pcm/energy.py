"""Per-bit write energy model built on the two PCM asymmetries.

Energy is charged per programmed cell as *current x time* in the paper's
normalized units (SET current = 1):

* a SET cell draws 1 SET unit for ``t_set`` ns   -> ``1 * 430 = 430``
* a RESET cell draws ``L`` SET units for ``t_reset`` ns -> ``2 * 53 = 106``

so a SET is roughly 4x as energetic as a RESET at the paper's operating
point — but RESETs draw twice the *instantaneous* current, which is the
constraint that matters for parallelism.  The ``joules_per_unit`` scale
converts the normalized figure to physical energy when the pump's V/I
operating point is known; all comparisons in the benches use the
normalized figure, as Table I only makes relative claims.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["EnergyModel"]


@dataclass(frozen=True)
class EnergyModel:
    """Energy bookkeeping for reads and writes.

    Attributes
    ----------
    t_set_ns / t_reset_ns / reset_current_ratio:
        The device operating point (defaults: paper Table II).
    read_energy_per_line:
        Cost of one array read in the same normalized units.  Reads use
        low-voltage sensing, far below a single RESET; the exact figure
        is not in the paper, so we use a small constant and expose it as
        a knob (it only shifts all read-before-write schemes equally).
    """

    t_set_ns: float = 430.0
    t_reset_ns: float = 53.0
    reset_current_ratio: float = 2.0
    read_energy_per_line: float = 10.0

    @property
    def e_set(self) -> float:
        """Normalized energy of programming one cell to '1'."""
        return 1.0 * self.t_set_ns

    @property
    def e_reset(self) -> float:
        """Normalized energy of programming one cell to '0'."""
        return self.reset_current_ratio * self.t_reset_ns

    def write_energy(self, n_set_bits, n_reset_bits):
        """Energy of programming the given cell counts (scalar or array)."""
        return (
            np.asarray(n_set_bits, dtype=np.float64) * self.e_set
            + np.asarray(n_reset_bits, dtype=np.float64) * self.e_reset
        )

    def total(self, n_set_bits, n_reset_bits, n_reads: int = 0) -> float:
        """Aggregate energy for a request mix."""
        write = float(np.asarray(self.write_energy(n_set_bits, n_reset_bits)).sum())
        return write + n_reads * self.read_energy_per_line
