"""Bit-level write driver model (paper Fig. 9).

The redesigned driver gates every cell program with two signals:

* **PROG enable** — produced by XOR-ing the old data (from the read
  buffer) with the new data: only *different* cells may be programmed.
* **SET/RESET enable** — produced by the FSMs: during a write-1 burst
  only SET-direction programs fire; during a write-0 burst only
  RESET-direction programs fire.

A cell is programmed iff both signals are active — this is the AND gate
of Fig. 9.  The model operates on uint64 lanes so a whole data unit is
one ufunc evaluation; it returns the programmed masks so callers can
verify cell counts and charge energy/endurance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DriverCommand", "WriteDriver"]

_U64 = np.uint64


@dataclass(frozen=True)
class DriverCommand:
    """One burst handed to the driver by an FSM.

    ``direction`` is ``"set"`` (write-1 burst from FSM1), ``"reset"``
    (write-0 burst from FSM0) or ``"both"`` (legacy single-phase write
    used by the conventional/DCW paths).
    """

    unit: int
    direction: str

    def __post_init__(self) -> None:
        if self.direction not in ("set", "reset", "both"):
            raise ValueError(f"bad direction: {self.direction}")


class WriteDriver:
    """Functional driver: applies gated programs to stored cell words."""

    @staticmethod
    def prog_enable(old: np.ndarray | int, new: np.ndarray | int) -> np.ndarray:
        """Fig. 9's XOR: which cells differ and may be programmed."""
        return np.asarray(old, dtype=_U64) ^ np.asarray(new, dtype=_U64)

    def program(
        self,
        old: np.ndarray | int,
        new: np.ndarray | int,
        direction: str = "both",
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Apply one gated program pass.

        Returns ``(result, set_mask, reset_mask)``: the cell word after
        the pass and the masks of cells actually programmed in each
        direction.  With ``direction="set"`` only 0->1 programs fire (the
        1->0 differences remain for a later write-0 burst), and vice
        versa.
        """
        old_arr = np.atleast_1d(np.asarray(old, dtype=_U64))
        new_arr = np.atleast_1d(np.asarray(new, dtype=_U64))
        enable = old_arr ^ new_arr
        set_mask = enable & new_arr          # cells going 0 -> 1
        reset_mask = enable & ~new_arr       # cells going 1 -> 0
        if direction == "set":
            reset_mask = np.zeros_like(old_arr)
            result = old_arr | set_mask
        elif direction == "reset":
            set_mask = np.zeros_like(old_arr)
            result = old_arr & ~reset_mask
        else:
            result = new_arr.copy()
        return result, set_mask, reset_mask
