"""Bit-level write driver model (paper Fig. 9).

The redesigned driver gates every cell program with two signals:

* **PROG enable** — produced by XOR-ing the old data (from the read
  buffer) with the new data: only *different* cells may be programmed.
* **SET/RESET enable** — produced by the FSMs: during a write-1 burst
  only SET-direction programs fire; during a write-0 burst only
  RESET-direction programs fire.

A cell is programmed iff both signals are active — this is the AND gate
of Fig. 9.  The model operates on uint64 lanes so a whole data unit is
one ufunc evaluation; it returns the programmed masks so callers can
verify cell counts and charge energy/endurance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["DriverCommand", "ProgramResult", "WriteDriver"]

_U64 = np.uint64


@dataclass(frozen=True)
class DriverCommand:
    """One burst handed to the driver by an FSM.

    ``direction`` is ``"set"`` (write-1 burst from FSM1), ``"reset"``
    (write-0 burst from FSM0) or ``"both"`` (legacy single-phase write
    used by the conventional/DCW paths).
    """

    unit: int
    direction: str

    def __post_init__(self) -> None:
        if self.direction not in ("set", "reset", "both"):
            raise ValueError(f"bad direction: {self.direction}")


@dataclass(frozen=True)
class ProgramResult:
    """Outcome of a bounded program-and-verify cycle.

    ``residual`` is the mask of cells that still disagree with the target
    after the final pass (all-zero on success); callers must escalate a
    nonzero residual instead of treating the write as committed.
    """

    result: np.ndarray
    set_mask: np.ndarray
    reset_mask: np.ndarray
    attempts: int
    residual: np.ndarray

    @property
    def verified(self) -> bool:
        return not bool(self.residual.any())


class WriteDriver:
    """Functional driver: applies gated programs to stored cell words."""

    def __init__(self, tracer=None) -> None:
        # Optional repro.obs.Tracer: program_verified marks each retry
        # pass as an instant so failed-pulse storms are visible in the
        # timeline next to the FSM lanes.
        self.tracer = tracer

    @staticmethod
    def prog_enable(old: np.ndarray | int, new: np.ndarray | int) -> np.ndarray:
        """Fig. 9's XOR: which cells differ and may be programmed."""
        return np.asarray(old, dtype=_U64) ^ np.asarray(new, dtype=_U64)

    def program(
        self,
        old: np.ndarray | int,
        new: np.ndarray | int,
        direction: str = "both",
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Apply one gated program pass.

        Returns ``(result, set_mask, reset_mask)``: the cell word after
        the pass and the masks of cells actually programmed in each
        direction.  With ``direction="set"`` only 0->1 programs fire (the
        1->0 differences remain for a later write-0 burst), and vice
        versa.
        """
        old_arr = np.atleast_1d(np.asarray(old, dtype=_U64))
        new_arr = np.atleast_1d(np.asarray(new, dtype=_U64))
        enable = old_arr ^ new_arr
        set_mask = enable & new_arr          # cells going 0 -> 1
        reset_mask = enable & ~new_arr       # cells going 1 -> 0
        if direction == "set":
            reset_mask = np.zeros_like(old_arr)
            result = old_arr | set_mask
        elif direction == "reset":
            set_mask = np.zeros_like(old_arr)
            result = old_arr & ~reset_mask
        else:
            result = new_arr.copy()
        return result, set_mask, reset_mask

    def program_verified(
        self,
        old: np.ndarray | int,
        new: np.ndarray | int,
        direction: str = "both",
        *,
        injector: Callable[[int, np.ndarray], np.ndarray] | None = None,
        max_attempts: int = 3,
    ) -> ProgramResult:
        """Bounded program-and-verify cycle over :meth:`program`.

        Each pass programs the residual differences, then reads the cells
        back and compares against the target; bits that failed to latch
        (per ``injector``) are retried on the next pass.  ``injector``
        maps ``(attempt_index, attempted_mask) -> fail_mask`` (a subset of
        the attempted cells that did *not* latch this pass); ``None``
        models a perfect array, which verifies on the first pass.

        The cycle is bounded by ``max_attempts``; cells still wrong after
        the last pass are reported in :attr:`ProgramResult.residual`
        rather than silently absorbed.  Masks in the result accumulate
        cells that actually latched across all passes.
        """
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        cur = np.atleast_1d(np.asarray(old, dtype=_U64)).copy()
        set_total = np.zeros_like(cur)
        reset_total = np.zeros_like(cur)
        attempts = 0
        residual = np.zeros_like(cur)
        for attempt in range(max_attempts):
            result, set_mask, reset_mask = self.program(cur, new, direction)
            attempted = set_mask | reset_mask
            attempts += 1
            if injector is not None:
                fail = np.asarray(injector(attempt, attempted), dtype=_U64)
                fail &= attempted
            else:
                fail = np.zeros_like(cur)
            # Read-back: failed cells keep their pre-pass value.
            cur = (result & ~fail) | (cur & fail)
            set_total |= set_mask & ~fail
            reset_total |= reset_mask & ~fail
            residual = fail
            if not fail.any():
                break
            if self.tracer is not None:
                self.tracer.instant(
                    "driver.retry_pass",
                    pid="driver",
                    tid="verify",
                    cat="faults",
                    args={
                        "attempt": attempt + 1,
                        "failed_bits": int(np.bitwise_count(fail).sum()),
                    },
                )
                self.tracer.metrics.counter("driver.retry_passes").inc()
        return ProgramResult(
            result=cur,
            set_mask=set_total,
            reset_mask=reset_total,
            attempts=attempts,
            residual=residual,
        )
