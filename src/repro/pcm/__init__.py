"""PCM device substrate: timing, power, energy, chip/bank/device models.

This package models the Samsung-prototype SLC PCM the paper simulates with
NVMain: per-cell SET/RESET/READ timing, the charge-pump current budget
(with Global Charge Pump pooling across the four chips of a bank), the
chip write path (write driver with PROG-enable gating, Fig. 9), and the
bank/rank/device organization of Table II.
"""

from repro.pcm.energy import EnergyModel
from repro.pcm.state import LineState, MemoryImage
from repro.pcm.wear import StartGapLeveler, WearStats, WearTracker
from repro.pcm.write_driver import WriteDriver, DriverCommand
from repro.pcm.chip import PCMChip
from repro.pcm.bank import PCMBank
from repro.pcm.device import PCMDevice, AddressMap

__all__ = [
    "AddressMap",
    "DriverCommand",
    "EnergyModel",
    "LineState",
    "MemoryImage",
    "PCMBank",
    "PCMChip",
    "PCMDevice",
    "StartGapLeveler",
    "WearStats",
    "WearTracker",
    "WriteDriver",
]
