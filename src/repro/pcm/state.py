"""Stored cell state: physical data units plus per-unit flip tags.

Flip-based schemes (Flip-N-Write, Three-Stage-Write, Tetris Write) may
store a data unit inverted; the *physical* image lives in the PCM cells
and a one-bit *flip tag* per data unit records the encoding.  The logical
value is recovered as ``physical ^ (flip ? ~0 : 0)`` on the read path.

:class:`MemoryImage` is a sparse line store used by the bank model and the
trace pre-computation: lines materialize on first touch from a
deterministic per-address generator so that every scheme replaying the
same trace observes the identical content evolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.util import kernelstats

__all__ = [
    "LineState",
    "MemoryImage",
    "cell_diff",
    "cell_diff_batch",
    "initial_line_content",
]

_U64 = np.uint64
_ONES = np.uint64(0xFFFF_FFFF_FFFF_FFFF)


@dataclass
class LineState:
    """Physical image of one cache line: cell contents + flip tags."""

    physical: np.ndarray  # (units,) uint64
    flip: np.ndarray      # (units,) bool

    @classmethod
    def from_logical(cls, logical: np.ndarray) -> "LineState":
        logical = np.atleast_1d(np.asarray(logical, dtype=_U64))
        return cls(physical=logical.copy(), flip=np.zeros(logical.shape, dtype=bool))

    @property
    def logical(self) -> np.ndarray:
        """Decode the stored image back to logical data."""
        return np.where(self.flip, ~self.physical, self.physical)

    def copy(self) -> "LineState":
        return LineState(self.physical.copy(), self.flip.copy())

    def store(self, physical: np.ndarray, flip: np.ndarray) -> None:
        """Commit a write's outcome (the write stage's end state)."""
        self.physical[:] = physical
        self.flip[:] = flip


def cell_diff(before: np.ndarray, after: np.ndarray) -> tuple[int, int]:
    """Count cell programs between two physical images.

    Returns ``(n_set, n_reset)``: the 0->1 and 1->0 transitions a write
    driver must apply to turn ``before`` into ``after``.  Used by the
    fault path to price verify-retry passes and by tests to cross-check
    a scheme's reported program counts against the state it committed.
    """
    b = np.atleast_1d(np.asarray(before, dtype=_U64))
    a = np.atleast_1d(np.asarray(after, dtype=_U64))
    if kernelstats.use_scalar():
        kernelstats.record("scalar")
        n_set = n_reset = 0
        for bu, au in zip(b, a):
            diff = int(bu) ^ int(au)
            n_set += (diff & int(au)).bit_count()
            n_reset += (diff & int(bu)).bit_count()
        return n_set, n_reset
    kernelstats.record("vectorized")
    diff = b ^ a
    n_set = int(np.bitwise_count(diff & a).sum())
    n_reset = int(np.bitwise_count(diff & b).sum())
    return n_set, n_reset


def cell_diff_batch(
    before: np.ndarray, after: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row :func:`cell_diff` over ``(n, units)`` image matrices.

    Returns int64 ``(n_set, n_reset)`` arrays of length ``n`` — one ufunc
    pass instead of ``n`` scalar calls for trace-scale image comparisons.
    """
    b = np.asarray(before, dtype=_U64)
    a = np.asarray(after, dtype=_U64)
    if b.ndim != 2 or b.shape != a.shape:
        raise ValueError("cell_diff_batch expects matching (n, units) matrices")
    if kernelstats.use_scalar():
        kernelstats.record("scalar")
        n_set = np.zeros(b.shape[0], dtype=np.int64)
        n_reset = np.zeros(b.shape[0], dtype=np.int64)
        for i in range(b.shape[0]):
            s = r = 0
            for bu, au in zip(b[i], a[i]):
                diff = int(bu) ^ int(au)
                s += (diff & int(au)).bit_count()
                r += (diff & int(bu)).bit_count()
            n_set[i] = s
            n_reset[i] = r
        return n_set, n_reset
    kernelstats.record("vectorized")
    diff = b ^ a
    n_set = np.bitwise_count(diff & a).astype(np.int64).sum(axis=1)
    n_reset = np.bitwise_count(diff & b).astype(np.int64).sum(axis=1)
    return n_set, n_reset


def initial_line_content(seed: int, line_addr: int, units: int = 8) -> np.ndarray:
    """Deterministic initial content for a line (uniform random bits).

    Uses a counter-based construction (``SeedSequence`` over
    ``(seed, line_addr)``) so any line can be materialized independently
    of access order — required for schemes to agree on initial state.
    """
    rng = np.random.default_rng(np.random.SeedSequence([seed, line_addr & _MASK63]))
    return rng.integers(0, np.iinfo(np.uint64).max, size=units, dtype=np.uint64)


_MASK63 = (1 << 63) - 1


@dataclass
class MemoryImage:
    """Sparse line-granular memory content with lazy initialization."""

    seed: int
    units_per_line: int = 8
    initializer: Callable[[int, int, int], np.ndarray] = field(
        default=initial_line_content
    )
    _lines: dict[int, LineState] = field(default_factory=dict)

    def line(self, line_addr: int) -> LineState:
        state = self._lines.get(line_addr)
        if state is None:
            state = LineState.from_logical(
                self.initializer(self.seed, line_addr, self.units_per_line)
            )
            self._lines[line_addr] = state
        return state

    def read_logical(self, line_addr: int) -> np.ndarray:
        return self.line(line_addr).logical

    def __len__(self) -> int:
        return len(self._lines)

    def touched_lines(self) -> list[int]:
        return sorted(self._lines)
