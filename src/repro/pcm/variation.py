"""Process variation: per-region cell-speed factors.

Fabrication variation makes some PCM regions program slower than others;
a write burst completes when its slowest cell does, so a line inherits
(approximately) its region's worst-cell factor.  We model the factor as
a deterministic lognormal per region (unit mean, configurable sigma) —
the standard first-order treatment — and scale a write's service time by
its target line's factor.

The model is orthogonal to the scheme: every scheme's pulses stretch by
the same regional factor, so the *ranking* of Figs 10-14 is invariant
while the latency distributions widen — which the variation bench
verifies rather than assumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ProcessVariation"]


@dataclass(frozen=True)
class ProcessVariation:
    """Deterministic per-region latency factors.

    ``sigma`` is the lognormal shape (0 disables variation); the
    location is chosen so the factor's mean is exactly 1, keeping
    average-case comparisons unbiased.  ``region_lines`` sets the spatial
    granularity (cells in a region share fabrication conditions).
    """

    sigma: float = 0.15
    region_lines: int = 1024
    seed: int = 20160816

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")
        if self.region_lines < 1:
            raise ValueError("region must contain at least one line")

    # ------------------------------------------------------------------
    def factor_of(self, line: int) -> float:
        """Latency multiplier of the region containing ``line``."""
        if self.sigma == 0:
            return 1.0
        region = int(line) // self.region_lines
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, region & ((1 << 63) - 1)])
        )
        # mean of lognormal(mu, sigma) is exp(mu + sigma^2/2) == 1.
        mu = -self.sigma ** 2 / 2.0
        return float(rng.lognormal(mu, self.sigma))

    def factors_of(self, lines: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`factor_of` (cached per region)."""
        lines = np.asarray(lines, dtype=np.int64)
        if self.sigma == 0:
            return np.ones(lines.shape)
        regions = lines // self.region_lines
        unique, inverse = np.unique(regions, return_inverse=True)
        table = np.array(
            [self.factor_of(int(r) * self.region_lines) for r in unique]
        )
        return table[inverse]

    def apply(self, service_ns: np.ndarray, lines: np.ndarray) -> np.ndarray:
        """Scale per-write service times by their lines' factors."""
        service_ns = np.asarray(service_ns, dtype=np.float64)
        if service_ns.shape != np.asarray(lines).shape:
            raise ValueError("service/lines shape mismatch")
        return service_ns * self.factors_of(lines)
