"""MLC (2-bit) PCM model — the paper's explicit non-goal, built as an
extension on the generalized scheduler.

A 2-bit MLC cell holds one of four resistance levels.  Programming uses
the RESET-then-iterate strategy: full-RESET (level 0) is one short
high-current pulse; full-SET (level 3) is one long low-current pulse;
the partial levels 1-2 need program-and-verify staircases — intermediate
duration at intermediate current (values follow the common MLC PCM
literature, e.g. the FPB paper the authors cite for MLC power
budgeting).  In SET-unit normalized terms, per programmed cell:

==========  ===================  =========
target      duration (sub-slots) current
==========  ===================  =========
level 0     1                    2.0   (RESET pulse)
level 1     4                    1.5   (P&V staircase)
level 2     6                    1.3   (longer staircase)
level 3     8                    1.0   (full SET)
==========  ===================  =========

A 64-bit data unit is 32 MLC cells.  :class:`MLCModel` extracts the
per-unit, per-target-level *changed-cell* counts from old/new unit words
(comparison write at symbol granularity) and schedules them with the
generalized Tetris packer, or serially for the conventional baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.generalized import (
    BurstClass,
    GeneralizedSchedule,
    GeneralizedScheduler,
)

__all__ = ["MLC_LEVEL_CLASSES", "MLCModel", "mlc_level_counts"]

_U64 = np.uint64
_EVEN = np.uint64(0x5555_5555_5555_5555)  # bit 0 of every 2-bit symbol

MLC_LEVEL_CLASSES: tuple[BurstClass, ...] = (
    BurstClass("level0", 1, 2.0),
    BurstClass("level1", 4, 1.5),
    BurstClass("level2", 6, 1.3),
    BurstClass("level3", 8, 1.0),
)


def mlc_level_counts(old: np.ndarray, new: np.ndarray) -> np.ndarray:
    """Changed-cell counts per target level: (units, 4) matrix.

    A cell changes when either bit of its 2-bit symbol differs; it is
    then programmed to the *new* symbol's level.  Fully vectorized over
    the unit words using lattice masks on the even bit positions.
    """
    old = np.atleast_1d(np.asarray(old, dtype=_U64))
    new = np.atleast_1d(np.asarray(new, dtype=_U64))
    if old.shape != new.shape:
        raise ValueError("old/new shape mismatch")

    diff = old ^ new
    changed = (diff | (diff >> _U64(1))) & _EVEN  # one marker bit per cell

    b0 = new & _EVEN                 # symbol bit 0 on the even lattice
    b1 = (new >> _U64(1)) & _EVEN    # symbol bit 1 on the even lattice
    level_masks = (
        ~b1 & ~b0 & _EVEN,  # level 0: symbol 00
        ~b1 & b0,           # level 1: symbol 01
        b1 & ~b0,           # level 2: symbol 10
        b1 & b0,            # level 3: symbol 11
    )
    counts = np.empty(old.shape + (4,), dtype=np.int64)
    for lvl, mask in enumerate(level_masks):
        counts[..., lvl] = np.bitwise_count(changed & mask)
    return counts


@dataclass
class MLCModel:
    """Prices MLC cache-line writes, scheduled or serial.

    ``power_budget`` and ``sub_slot_ns`` define the operating point; the
    default sub-slot is the SLC RESET time (53 ns) so MLC's full-SET
    (8 sub-slots) matches the SLC ``t_set``.
    """

    power_budget: float = 128.0
    sub_slot_ns: float = 53.75
    level_classes: tuple[BurstClass, ...] = MLC_LEVEL_CLASSES
    scheduler: GeneralizedScheduler = field(init=False)

    def __post_init__(self) -> None:
        if len(self.level_classes) != 4:
            raise ValueError("MLC needs exactly four level classes")
        self.scheduler = GeneralizedScheduler(self.power_budget, self.sub_slot_ns)

    # ------------------------------------------------------------------
    def schedule_line(
        self, old: np.ndarray, new: np.ndarray
    ) -> GeneralizedSchedule:
        """Generalized-Tetris schedule for one line's MLC programs."""
        counts = mlc_level_counts(old, new)
        demands = {
            cls: counts[:, lvl] for lvl, cls in enumerate(self.level_classes)
        }
        return self.scheduler.schedule(demands)

    def serial_ns(self, old: np.ndarray, new: np.ndarray) -> float:
        """Conventional baseline: one write unit at a time, each charged
        the worst-case duration of its slowest changed level, bursts
        serialized per unit under the budget."""
        counts = mlc_level_counts(old, new)
        total = 0.0
        for unit_counts in counts:
            for lvl, cls in enumerate(self.level_classes):
                n = int(unit_counts[lvl])
                while n > 0:
                    max_cells = int(self.power_budget // cls.current_per_cell)
                    chunk = min(n, max_cells)
                    total += cls.duration_subslots * self.sub_slot_ns
                    n -= chunk
        return total

    def tetris_ns(self, old: np.ndarray, new: np.ndarray) -> float:
        return self.schedule_line(old, new).completion_ns()
