"""Functional PCM chip model: datapath of Fig. 6(b) + write logic of Fig. 7.

A :class:`PCMChip` owns the per-chip slice of every stored data unit and
executes Tetris schedules burst-by-burst through the
:class:`~repro.pcm.write_driver.WriteDriver`, mimicking the FSM0/FSM1
select sequence.  Its job in the reproduction is *verification*: after a
schedule executes, the stored cells must equal the intended physical
image, every programmed cell must have actually differed, and the per-
sub-slot current must respect the chip budget.  It also accumulates
endurance counters (programs per cell word) for the wear analysis bench.

The chip is indexed by (line address, unit) rather than rows/columns; the
GYDEC / S-A / DOUT stages of the datapath are latency, not function, and
are charged by the timing model in :mod:`repro.config`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.schedule import TetrisSchedule
from repro.pcm.write_driver import WriteDriver

__all__ = ["PCMChip"]

_U64 = np.uint64


@dataclass
class PCMChip:
    """One X-N chip: stores ``slice_bits`` of every data unit.

    Parameters
    ----------
    chip_id:
        Position of this chip within its bank (0-based).
    slice_bits:
        Data bits this chip stores per data unit (16 for an X16 chip).
    power_budget:
        Private charge-pump budget in SET units (ignored when the bank
        validates a pooled GCP budget instead).
    fault_injector:
        Optional ``(attempt, attempted_mask) -> fail_mask`` callable fed
        to :meth:`WriteDriver.program_verified`; ``None`` keeps the chip
        on the single-pass fast path with zero retry overhead.
    max_attempts:
        Bound on program-and-verify passes per burst when a fault
        injector is installed.
    """

    chip_id: int
    slice_bits: int = 16
    power_budget: float = 32.0
    driver: WriteDriver = field(default_factory=WriteDriver)
    fault_injector: Callable[[int, np.ndarray], np.ndarray] | None = None
    max_attempts: int = 3
    # Observability (repro.obs): when a tracer is attached and the caller
    # provides a schedule base time, execute_schedule emits one slice per
    # burst on this chip's FSM1/FSM0 lanes plus a per-sub-slot pump
    # current counter — the Perfetto rendering of Fig. 4's overlap.
    tracer: object | None = None
    t_set_ns: float = 430.0
    # Timeline process label; empty picks "chip<N>".  Banks that own the
    # chip prepend themselves ("bank0.chip2") so concurrently-busy banks
    # do not share lanes.
    obs_pid: str = ""
    # (line, unit) -> stored slice value (int); lazily populated.
    _cells: dict[tuple[int, int], int] = field(default_factory=dict)
    set_programs: int = 0
    reset_programs: int = 0
    retried_bursts: int = 0
    retry_programs: int = 0
    unverified_bursts: int = 0

    @property
    def lane_mask(self) -> int:
        return (1 << self.slice_bits) - 1

    def slice_of(self, word: int) -> int:
        """Extract this chip's lane from a full data-unit word."""
        return (word >> (self.chip_id * self.slice_bits)) & self.lane_mask

    # ------------------------------------------------------------------
    def read(self, line: int, unit: int, default: int = 0) -> int:
        return self._cells.get((line, unit), default)

    def load(self, line: int, units: np.ndarray) -> None:
        """Initialize this chip's slices of a line from full unit words."""
        for u, word in enumerate(np.asarray(units, dtype=_U64)):
            self._cells[(line, u)] = self.slice_of(int(word))

    def execute_burst(
        self, line: int, unit: int, target_slice: int, direction: str
    ) -> tuple[int, float]:
        """Run one FSM burst on one data-unit slice.

        Returns ``(cells_programmed, current_drawn)`` where current is in
        SET units (RESETs weighted by the caller's L are *not* applied
        here — the chip reports raw counts; the bank applies weights).

        With a :attr:`fault_injector` installed the burst becomes a
        bounded program-and-verify cycle: failed bits are retried up to
        :attr:`max_attempts` passes, retry passes are tallied in
        :attr:`retried_bursts` / :attr:`retry_programs`, and a burst that
        still disagrees after the last pass bumps
        :attr:`unverified_bursts` (the bank-level fault model escalates
        from there; the chip never silently drops the residual).
        """
        old = self.read(line, unit)
        if self.fault_injector is None:
            result, set_mask, reset_mask = self.driver.program(
                old, target_slice, direction
            )
            self._cells[(line, unit)] = int(result[0])
            n_set = int(np.bitwise_count(set_mask).sum())
            n_reset = int(np.bitwise_count(reset_mask).sum())
            self.set_programs += n_set
            self.reset_programs += n_reset
            return n_set + n_reset, float(n_set + n_reset)
        outcome = self.driver.program_verified(
            old,
            target_slice,
            direction,
            injector=self.fault_injector,
            max_attempts=self.max_attempts,
        )
        self._cells[(line, unit)] = int(outcome.result[0])
        n_set = int(np.bitwise_count(outcome.set_mask).sum())
        n_reset = int(np.bitwise_count(outcome.reset_mask).sum())
        self.set_programs += n_set
        self.reset_programs += n_reset
        if outcome.attempts > 1:
            self.retried_bursts += 1
            self.retry_programs += outcome.attempts - 1
        if not outcome.verified:
            self.unverified_bursts += 1
        return n_set + n_reset, float(n_set + n_reset)

    # ------------------------------------------------------------------
    def execute_schedule(
        self,
        line: int,
        schedule: TetrisSchedule,
        target_physical: np.ndarray,
        *,
        L: float = 2.0,
        base_ns: float | None = None,
    ) -> np.ndarray:
        """Drain a schedule's queues against this chip's slices.

        ``target_physical`` holds the full post-flip unit words; the chip
        programs only its own lane.  Returns the per-sub-slot current the
        chip drew, for budget verification by the caller.  With a
        :attr:`tracer` attached and ``base_ns`` given (the sim time the
        write stage starts), each burst also lands as a timeline slice
        on this chip's FSM lanes.
        """
        target = np.asarray(target_physical, dtype=_U64)
        n_slots = max(schedule.total_sub_slots, 1)
        current = np.zeros(n_slots, dtype=np.float64)
        trace = self.tracer is not None and base_ns is not None
        pid = self.obs_pid or f"chip{self.chip_id}"
        t_sub = self.t_set_ns / schedule.K

        for op in schedule.write1_queue:
            tgt = self.slice_of(int(target[op.unit]))
            old = self.read(line, op.unit)
            # SET phase only: program the 0->1 differences of this lane.
            result, set_mask, _ = self.driver.program(old, tgt, "set")
            self._cells[(line, op.unit)] = int(result[0])
            n = int(np.bitwise_count(set_mask).sum())
            self.set_programs += n
            base = op.slot * schedule.K
            current[base : base + schedule.K] += n
            if trace and n:
                self.tracer.complete(
                    f"write1 u{op.unit}",
                    ts_ns=base_ns + op.slot * self.t_set_ns,
                    dur_ns=self.t_set_ns,
                    pid=pid,
                    tid="FSM1 write-1",
                    cat="fsm",
                    args={"line": line, "unit": op.unit, "slot": op.slot,
                          "bits": n, "chunk": op.chunk},
                )
                self.tracer.metrics.counter(f"{pid}.fsm1.bursts").inc()
                self.tracer.metrics.counter(f"{pid}.fsm1.set_bits").inc(n)

        for op in schedule.write0_queue:
            tgt = self.slice_of(int(target[op.unit]))
            old = self.read(line, op.unit)
            result, _, reset_mask = self.driver.program(old, tgt, "reset")
            self._cells[(line, op.unit)] = int(result[0])
            n = int(np.bitwise_count(reset_mask).sum())
            self.reset_programs += n
            current[op.slot] += n * L
            if trace and n:
                self.tracer.complete(
                    f"write0 u{op.unit}",
                    ts_ns=base_ns + op.slot * t_sub,
                    dur_ns=t_sub,
                    pid=pid,
                    tid="FSM0 write-0",
                    cat="fsm",
                    args={"line": line, "unit": op.unit, "subslot": op.slot,
                          "bits": n, "chunk": op.chunk},
                )
                self.tracer.metrics.counter(f"{pid}.fsm0.bursts").inc()
                self.tracer.metrics.counter(f"{pid}.fsm0.reset_bits").inc(n)

        if trace:
            # Pump-current track: one sample per sub-slot + closing zero,
            # and a gauge carrying the peak against the private budget.
            for s, amps in enumerate(current):
                self.tracer.counter(
                    f"{pid}.pump_current", float(amps),
                    ts_ns=base_ns + s * t_sub, pid=pid, cat="fsm",
                )
            self.tracer.counter(
                f"{pid}.pump_current", 0.0,
                ts_ns=base_ns + n_slots * t_sub, pid=pid, cat="fsm",
            )
            g = self.tracer.metrics.gauge(f"{pid}.pump_peak")
            g.set(float(current.max()) if current.size else 0.0)

        return current

    # ------------------------------------------------------------------
    def stored_word_slice(self, line: int, units: int) -> np.ndarray:
        """Reassemble this chip's lanes of a line into shifted unit words."""
        out = np.zeros(units, dtype=_U64)
        for u in range(units):
            out[u] = _U64(self.read(line, u)) << _U64(self.chip_id * self.slice_bits)
        return out
