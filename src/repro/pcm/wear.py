"""Endurance substrate: wear tracking and Start-Gap wear leveling.

PCM cells endure ~1e8 programs; write schemes differ hugely in how much
wear a workload inflicts (comparison-based schemes program ~9.6 cells
per 64 B line vs. 512 for the conventional scheme — the endurance column
behind the paper's Table I).  Two pieces:

* :class:`WearTracker` — per-line program counters with lifetime
  estimation, fed by scheme outcomes or trace count tables.
* :class:`StartGapLeveler` — Qureshi et al.'s Start-Gap scheme
  (MICRO 2009, the paper's ref [5]): an algebraic logical→physical line
  remap (one start pointer + one moving gap slot per region) that spreads
  a hot line's writes over the whole region at a cost of one migration
  write per ``gap_interval`` demand writes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["WearStats", "WearTracker", "StartGapLeveler"]


@dataclass(frozen=True)
class WearStats:
    """Summary of a tracker's wear distribution."""

    lines_touched: int
    total_programs: int
    max_programs: int
    mean_programs: float
    cov: float  # coefficient of variation: std / mean

    def lifetime_writes(self, cell_endurance: float = 1e8) -> float:
        """Demand writes until the hottest line dies, extrapolating the
        observed skew (endurance / max-per-observed-write ratio)."""
        if self.max_programs == 0:
            return float("inf")
        return cell_endurance / self.max_programs * self.total_programs


class WearTracker:
    """Per-line program counters (SET + RESET cells programmed).

    With ``cell_tracking=True`` the tracker additionally keeps *per-cell*
    program counts (a ``(units, unit_bits)`` uint32 matrix per touched
    line), fed by :meth:`record_masks` with the actual programmed bit
    masks.  The fault model (:mod:`repro.faults`) consumes these counts
    to decide when a cell's endurance is exhausted; line-level sweeps
    leave it off and pay one dict update per write.
    """

    def __init__(self, *, cell_tracking: bool = False, unit_bits: int = 64) -> None:
        if not 1 <= unit_bits <= 64:
            raise ValueError("unit_bits must be in [1, 64]")
        self._programs: dict[int, int] = {}
        self.total_programs = 0
        self.cell_tracking = cell_tracking
        self.unit_bits = unit_bits
        self._shifts = np.arange(unit_bits, dtype=np.uint64)
        # line -> (units, unit_bits) uint32 per-cell program counts.
        self._cell_counts: dict[int, np.ndarray] = {}

    def record(self, line: int, n_set: int, n_reset: int) -> None:
        if n_set < 0 or n_reset < 0:
            raise ValueError("program counts must be non-negative")
        amount = n_set + n_reset
        if amount == 0:
            return
        self._programs[line] = self._programs.get(line, 0) + amount
        self.total_programs += amount

    def record_masks(
        self, line: int, set_masks: np.ndarray, reset_masks: np.ndarray
    ) -> None:
        """Record one program pass from its actual per-unit bit masks.

        ``set_masks``/``reset_masks`` are uint64 words (one per data
        unit) of the cells programmed in each direction.  Always updates
        the line totals; updates the per-cell matrix when cell tracking
        is on.
        """
        set_masks = np.atleast_1d(np.asarray(set_masks, dtype=np.uint64))
        reset_masks = np.atleast_1d(np.asarray(reset_masks, dtype=np.uint64))
        programmed = set_masks | reset_masks
        n_set = int(np.bitwise_count(set_masks).sum())
        n_reset = int(np.bitwise_count(reset_masks).sum())
        self.record(line, n_set, n_reset)
        if not self.cell_tracking or n_set + n_reset == 0:
            return
        counts = self._cell_counts.get(line)
        if counts is None:
            counts = np.zeros((programmed.size, self.unit_bits), dtype=np.uint32)
            self._cell_counts[line] = counts
        counts += ((programmed[:, None] >> self._shifts) & np.uint64(1)).astype(
            np.uint32
        )

    def cell_programs(self, line: int, units: int) -> np.ndarray:
        """Per-cell program counts of a line, ``(units, unit_bits)``.

        Requires ``cell_tracking``; untouched lines return zeros.
        """
        if not self.cell_tracking:
            raise RuntimeError("tracker was built without cell_tracking")
        counts = self._cell_counts.get(line)
        if counts is None:
            return np.zeros((units, self.unit_bits), dtype=np.uint32)
        return counts

    def programs_of(self, line: int) -> int:
        return self._programs.get(line, 0)

    def stats(self) -> WearStats:
        if not self._programs:
            return WearStats(0, 0, 0, 0.0, 0.0)
        values = np.fromiter(self._programs.values(), dtype=np.float64)
        mean = float(values.mean())
        return WearStats(
            lines_touched=len(self._programs),
            total_programs=self.total_programs,
            max_programs=int(values.max()),
            mean_programs=mean,
            cov=float(values.std() / mean) if mean else 0.0,
        )


@dataclass
class StartGapLeveler:
    """Start-Gap: algebraic wear leveling over a region of ``num_lines``.

    The region owns ``num_lines + 1`` physical slots; one (the *gap*) is
    always empty.  Mapping: ``pa = (la + start) mod num_lines`` and
    ``pa += 1`` when ``pa >= gap``.  Every ``gap_interval`` demand writes
    the gap swaps with its lower neighbour (one migration write); when it
    wraps, the start pointer advances — after ``num_lines`` wraps every
    logical line has visited every physical slot.
    """

    num_lines: int
    gap_interval: int = 100
    start: int = 0
    gap: int = field(default=-1)
    writes_since_move: int = 0
    demand_writes: int = 0
    migrations: int = 0

    def __post_init__(self) -> None:
        if self.num_lines < 2:
            raise ValueError("a region needs at least two lines")
        if self.gap_interval < 1:
            raise ValueError("gap_interval must be >= 1")
        if self.gap < 0:
            self.gap = self.num_lines  # gap starts at the spare slot

    # ------------------------------------------------------------------
    def physical_of(self, logical: int) -> int:
        """Current physical slot of a logical line (0..num_lines)."""
        if not 0 <= logical < self.num_lines:
            raise ValueError(f"logical line {logical} out of region")
        pa = (logical + self.start) % self.num_lines
        if pa >= self.gap:
            pa += 1
        return pa

    def on_write(self, logical: int) -> int | None:
        """Register a demand write; returns the physical slot migrated
        *into* when this write triggered a gap move (else None).

        The migration itself costs one extra line write, which callers
        should charge to the wear tracker at the returned slot.
        """
        self.demand_writes += 1
        self.writes_since_move += 1
        if self.writes_since_move < self.gap_interval:
            return None
        self.writes_since_move = 0
        self.migrations += 1
        # The gap swaps with its lower neighbour: slot gap-1's content
        # moves into the (empty) gap slot.
        target = self.gap
        if self.gap == 0:
            self.gap = self.num_lines
            self.start = (self.start + 1) % self.num_lines
        else:
            self.gap -= 1
        return target

    @property
    def overhead_fraction(self) -> float:
        """Extra writes per demand write (1 / gap_interval)."""
        return self.migrations / self.demand_writes if self.demand_writes else 0.0
