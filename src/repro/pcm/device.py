"""Device-level organization: ranks, banks and the address map.

The paper's memory is 4 GB of SLC PCM, single rank, 8 banks (Table II).
Cache-line addresses interleave across banks so consecutive lines hit
different banks — the standard layout that lets the FR-FCFS controller
exploit bank-level parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SystemConfig, default_config
from repro.pcm.bank import PCMBank

__all__ = ["AddressMap", "PCMDevice"]


@dataclass(frozen=True)
class AddressMap:
    """Byte address <-> (rank, bank, row, line) decoding.

    Line interleaving: line ``n`` maps to bank ``n mod B`` of rank
    ``(n // B) mod R``; the row is the line index within the bank divided
    by lines-per-row.  Rows only matter for the (optional) row-buffer
    model in the controller; PCM reads are flat 50 ns by default.
    """

    line_bytes: int = 64
    num_banks: int = 8
    num_ranks: int = 1
    row_size_bytes: int = 2048
    capacity_bytes: int = 4 << 30

    def __post_init__(self) -> None:
        if self.line_bytes <= 0 or self.num_banks <= 0 or self.num_ranks <= 0:
            raise ValueError("sizes must be positive")
        if self.row_size_bytes % self.line_bytes:
            raise ValueError("row size must be a multiple of the line size")

    @property
    def lines_per_row(self) -> int:
        return self.row_size_bytes // self.line_bytes

    def line_of(self, byte_addr: int) -> int:
        return byte_addr // self.line_bytes

    def decode(self, byte_addr: int) -> tuple[int, int, int, int]:
        """Returns ``(rank, bank, row, line)`` for a byte address."""
        line = self.line_of(byte_addr % self.capacity_bytes)
        bank = line % self.num_banks
        rank = (line // self.num_banks) % self.num_ranks
        row = line // (self.num_banks * self.num_ranks * self.lines_per_row)
        return rank, bank, row, line

    def bank_of_line(self, line: int) -> int:
        return line % self.num_banks

    def global_bank_of_line(self, line: int) -> int:
        """Flat index over ranks x banks (= ``rank * banks + bank``)."""
        return line % (self.num_banks * self.num_ranks)

    def row_of_line(self, line: int) -> int:
        return line // (self.num_banks * self.num_ranks * self.lines_per_row)


class PCMDevice:
    """All banks of the device, sharing one scheme *type* (one each).

    Each bank gets its own scheme instance because stateful schemes
    (Tetris keeps its last schedule for inspection) must not be shared
    across concurrently-busy banks.
    """

    def __init__(
        self,
        scheme_factory,
        config: SystemConfig | None = None,
        *,
        verify_cells: bool = False,
        track_wear: bool = False,
    ) -> None:
        self.config = config if config is not None else default_config()
        org = self.config.organization
        self.address_map = AddressMap(
            line_bytes=self.config.cache_line_bytes,
            num_banks=org.num_banks,
            num_ranks=org.num_ranks,
            row_size_bytes=org.row_size_bytes,
            capacity_bytes=org.capacity_bytes,
        )
        self.banks = [
            PCMBank(
                b,
                scheme_factory(self.config),
                self.config,
                verify_cells=verify_cells,
                track_wear=track_wear,
            )
            for b in range(org.num_banks * org.num_ranks)
        ]

    def bank_for(self, line: int) -> PCMBank:
        return self.banks[self.address_map.global_bank_of_line(line)]

    def read(self, line: int) -> tuple[np.ndarray, float]:
        return self.bank_for(line).read(line)

    def write(self, line: int, data: np.ndarray):
        return self.bank_for(line).write(line, data)

    # ------------------------------------------------------------------
    def total_stats(self) -> dict[str, float]:
        """Aggregate bank counters (reads, writes, energy, mean units)."""
        reads = sum(b.stats.reads for b in self.banks)
        writes = sum(b.stats.writes for b in self.banks)
        units = sum(b.stats.write_units for b in self.banks)
        return {
            "reads": reads,
            "writes": writes,
            "busy_ns": sum(b.stats.busy_ns for b in self.banks),
            "energy": sum(b.stats.energy for b in self.banks),
            "set_bits": sum(b.stats.set_bits for b in self.banks),
            "reset_bits": sum(b.stats.reset_bits for b in self.banks),
            "mean_write_units": units / writes if writes else 0.0,
        }

    def wear_stats(self):
        """Merged wear distribution across banks (requires track_wear)."""
        from repro.pcm.wear import WearTracker

        merged = WearTracker()
        for bank in self.banks:
            if bank.wear is None:
                raise RuntimeError(
                    "device was not built with track_wear=True"
                )
            for line, programs in bank.wear._programs.items():
                merged.record(line, programs, 0)
        return merged.stats()
