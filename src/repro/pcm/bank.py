"""PCM bank: four chips behind one write scheme, with GCP pooling.

The bank is the unit of service in the memory controller: one read or one
cache-line write occupies it at a time.  :class:`PCMBank` binds together

* the :class:`~repro.pcm.state.MemoryImage` holding line contents,
* a :class:`~repro.schemes.base.WriteScheme` that prices and commits
  writes, and
* optionally the four functional :class:`~repro.pcm.chip.PCMChip` models,
  which re-execute Tetris schedules at cell level so tests can check that
  the scheduling layer and the cell layer agree (``verify_cells=True``).

Service times returned here are pure occupancy; queueing is the memory
controller's concern.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from typing import TYPE_CHECKING

from repro.config import SystemConfig
from repro.faults.ecp import UncorrectableWriteError
from repro.obs.runtime import tracer_for
from repro.pcm.chip import PCMChip
from repro.pcm.state import MemoryImage

if TYPE_CHECKING:  # avoid a circular import; schemes import repro.pcm
    from repro.schemes.base import WriteOutcome, WriteScheme

__all__ = ["PCMBank", "BankStats"]

_U64 = np.uint64


@dataclass
class BankStats:
    """Aggregate service counters for one bank."""

    reads: int = 0
    writes: int = 0
    busy_ns: float = 0.0
    set_bits: int = 0
    reset_bits: int = 0
    energy: float = 0.0
    write_units: float = 0.0
    # Fault-path counters (all zero while the fault model is disabled).
    attempts: int = 0
    retried_bits: int = 0
    degraded_writes: int = 0
    retired_writes: int = 0
    uncorrectable: int = 0

    def mean_write_units(self) -> float:
        return self.write_units / self.writes if self.writes else 0.0

    def mean_attempts(self) -> float:
        return self.attempts / self.writes if self.writes else 0.0


class PCMBank:
    """One bank of the Table II organization."""

    def __init__(
        self,
        bank_id: int,
        scheme: "WriteScheme",
        config: SystemConfig | None = None,
        *,
        image: MemoryImage | None = None,
        verify_cells: bool = False,
        track_wear: bool = False,
    ) -> None:
        from repro.pcm.wear import WearTracker

        self.bank_id = bank_id
        self.scheme = scheme
        self.config = config if config is not None else scheme.config
        self.image = image if image is not None else MemoryImage(
            seed=self.config.seed ^ bank_id,
            units_per_line=self.config.data_units_per_line,
        )
        self.stats = BankStats()
        self.verify_cells = verify_cells
        self.wear: "WearTracker | None" = WearTracker() if track_wear else None
        self._obs = tracer_for(self.config)
        # Stamp the scheme with its owning bank so its timeline lanes
        # stay distinct from other banks' concurrently-busy schemes.
        self.scheme.obs_bank = bank_id
        org = self.config.organization
        self.chips = [
            PCMChip(
                chip_id=c,
                slice_bits=org.chip_io_bits,
                power_budget=self.config.power.power_budget_per_chip,
                tracer=self._obs,
                t_set_ns=self.config.timings.t_set_ns,
                obs_pid=f"bank{bank_id}.chip{c}",
            )
            for c in range(org.chips_per_bank)
        ] if verify_cells else []

    # ------------------------------------------------------------------
    def read(self, line_addr: int) -> tuple[np.ndarray, float]:
        """Array read: returns (logical data, service time ns)."""
        data = self.image.read_logical(line_addr)
        t = self.config.timings.t_read_ns
        self.stats.reads += 1
        self.stats.busy_ns += t
        return data, t

    def write(self, line_addr: int, new_logical: np.ndarray) -> "WriteOutcome":
        """Cache-line write through the bank's scheme.

        With the fault model enabled an unrecoverable write propagates
        as :class:`repro.faults.UncorrectableWriteError` (the stored
        image is already restored by the scheme) after being counted.
        """
        state = self.image.line(line_addr)
        if self.verify_cells and not any(
            (line_addr, 0) in chip._cells for chip in self.chips
        ):
            for chip in self.chips:
                chip.load(line_addr, state.physical)

        try:
            outcome = self.scheme.write(
                state, np.asarray(new_logical, dtype=_U64), line=line_addr
            )
        except UncorrectableWriteError:
            self.stats.uncorrectable += 1
            raise

        if self.verify_cells:
            self._verify_cell_level(line_addr, state, outcome)

        s = self.stats
        s.writes += 1
        s.busy_ns += outcome.service_ns
        s.set_bits += outcome.n_set
        s.reset_bits += outcome.n_reset
        s.energy += outcome.energy
        s.write_units += outcome.units
        s.attempts += outcome.attempts
        s.retried_bits += outcome.retried_bits
        s.degraded_writes += int(outcome.degraded)
        s.retired_writes += int(outcome.retired)
        if self.wear is not None:
            self.wear.record(line_addr, outcome.n_set, outcome.n_reset)
        return outcome

    # ------------------------------------------------------------------
    def _verify_cell_level(self, line_addr: int, state, outcome=None) -> None:
        """Replay the last Tetris schedule at cell level (if available).

        For Tetris writes we push the committed physical image through
        the functional chips using the schedule's burst order and check
        (a) the chips converge to the same image and (b) no chip ever
        exceeded the pooled budget.  For non-Tetris schemes the chips are
        simply overwritten with the committed image.
        """
        sched = getattr(self.scheme, "last_schedule", None)
        target = state.physical
        base_ns = None
        if self._obs is not None and outcome is not None:
            # Chip lanes start where the write stage does: after the
            # read-before-write and the analysis stage.
            base_ns = (
                self._obs.clock.now_ns() + outcome.read_ns + outcome.analysis_ns
            )
        if sched is not None:
            pooled = np.zeros(max(sched.total_sub_slots, 1), dtype=np.float64)
            for chip in self.chips:
                pooled_part = chip.execute_schedule(
                    line_addr, sched, target, L=self.config.L, base_ns=base_ns
                )
                pooled[: pooled_part.size] += pooled_part
            if pooled.size and float(pooled.max()) > self.config.bank_power_budget + 1e-9:
                raise RuntimeError(
                    f"bank {self.bank_id}: pooled GCP current "
                    f"{pooled.max():.1f} exceeded budget "
                    f"{self.config.bank_power_budget}"
                )
            rebuilt = np.zeros(target.shape, dtype=_U64)
            for chip in self.chips:
                rebuilt |= chip.stored_word_slice(line_addr, target.size)
            if not np.array_equal(rebuilt, target):
                raise RuntimeError(
                    f"bank {self.bank_id}: cell-level replay diverged from "
                    "the committed image"
                )
        else:
            for chip in self.chips:
                chip.load(line_addr, target)
