"""Command-line interface: regenerate any paper experiment from a shell.

Examples::

    tetris-write fig3
    tetris-write fig10 --requests 4000
    tetris-write fullsystem --workloads dedup vips --schemes dcw tetris
    tetris-write faults --rates 0 1e-3 --schemes dcw tetris
    tetris-write faults --wearout --endurance 60
    tetris-write diagram --seed 7
    tetris-write trace --workload ferret --out ferret.npz
    tetris-write ablation --sweep budget
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.report import format_table
from repro.analysis.timing_diagram import render_timing_diagram
from repro.config import default_config
from repro.schemes import COMPARED_SCHEMES
from repro.trace.workloads import WORKLOAD_NAMES

__all__ = ["main"]


def _cmd_fig3(args: argparse.Namespace) -> int:
    from repro.experiments.fig03 import run_fig03

    rows = run_fig03(
        tuple(args.workloads), requests_per_core=args.requests, seed=args.seed
    )
    print(
        format_table(
            ["workload", "SET/unit", "RESET/unit", "total"],
            [[r.workload, r.mean_set, r.mean_reset, r.total] for r in rows],
            title="Figure 3 — bit-writes per 64-bit data unit (post-inversion)",
        )
    )
    print(
        f"average: {arithmetic_mean([r.mean_set for r in rows]):.2f} SET + "
        f"{arithmetic_mean([r.mean_reset for r in rows]):.2f} RESET "
        f"(paper: 6.7 SET + 2.9 RESET)"
    )
    return 0


def _cmd_fig10(args: argparse.Namespace) -> int:
    from repro.experiments.fig10 import run_fig10

    rows = run_fig10(
        tuple(args.workloads), requests_per_core=args.requests, seed=args.seed
    )
    print(
        format_table(
            ["workload", "DCW", "FNW", "2SW", "3SW", "Tetris"],
            [
                [r.workload, r.dcw, r.flip_n_write, r.two_stage, r.three_stage, r.tetris]
                for r in rows
            ],
            title="Figure 10 — average write units per cache-line write",
        )
    )
    return 0


def _cmd_fullsystem(args: argparse.Namespace) -> int:
    from repro.config import CPUConfig, MemCtrlConfig, PCMOrganization
    from repro.experiments.runner import BASELINE_SCHEME, run_schemes_on_workloads

    cfg = default_config().replace(
        memctrl=MemCtrlConfig(
            write_pausing=args.pausing,
            write_coalescing=args.coalescing,
            drain_order="sjf" if args.sjf else "fifo",
            opportunistic_drain=args.opportunistic,
        ),
        organization=PCMOrganization(subarrays_per_bank=args.subarrays),
        cpu=CPUConfig(max_outstanding_reads=args.mlp),
    )
    schemes = tuple(dict.fromkeys([BASELINE_SCHEME, *args.schemes]))
    results = run_schemes_on_workloads(
        schemes,
        tuple(args.workloads),
        config=cfg,
        requests_per_core=args.requests,
        seed=args.seed,
        workers=args.workers,
        cache=False if args.no_cache else None,
    )
    base = {r.workload: r for r in results if r.scheme == BASELINE_SCHEME}
    rows = []
    for r in results:
        norm = r.normalized(base[r.workload])
        rows.append(
            [
                r.workload,
                r.scheme,
                norm["read_latency"],
                norm["write_latency"],
                norm["ipc_improvement"],
                norm["running_time"],
                r.mean_write_units,
            ]
        )
    print(
        format_table(
            ["workload", "scheme", "read-lat", "write-lat", "IPC-x", "runtime", "units"],
            rows,
            title="Full-system results normalized to the DCW baseline (Figs 11-14)",
        )
    )
    return 0


def _cmd_diagram(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    if args.fig4:
        # The worked example of the paper's Figure 4: per-chip write-1 /
        # write-0 counts scheduled against the per-chip budget of 32.
        n_set = np.array([8, 7, 7, 6, 6, 6, 5, 3])
        n_reset = np.array([1, 1, 1, 2, 3, 2, 2, 5])
        print(render_timing_diagram(n_set, n_reset, power_budget=32.0))
    else:
        n_set = rng.poisson(6.7, size=8)
        n_reset = rng.poisson(2.9, size=8)
        print(render_timing_diagram(n_set, n_reset))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.trace.io import save_trace, save_trace_text
    from repro.trace.synthetic import generate_trace

    trace = generate_trace(args.workload, args.requests, seed=args.seed)
    rpki, wpki = trace.measured_rpki_wpki()
    mean_set, mean_reset = trace.mean_bit_profile()
    print(
        f"{trace.workload}: {len(trace)} requests "
        f"({trace.n_reads} reads / {trace.n_writes} writes), "
        f"RPKI={rpki:.2f} WPKI={wpki:.2f}, "
        f"profile {mean_set:.1f} SET + {mean_reset:.1f} RESET per unit"
    )
    if args.out:
        if args.out.endswith(".txt"):
            save_trace_text(trace, args.out)
        else:
            save_trace(trace, args.out)
        print(f"saved to {args.out}")
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    from repro.experiments import ablation
    from repro.trace.synthetic import generate_trace

    trace = generate_trace(args.workload, args.requests, seed=args.seed)
    sweeps = {
        "budget": ablation.sweep_power_budget,
        "K": ablation.sweep_time_asymmetry,
        "L": ablation.sweep_power_asymmetry,
        "width": ablation.sweep_write_unit_width,
        "flip": ablation.sweep_no_flip,
    }
    points = sweeps[args.sweep](trace)
    print(
        format_table(
            ["parameter", "value", "mean units", "result", "subresult"],
            [
                [p.parameter, p.value, p.mean_units, p.mean_result, p.mean_subresult]
                for p in points
            ],
            title=f"Tetris ablation: {args.sweep} sweep on {args.workload}",
        )
    )
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.experiments.faults import retirement_curve, run_fault_sweep

    if args.wearout:
        points = retirement_curve(
            scheme_name=args.schemes[0],
            endurance_mean=args.endurance,
            seed=args.seed,
        )
        print(
            format_table(
                ["writes", "stuck cells", "ECP lines", "retired", "attempts", "lost"],
                [
                    [
                        p.writes_issued,
                        p.stuck_cells,
                        p.ecp_lines,
                        p.retired_lines,
                        p.mean_attempts,
                        p.uncorrectable,
                    ]
                    for p in points
                ],
                title=(
                    f"Wear-out cascade: {args.schemes[0]} hammering with "
                    f"endurance_mean={args.endurance:g}"
                ),
            )
        )
        return 0
    rows = run_fault_sweep(
        tuple(args.rates),
        tuple(args.schemes),
        workload=args.workload,
        requests_per_core=args.requests,
        seed=args.seed,
    )
    print(
        format_table(
            [
                "scheme", "rate", "writes", "attempts", "retry%",
                "mean ns", "P50 ns", "P99 ns", "energy", "degr", "lost",
            ],
            [
                [
                    r.scheme,
                    f"{r.rate:g}",
                    r.writes,
                    r.mean_attempts,
                    100.0 * r.retry_rate,
                    r.mean_service_ns,
                    r.p50_service_ns,
                    r.p99_service_ns,
                    r.mean_energy,
                    r.degraded_writes,
                    r.uncorrectable,
                ]
                for r in rows
            ],
            title=(
                "Fault sweep — transient bit-error rate vs write service "
                f"({args.workload})"
            ),
        )
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.experiments.fig10 import measure_write_units
    from repro.trace.io import load_trace, load_trace_text

    trace = (
        load_trace_text(args.trace_file)
        if args.trace_file.endswith(".txt")
        else load_trace(args.trace_file)
    )
    rpki, wpki = trace.measured_rpki_wpki()
    mean_set, mean_reset = trace.mean_bit_profile()
    lines = np.unique(trace.records["line"])
    units = measure_write_units(trace)
    print(
        format_table(
            ["stat", "value"],
            [
                ["workload", trace.workload],
                ["requests", len(trace)],
                ["reads / writes", f"{trace.n_reads} / {trace.n_writes}"],
                ["RPKI / WPKI", f"{rpki:.2f} / {wpki:.2f}"],
                ["distinct lines", int(lines.size)],
                ["SET per unit", mean_set],
                ["RESET per unit", mean_reset],
                ["Tetris write units", units.tetris],
            ],
            title=f"Trace characterization: {args.trace_file}",
        )
    )
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.experiments.obs_demo import (
        fsm_overlap_ns,
        run_traced_fullsystem,
        run_traced_writes,
    )
    from repro.obs import collapsed_stacks, validate_chrome_trace_file, write_chrome_trace

    if args.fullsystem:
        tracer, _ = run_traced_fullsystem(
            args.workload,
            scheme_name=args.scheme,
            requests_per_core=args.requests,
            seed=args.seed,
        )
    else:
        tracer, _ = run_traced_writes(
            args.scheme, n_writes=args.writes, seed=args.seed
        )
    write_chrome_trace(tracer, args.out)
    validate_chrome_trace_file(args.out)
    overlap = fsm_overlap_ns(tracer)
    chip_overlap = {p: ns for p, ns in overlap.items() if ".chip" in p and ns > 0}
    print(
        f"wrote {args.out}: {len(tracer)} events "
        f"({tracer.dropped} dropped), load it at https://ui.perfetto.dev"
    )
    if overlap:
        best = max(overlap, key=overlap.get)
        print(
            f"FSM1/FSM0 overlap on {len(chip_overlap)} chip lanes; "
            f"peak {overlap[best]:.0f} ns on {best}"
        )
    if args.flamegraph:
        with open(args.flamegraph, "w", encoding="utf-8") as fh:
            fh.write(collapsed_stacks(tracer))
        print(f"wrote {args.flamegraph} (collapsed stacks)")
    if args.metrics:
        with open(args.metrics, "w", encoding="utf-8") as fh:
            fh.write(tracer.metrics.to_json(nested=True))
        print(f"wrote {args.metrics} (metric registry)")
    return 0


def _print_cache_report(report: dict) -> None:
    print(
        format_table(
            ["stat", "value"],
            [
                ["store", report["root"]],
                ["entries", report["entries"]],
                ["bytes", report["bytes"]],
                ["current code version", report["current_code_version"]],
                ["quarantined", report["quarantined"]],
                *[
                    [f"entries[{scheme}]", n]
                    for scheme, n in report["by_scheme"].items()
                ],
                *[
                    [f"lane[{lane}]", n]
                    for lane, n in report.get("by_lane", {}).items()
                ],
            ],
            title="Result cache report",
        )
    )


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.parallel import ResultCache, default_cache_dir

    cache = ResultCache(args.cache_dir or default_cache_dir())
    if args.action == "verify":
        rep = cache.verify()
        print(
            format_table(
                ["stat", "value"],
                [
                    ["store", rep["root"]],
                    ["checked", rep["checked"]],
                    ["ok", rep["ok"]],
                    ["corrupt (quarantined this pass)", rep["corrupt"]],
                    ["stale code version", rep["stale_salt"]],
                    ["quarantine dir total", rep["quarantined"]],
                ],
                title="Result cache integrity audit",
            )
        )
        return 1 if rep["corrupt"] else 0
    if args.action == "gc":
        rep = cache.gc()
        print(
            f"gc {rep['root']}: removed {rep['removed_stale']} stale-salt "
            f"entries, {rep['removed_quarantined']} quarantined files"
        )
        return 0
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cache entries from {cache.root}")
        return 0
    _print_cache_report(cache.report())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.experiments.runner import BASELINE_SCHEME
    from repro.parallel import (
        ResultCache,
        RetryPolicy,
        SweepEngine,
        default_cache_dir,
    )

    cache_root = Path(args.cache_dir or default_cache_dir())
    if args.stats:
        _print_cache_report(ResultCache(cache_root).report())
        return 0
    if args.clear_cache:
        removed = ResultCache(cache_root).clear()
        print(f"removed {removed} cache entries from {cache_root}")
        return 0

    journal_path = None
    if args.journal:
        journal_path = Path(args.journal)
    elif args.resume:
        journal_path = cache_root / "sweep-journal.jsonl"
    retry = RetryPolicy()
    if args.max_retries is not None:
        retry = RetryPolicy(max_retries=max(0, args.max_retries))

    schemes = tuple(dict.fromkeys([BASELINE_SCHEME, *args.schemes]))
    fastpath_kwargs = {}
    if args.recheck is not None:
        fastpath_kwargs["recheck_fraction"] = args.recheck
    engine = SweepEngine(
        requests_per_core=args.requests,
        root_seed=args.seed,
        workers=args.workers,
        cache=False if args.no_cache else None,
        cache_dir=args.cache_dir or None,
        journal=journal_path,
        retry=retry,
        cell_deadline_s=args.cell_deadline,
        fastpath=args.fastpath,
        certificate_path=args.certificate or None,
        **fastpath_kwargs,
    )
    sweep = engine.run(schemes, tuple(args.workloads), resume=args.resume)
    base = {
        o.cell.workload: o.row
        for o in sweep.outcomes
        if o.cell.scheme == BASELINE_SCHEME and o.row is not None
    }
    rows = []
    for o in sweep.outcomes:
        if o.error is not None:
            rows.append([o.cell.workload, o.cell.scheme, "ERROR",
                         o.error.error_type, "", "", ""])
            continue
        r = o.row
        norm = r.normalized(base[r.workload])
        rows.append(
            [
                r.workload, r.scheme,
                norm["read_latency"], norm["write_latency"],
                norm["ipc_improvement"], norm["running_time"],
                "hit" if o.cached else ("resumed" if o.resumed else "ran"),
            ]
        )
    print(
        format_table(
            ["workload", "scheme", "read-lat", "write-lat", "IPC-x", "runtime", "cell"],
            rows,
            title="Sweep results normalized to the DCW baseline",
        )
    )
    s = sweep.stats
    hit_pct = 100.0 * s.cache_hits / s.cells if s.cells else 0.0
    print(
        f"{s.cells} cells: {s.executed} executed, {s.cache_hits} cached "
        f"({hit_pct:.0f}% hits), {s.resumed} resumed, {s.errors} errors, "
        f"{s.workers} workers, {s.wall_s:.2f}s"
    )
    print(
        f"lanes: {s.fastpath_cells} fastpath, {s.des_cells} DES, "
        f"{s.recheck_samples} recheck samples, "
        f"{s.recheck_divergences} divergences; kernels: "
        f"{s.vectorized_kernel_calls} vectorized, "
        f"{s.scalar_kernel_calls} scalar"
    )
    if s.retries or s.timeouts or s.worker_deaths or s.serial_cells:
        print(
            f"supervisor: {s.retries} retries, {s.timeouts} timeouts, "
            f"{s.worker_deaths} worker deaths, {s.replacements} "
            f"replacements, {s.serial_cells} serial-fallback cells"
        )
    if args.certificate:
        print(f"wrote lane certificate to {args.certificate}")
    if args.json:
        import dataclasses

        payload = {
            "stats": s.to_dict(),
            "rows": [dataclasses.asdict(r) for r in sweep.rows],
            "errors": [dataclasses.asdict(e) for e in sweep.errors],
            "certificate": sweep.certificate,
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")
    return 1 if sweep.errors else 0


def _cmd_journal(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.parallel import SweepJournal, default_cache_dir
    from repro.parallel.resultcache import code_salt

    path = Path(args.journal) if args.journal else (
        Path(args.cache_dir or default_cache_dir()) / "sweep-journal.jsonl"
    )
    journal = SweepJournal(path)
    if args.action == "compact":
        keep = {code_salt()} if args.prune_stale else None
        dropped = journal.compact(keep_salts=keep)
        print(
            f"compacted {path}: dropped {dropped} line(s) "
            f"({len(journal)} records kept"
            + (", stale-salt records pruned)" if args.prune_stale else ")")
        )
        return 0
    st = journal.stats()
    current = code_salt()
    salt_rows = [
        [f"salt[{i}]", s + (" (current code)" if s == current else " (STALE)")]
        for i, s in enumerate(st["salts"])
    ]
    print(
        format_table(
            ["stat", "value"],
            [
                ["journal", st["path"]],
                ["records", st["records"]],
                ["lines", st["lines"]],
                ["corrupt lines", st["corrupt_lines"]],
                ["duplicate lines", st["duplicate_lines"]],
                ["bytes", st["bytes"]],
                *salt_rows,
            ],
            title="Sweep journal report",
        )
    )
    if st["corrupt_lines"] or st["duplicate_lines"]:
        print(
            f"hint: `tetris-write journal compact` drops the "
            f"{st['corrupt_lines']} corrupt + {st['duplicate_lines']} "
            f"duplicate line(s) atomically"
        )
    if any(s != current for s in st["salts"]):
        print(
            "hint: journal holds records from other code versions; "
            "`tetris-write journal compact --prune-stale` removes them"
        )
    return 0


def _grid_from_args(args: argparse.Namespace) -> dict:
    return {
        "schemes": list(args.schemes),
        "workloads": list(args.workloads),
        "requests_per_core": args.requests,
        "seed": args.seed,
    }


def _print_service_error(exc) -> None:
    retry = (
        f" (retry after {exc.retry_after_s:g}s)"
        if exc.retry_after_s is not None
        else ""
    )
    print(f"service error [{exc.code}]: {exc.message}{retry}")


def _print_job_reply(reply: dict) -> None:
    print(
        f"job {reply.get('job')} [{reply.get('tenant', '-')}]: "
        f"{reply.get('state')} — {reply.get('done', 0)}/{reply.get('total', 0)} "
        f"done, {reply.get('failed', 0)} failed, "
        f"{reply.get('cached', 0)} cached, "
        f"{reply.get('deduped', 0)} deduped"
        + (
            f", eta {reply['eta_s']:g}s"
            if reply.get("eta_s") and reply.get("state") == "running"
            else ""
        )
    )


def _maybe_json(args: argparse.Namespace, payload: dict) -> None:
    if getattr(args, "json", ""):
        import json

        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")


def _service_client(args: argparse.Namespace):
    """Connected client, or ``None`` when no endpoint is configured."""
    from repro.service import ServiceClient, endpoint_from_env

    endpoint = getattr(args, "endpoint", "") or endpoint_from_env()
    if not endpoint:
        return None
    return ServiceClient(endpoint, tenant=getattr(args, "tenant", "default"))


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import ProtocolError

    if args.drain:
        client = _service_client(args)
        if client is None:
            print("no endpoint: pass --endpoint or set REPRO_SERVICE")
            return 2
        try:
            reply = client.drain()
        except ProtocolError as exc:
            _print_service_error(exc)
            return 1
        except OSError as exc:
            print(f"cannot reach service at {client.endpoint}: {exc}")
            return 2
        print(
            f"draining: {reply.get('jobs_pending', 0)} job(s), "
            f"{reply.get('cells_pending', 0)} cell(s) still in flight; "
            "new submits now get a structured retry-after rejection"
        )
        return 0
    return asyncio.run(_serve_async(args))


async def _serve_async(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.parallel import ResultCache
    from repro.service import SweepService, parse_endpoint

    socket_path, host, port = args.socket, args.host, args.port
    if args.endpoint and not socket_path:
        try:
            kind, addr = parse_endpoint(args.endpoint)
        except ValueError as exc:
            print(exc)
            return 2
        if kind == "unix":
            socket_path = addr
        else:
            host, port = addr
    service = SweepService(
        state_dir=args.state_dir,
        cache=ResultCache(args.cache_dir) if args.cache_dir else None,
        workers=args.workers,
        max_queued_cells=args.max_queued,
        quantum=args.quantum,
        fsync=not args.no_fsync,
    )
    if socket_path:
        server = await service.serve_unix(socket_path)
        where = f"unix:{socket_path}"
    else:
        server = await service.serve_tcp(host, port)
        where = f"tcp:{host}:{port}"
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(sig, stop.set)
    print(
        f"tetris-write service on {where} "
        f"(state {service.state_dir}, {service.scheduler.workers} workers, "
        f"{len(service.jobs)} job(s) recovered)"
    )
    drained = asyncio.ensure_future(service.drained.wait())
    stopped = asyncio.ensure_future(stop.wait())
    try:
        await asyncio.wait(
            {drained, stopped}, return_when=asyncio.FIRST_COMPLETED
        )
    finally:
        for fut in (drained, stopped):
            fut.cancel()
        server.close()
        await server.wait_closed()
        await service.shutdown()
    print("service stopped" + (" (drained)" if service.drained.is_set() else ""))
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import ProtocolError, run_inprocess

    grid = _grid_from_args(args)
    client = _service_client(args)
    if client is None:
        reply = run_inprocess(
            grid,
            tenant=args.tenant,
            cache_dir=args.cache_dir or None,
            workers=args.workers,
        )
        print("no service endpoint: executed in process (degraded mode)")
        _print_job_reply(reply)
        _maybe_json(args, reply)
        return 1 if reply.get("failed") else 0
    try:
        reply = client.submit(grid)
        _print_job_reply(reply)
        if args.watch and reply.get("state") not in ("done", "cancelled"):
            for event in client.watch(reply["job"]):
                if event.get("event") == "progress":
                    _print_job_reply(event)
            reply = client.status(reply["job"])
            _print_job_reply(reply)
        _maybe_json(args, reply)
        return 1 if reply.get("failed") else 0
    except ProtocolError as exc:
        _print_service_error(exc)
        return 1
    except OSError as exc:
        print(f"cannot reach service at {client.endpoint}: {exc}")
        return 2


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.service import ProtocolError

    client = _service_client(args)
    if client is None:
        print("no endpoint: pass --endpoint or set REPRO_SERVICE")
        return 2
    try:
        reply = client.status(args.job or None)
    except ProtocolError as exc:
        _print_service_error(exc)
        return 1
    except OSError as exc:
        print(f"cannot reach service at {client.endpoint}: {exc}")
        return 2
    if args.job:
        _print_job_reply(reply)
    else:
        print(
            f"service: draining={reply.get('draining')} "
            f"workers={reply.get('workers')} "
            f"counters={reply.get('counters')}"
        )
        for job_id, snap in sorted(reply.get("jobs", {}).items()):
            _print_job_reply(snap)
    _maybe_json(args, reply)
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.service import ProtocolError

    client = _service_client(args)
    if client is None:
        print("no endpoint: pass --endpoint or set REPRO_SERVICE")
        return 2
    try:
        last = None
        for event in client.watch(args.job):
            _print_job_reply(event)
            last = event
    except ProtocolError as exc:
        _print_service_error(exc)
        return 1
    except OSError as exc:
        print(f"cannot reach service at {client.endpoint}: {exc}")
        return 2
    if last is not None:
        _maybe_json(args, last)
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    from repro.service import ProtocolError

    client = _service_client(args)
    if client is None:
        print("no endpoint: pass --endpoint or set REPRO_SERVICE")
        return 2
    try:
        reply = client.cancel(args.job)
    except ProtocolError as exc:
        _print_service_error(exc)
        return 1
    except OSError as exc:
        print(f"cannot reach service at {client.endpoint}: {exc}")
        return 2
    _print_job_reply(reply)
    _maybe_json(args, reply)
    return 0


def _split_schemes(tokens: list[str]) -> list[str]:
    """Flatten scheme arguments: both ``a b c`` and ``a,b,c`` spellings."""
    return [name for tok in tokens for name in tok.split(",") if name]


def _cmd_schemes(args: argparse.Namespace) -> int:
    from repro.config import default_config
    from repro.fastpath.pricer import PRICED_SCHEMES
    from repro.schemes import SCHEME_REGISTRY, get_scheme

    config = default_config()
    rows = []
    for name in sorted(SCHEME_REGISTRY):
        scheme = get_scheme(name, config)
        rows.append({
            "scheme": name,
            "requires_read": scheme.requires_read,
            "worst_case_units": scheme.worst_case_units(),
            "lane": "priced" if name in PRICED_SCHEMES else "des-only",
        })
    width = max(len(r["scheme"]) for r in rows)
    print(f"{'scheme':<{width}}  read  wc_units  fastpath")
    for r in rows:
        print(
            f"{r['scheme']:<{width}}  "
            f"{'yes ' if r['requires_read'] else 'no  '}  "
            f"{r['worst_case_units']:>8g}  "
            f"{r['lane']}"
        )
    _maybe_json(args, {"schemes": rows})
    return 0


def _cmd_oracle(args: argparse.Namespace) -> int:
    import json

    from repro.oracle.differential import run_differential
    from repro.oracle.metamorphic import run_metamorphic

    schemes = _split_schemes(args.schemes)
    report = run_differential(
        tuple(schemes) if schemes else None,
        cases=args.cases,
        seed=args.seed,
    )
    meta = run_metamorphic(trials=max(args.cases // 4, 50), seed=args.seed)

    lane_summary = ", ".join(
        f"{lane}: {n}" for lane, n in sorted(report.lane_cases.items())
    )
    print(
        f"differential: {report.cases} cases ({lane_summary}), "
        f"{len(report.divergences)} divergences"
    )
    for d in report.divergences[:20]:
        print(
            f"  DIVERGENCE {d.scheme}/{d.lane} [{d.kind}] "
            f"n_set={list(d.n_set)} n_reset={list(d.n_reset)} "
            f"analytic={d.analytic} reported={d.reported} "
            f"executed={d.executed} first_bad_unit={d.first_bad_unit}"
        )
    if len(report.divergences) > 20:
        print(f"  ... and {len(report.divergences) - 20} more")
    n_meta = sum(len(v) for v in meta["violations"].values())
    print(
        f"metamorphic: {meta['trials']} trials per relation over "
        f"{len(meta['violations'])} relations, {n_meta} violations"
    )
    for name, violations in sorted(meta["violations"].items()):
        for v in violations[:5]:
            print(f"  VIOLATION {name}: {v}")

    if args.json:
        payload = {"differential": report.to_dict(), "metamorphic": meta}
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")
    ok = report.ok and meta["ok"]
    print("oracle: OK" if ok else "oracle: FAILED")
    return 0 if ok else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report_gen import generate_report

    path = generate_report(
        args.out, requests_per_core=args.requests, seed=args.seed
    )
    print(f"wrote {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tetris-write",
        description="Reproduce the experiments of Tetris Write (ICPP 2016).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, workloads: bool = True) -> None:
        p.add_argument("--seed", type=int, default=20160816)
        p.add_argument("--requests", type=int, default=2000,
                       help="memory requests per core")
        if workloads:
            p.add_argument(
                "--workloads", nargs="+", default=list(WORKLOAD_NAMES),
                choices=list(WORKLOAD_NAMES),
            )

    p = sub.add_parser("fig3", help="bit-change characterization (Fig 3)")
    common(p)
    p.set_defaults(fn=_cmd_fig3)

    p = sub.add_parser("fig10", help="write units per write (Fig 10)")
    common(p)
    p.set_defaults(fn=_cmd_fig10)

    p = sub.add_parser("fullsystem", help="latency/IPC/runtime (Figs 11-14)")
    common(p)
    p.add_argument("--schemes", nargs="+", default=list(COMPARED_SCHEMES))
    p.add_argument("--pausing", action="store_true",
                   help="enable write pausing (refs [23-24])")
    p.add_argument("--coalescing", action="store_true",
                   help="enable write-queue coalescing")
    p.add_argument("--sjf", action="store_true",
                   help="drain writes shortest-predicted-service first")
    p.add_argument("--opportunistic", action="store_true",
                   help="serve writes opportunistically on idle banks")
    p.add_argument("--subarrays", type=int, default=1,
                   help="subarrays per bank (read-under-write bypass)")
    p.add_argument("--mlp", type=int, default=1,
                   help="outstanding reads per core (O3-like window)")
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool size (results identical to serial)")
    p.add_argument("--no-cache", action="store_true",
                   help="skip the on-disk result cache (or set REPRO_NO_CACHE)")
    p.set_defaults(fn=_cmd_fullsystem)

    p = sub.add_parser(
        "sweep", help="parallel cached scheme x workload sweep (docs/PERFORMANCE.md)"
    )
    common(p)
    p.add_argument("--schemes", nargs="+", default=list(COMPARED_SCHEMES))
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool size (results identical to serial)")
    p.add_argument("--no-cache", action="store_true",
                   help="skip the on-disk result cache (or set REPRO_NO_CACHE)")
    p.add_argument("--cache-dir", default="",
                   help="result-cache root (default: REPRO_CACHE_DIR or "
                        "~/.cache/tetris-write/results)")
    p.add_argument("--stats", action="store_true",
                   help="print a cache-store report instead of sweeping")
    p.add_argument("--clear-cache", action="store_true",
                   help="delete every cache entry instead of sweeping")
    p.add_argument("--json", default="",
                   help="also write rows + stats as JSON here")
    p.add_argument("--journal", default="",
                   help="checkpoint completed cells to this JSONL journal "
                        "(default with --resume: <cache-root>/sweep-journal.jsonl)")
    p.add_argument("--resume", action="store_true",
                   help="replay journaled cells instead of re-executing them "
                        "(docs/RESILIENCE.md)")
    p.add_argument("--max-retries", type=int, default=None,
                   help="per-cell retry budget beyond the first attempt")
    p.add_argument("--cell-deadline", type=float, default=None,
                   help="per-cell wall-clock deadline in seconds "
                        "(0 disables; default scales with --requests)")
    p.add_argument("--fastpath", default="auto", choices=["auto", "off", "force"],
                   help="analytic execution lane: auto routes envelope cells "
                        "through the oracle-certified pricer, off is DES "
                        "everywhere, force errors on out-of-envelope cells "
                        "(docs/PERFORMANCE.md)")
    p.add_argument("--recheck", type=float, default=None, metavar="FRACTION",
                   help="fraction of fastpath cells differentially re-run "
                        "through the DES (default 0.02, min 1 sample; "
                        "docs/ORACLE.md)")
    p.add_argument("--certificate", default="sweep-certificate.json",
                   help="write the per-run lane certificate here "
                        "('' disables; docs/ORACLE.md)")
    p.set_defaults(fn=_cmd_sweep)

    p = sub.add_parser(
        "journal", help="sweep-journal maintenance (docs/RESILIENCE.md)"
    )
    p.add_argument("action", choices=["stats", "compact"],
                   help="stats: rows / torn lines / code salts; compact: "
                        "atomically drop corrupt + duplicate lines")
    p.add_argument("--journal", default="",
                   help="journal path (default: <cache-root>/sweep-journal.jsonl)")
    p.add_argument("--cache-dir", default="",
                   help="cache root used for the default journal path")
    p.add_argument("--prune-stale", action="store_true",
                   help="with compact: also drop records journaled under "
                        "other code versions (StaleJournalError remedy)")
    p.set_defaults(fn=_cmd_journal)

    def service_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--endpoint", default="",
                       help="service endpoint, e.g. unix:/run/tw.sock or "
                            "tcp:127.0.0.1:7733 (default: REPRO_SERVICE)")
        p.add_argument("--tenant", default="default",
                       help="tenant name for admission + fair queueing")
        p.add_argument("--json", default="",
                       help="also write the final reply as JSON here")

    p = sub.add_parser(
        "serve", help="run the sweep job server (docs/SERVICE.md)"
    )
    p.add_argument("--socket", default="",
                   help="serve on this unix socket path")
    p.add_argument("--host", default="127.0.0.1",
                   help="TCP bind host (when no --socket)")
    p.add_argument("--port", type=int, default=7733,
                   help="TCP bind port (when no --socket)")
    p.add_argument("--state-dir", default=".tetris-service",
                   help="job + cell journals and default cache location")
    p.add_argument("--cache-dir", default="",
                   help="shared result-cache root (default: <state-dir>/cache)")
    p.add_argument("--workers", type=int, default=1,
                   help="supervised worker processes for cell execution")
    p.add_argument("--max-queued", type=int, default=512,
                   help="admission limit: queued cells per tenant")
    p.add_argument("--quantum", type=float, default=1.0,
                   help="deficit-round-robin quantum (cells per round)")
    p.add_argument("--no-fsync", action="store_true",
                   help="skip per-record journal fsync (tests only)")
    p.add_argument("--drain", action="store_true",
                   help="tell the running server (at --endpoint / "
                        "REPRO_SERVICE) to finish in-flight cells and "
                        "reject new submits with retry-after")
    p.add_argument("--endpoint", default="",
                   help="bind address (unix:PATH or tcp:HOST:PORT); "
                        "with --drain, the endpoint to drain")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "submit", help="submit a grid to the service (docs/SERVICE.md)"
    )
    common(p)
    p.add_argument("--schemes", nargs="+", default=list(COMPARED_SCHEMES))
    p.add_argument("--watch", action="store_true",
                   help="stream progress until the job finishes")
    p.add_argument("--workers", type=int, default=1,
                   help="workers for degraded in-process execution")
    p.add_argument("--cache-dir", default="",
                   help="cache root for degraded in-process execution")
    service_common(p)
    p.set_defaults(fn=_cmd_submit)

    p = sub.add_parser("status", help="service / job status (docs/SERVICE.md)")
    p.add_argument("job", nargs="?", default="",
                   help="job ID (omit for a whole-server summary)")
    service_common(p)
    p.set_defaults(fn=_cmd_status)

    p = sub.add_parser("watch", help="stream job progress (docs/SERVICE.md)")
    p.add_argument("job", help="job ID to watch")
    service_common(p)
    p.set_defaults(fn=_cmd_watch)

    p = sub.add_parser("cancel", help="cancel a queued job (docs/SERVICE.md)")
    p.add_argument("job", help="job ID to cancel")
    service_common(p)
    p.set_defaults(fn=_cmd_cancel)

    p = sub.add_parser(
        "cache", help="result-cache maintenance (docs/RESILIENCE.md)"
    )
    p.add_argument("action", choices=["stats", "verify", "gc", "clear"],
                   help="stats: store report; verify: integrity audit "
                        "(quarantines corrupt entries); gc: drop stale + "
                        "quarantined entries; clear: delete everything")
    p.add_argument("--cache-dir", default="",
                   help="result-cache root (default: REPRO_CACHE_DIR or "
                        "~/.cache/tetris-write/results)")
    p.set_defaults(fn=_cmd_cache)

    p = sub.add_parser("diagram", help="chip-level timing diagram (Fig 4)")
    p.add_argument("--seed", type=int, default=20160816)
    p.add_argument("--fig4", action="store_true",
                   help="use the paper's worked example numbers")
    p.set_defaults(fn=_cmd_diagram)

    p = sub.add_parser("trace", help="generate and save a workload trace")
    common(p, workloads=False)
    p.add_argument("--workload", default="dedup", choices=list(WORKLOAD_NAMES))
    p.add_argument("--out", default="")
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser("stats", help="characterize a saved trace file")
    p.add_argument("trace_file")
    p.set_defaults(fn=_cmd_stats)

    p = sub.add_parser(
        "oracle",
        help="differential + metamorphic oracle run (docs/ORACLE.md)",
    )
    p.add_argument("--seed", type=int, default=20160816)
    p.add_argument("--cases", type=int, default=500,
                   help="random demand-vector volume (grids/corners always run)")
    p.add_argument("--schemes", nargs="+", default=[],
                   help="restrict the write lane (space- or comma-separated; "
                        "default: every registered scheme)")
    p.add_argument("--json", default="",
                   help="write the full divergence report as JSON here")
    p.set_defaults(fn=_cmd_oracle)

    p = sub.add_parser(
        "schemes", help="list registered write schemes and their fastpath lane"
    )
    p.add_argument("--json", default="",
                   help="also write the table as JSON here")
    p.set_defaults(fn=_cmd_schemes)

    p = sub.add_parser("report", help="run everything into a Markdown report")
    common(p, workloads=False)
    p.add_argument("--out", default="REPORT.md")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("faults", help="fault-injection sweep / wear-out curve")
    common(p, workloads=False)
    p.add_argument("--workload", default="dedup", choices=list(WORKLOAD_NAMES))
    p.add_argument("--schemes", nargs="+", default=["dcw", "tetris"])
    p.add_argument("--rates", nargs="+", type=float,
                   default=[0.0, 1e-4, 1e-3, 1e-2],
                   help="transient per-bit program-failure rates to sweep")
    p.add_argument("--wearout", action="store_true",
                   help="hammer lines to chart the ECP/retirement cascade")
    p.add_argument("--endurance", type=float, default=60.0,
                   help="mean cell endurance for the --wearout hammer")
    p.set_defaults(fn=_cmd_faults)

    p = sub.add_parser(
        "obs", help="record a Perfetto-loadable trace (docs/OBSERVABILITY.md)"
    )
    common(p, workloads=False)
    p.add_argument("--scheme", default="tetris", choices=list(COMPARED_SCHEMES))
    p.add_argument("--writes", type=int, default=32,
                   help="writes in the standalone bank loop")
    p.add_argument("--fullsystem", action="store_true",
                   help="trace a short functional full-system slice instead")
    p.add_argument("--workload", default="dedup", choices=list(WORKLOAD_NAMES))
    p.add_argument("--out", default="trace.json",
                   help="Chrome trace-event JSON output path")
    p.add_argument("--flamegraph", default="",
                   help="also write flamegraph collapsed stacks here")
    p.add_argument("--metrics", default="",
                   help="also write the nested metric registry JSON here")
    p.set_defaults(fn=_cmd_obs)

    p = sub.add_parser("ablation", help="parameter sensitivity sweeps")
    common(p, workloads=False)
    p.add_argument("--workload", default="dedup", choices=list(WORKLOAD_NAMES))
    p.add_argument("--sweep", default="budget",
                   choices=["budget", "K", "L", "width", "flip"])
    p.set_defaults(fn=_cmd_ablation)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
