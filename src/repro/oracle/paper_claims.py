"""Golden ledger of the paper's numeric claims, with tolerances.

One place pinning every number the reproduction asserts against the
paper — Table II's device parameters, the Equation 1-4 constants they
imply, and the Figure 3/10/11-14 headline bands — instead of magic
literals scattered through ad-hoc test asserts.  ``tests/
test_paper_claims.py`` reads its bands from here, the differential
oracle cross-checks the equation constants against
:mod:`repro.oracle.analytic`, and anyone re-tuning the substrate can
see at a glance which claim a failing band encodes.

Bands are *reproduction* tolerances: the paper reports point values
measured on its simulator; our substituted substrate (DESIGN.md §4)
reproduces shapes and rough magnitudes, so each claim carries the
``paper`` point value (where the paper states one) plus the ``low`` /
``high`` band the reproduction must land in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Claim", "CLAIMS", "RANKINGS", "band", "check", "expect"]


@dataclass(frozen=True)
class Claim:
    """One pinned number: the paper's value and our acceptance band."""

    name: str
    low: float
    high: float
    paper: float | None = None   # the point value the paper states, if any
    source: str = ""             # table / figure / section in the paper
    note: str = ""

    def holds(self, value: float) -> bool:
        return self.low - 1e-12 <= value <= self.high + 1e-12

    def describe(self, value: float) -> str:
        ref = f" (paper: {self.paper})" if self.paper is not None else ""
        return (
            f"{self.name} = {value} outside [{self.low}, {self.high}]"
            f"{ref} — {self.source}: {self.note}"
        )


def _exact(name: str, value: float, source: str, note: str = "") -> Claim:
    return Claim(name, value, value, paper=value, source=source, note=note)


CLAIMS: dict[str, Claim] = {c.name: c for c in [
    # ---- Table II: device / system parameters (exact by construction).
    _exact("t_set_ns", 430.0, "Table II", "SET pulse duration"),
    _exact("t_reset_ns", 53.0, "Table II", "RESET pulse duration"),
    _exact("t_read_ns", 50.0, "Table II", "array read latency"),
    _exact("K", 8.0, "Table II", "time asymmetry floor(Tset/Treset)"),
    _exact("L", 2.0, "Table II", "RESET/SET current ratio"),
    _exact("chip_power_budget", 32.0, "Table II",
           "concurrent SET-equivalent programs per chip"),
    _exact("bank_power_budget", 128.0, "§IV",
           "GCP pools four chips' budgets"),
    _exact("data_unit_bits", 64.0, "§III.B", "analysis granularity"),
    _exact("analysis_overhead_ns", 102.5, "§IV.D",
           "41 analyzer cycles at 400 MHz"),
    # ---- Equations 1-4 at the Table II point, in t_set units.
    _exact("eq1_conventional_units", 8.0, "Eq. 1", "N/M write units"),
    _exact("eq2_flip_n_write_units", 4.0, "Eq. 2", "(N/M)/2"),
    _exact("eq3_two_stage_units", 3.0, "Eq. 3", "(1/K + 1/2L) * N/M"),
    _exact("eq4_three_stage_units", 2.5, "Eq. 4", "(1/2K + 1/2L) * N/M"),
    # ---- Figure 3 / Observation 1-2: bit-write statistics.
    Claim("fig3_mean_bit_writes", 7.0, 12.0, paper=9.6, source="Fig. 3",
          note="mean programmed cells per 64-bit unit, all workloads"),
    Claim("fig3_blackscholes_total", 0.0, 4.0, source="Fig. 3",
          note="lightest workload programs very few cells"),
    Claim("fig3_vips_total", 14.0, math.inf, source="Fig. 3",
          note="heaviest workload programs many cells"),
    Claim("fig3_set_share_5050", 0.45, 0.62, paper=0.5, source="Fig. 3",
          note="ferret/vips split SETs and RESETs roughly evenly"),
    # ---- Figure 10: measured Tetris write units.
    Claim("fig10_tetris_units", 0.95, 1.6, paper=1.26, source="Fig. 10",
          note="per-workload average, 1.06-1.46 in the paper"),
    # ---- Figures 11-14: normalized-to-DCW magnitudes (heavy workloads).
    Claim("fig11_tetris_runtime", 0.0, 0.70, paper=0.54, source="Fig. 11",
          note="mean normalized running time (46% reduction)"),
    Claim("fig12_tetris_ipc", 1.5, math.inf, paper=2.0, source="Fig. 12",
          note="mean normalized IPC improvement (~2x)"),
    Claim("fig13_tetris_read_latency", 0.0, 0.5, paper=0.35,
          source="Fig. 13", note="mean normalized read latency"),
    Claim("light_write_latency_ratio", 0.85, math.inf, source="§V.B.3",
          note="blackscholes/swaptions see little write-latency gain"),
    # ---- Scheme zoo: cross-paper expectation bands (PAPERS.md).  The
    # source papers evaluate on their own simulators; these bands pin
    # the *guarantees* each scheme carries over to our substrate.
    _exact("wire_units", 4.0, "WIRE (arXiv:2511.04928) §III",
           "keeps Flip-N-Write's Eq. 2 timing; only energy moves"),
    Claim("wire_energy_vs_fnw", 0.0, 1.0,
          source="WIRE (arXiv:2511.04928) §III",
          note="per-line write energy ratio vs Flip-N-Write: cost-min "
               "choice over a feasible set containing FNW's choice"),
    Claim("datacon_units_vs_conventional", 0.0, 1.0,
          source="DATACON (arXiv:2005.04753) §4",
          note="write-stage ratio vs Eq. 1: only dirty units program, "
               "a fully dirty line degenerates to Conventional"),
    Claim("datacon_mean_units", 0.5, 8.0,
          source="DATACON (arXiv:2005.04753) §6",
          note="mean dirty write units per line on PARSEC-like traces "
               "(8 = fully dirty; silent-heavy workloads go low)"),
    Claim("palp_units_vs_tetris", 0.0, 1.0,
          source="PALP (arXiv:1908.07966) §5",
          note="service ratio vs single-partition Tetris: controller "
               "prices both plans and issues the cheaper one"),
]}


#: Figures 11-14: the per-metric scheme orderings every workload shows.
#: Listed best-first; "ascending" metrics improve downward (latency,
#: runtime), "descending" improve upward (IPC).
RANKINGS: dict[str, dict] = {
    "read_latency": {
        "order": ("tetris", "three_stage", "two_stage", "flip_n_write"),
        "direction": "ascending",
        "source": "Fig. 13",
    },
    "write_latency": {
        "order": ("tetris", "three_stage", "two_stage"),
        "direction": "ascending",
        "strict": False,  # three_stage <= two_stage may tie
        "source": "Fig. 14",
    },
    "ipc_improvement": {
        "order": ("tetris", "three_stage", "two_stage", "flip_n_write"),
        "direction": "descending",
        "source": "Fig. 12",
    },
    "running_time": {
        "order": ("tetris", "three_stage", "two_stage", "flip_n_write"),
        "direction": "ascending",
        "source": "Fig. 11",
    },
}


def band(name: str) -> Claim:
    """Look up a claim; KeyError lists the ledger on a bad name."""
    try:
        return CLAIMS[name]
    except KeyError:
        raise KeyError(
            f"no claim named {name!r}; ledger has: {sorted(CLAIMS)}"
        ) from None


def check(name: str, value: float) -> bool:
    return band(name).holds(value)


def expect(name: str, value: float) -> None:
    """Assert-style helper: raise with the claim's provenance on miss."""
    claim = band(name)
    if not claim.holds(value):
        raise AssertionError(claim.describe(value))
