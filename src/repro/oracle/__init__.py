"""Differential oracle: independent models cross-checked against the DES.

Three pillars (see docs/ORACLE.md):

* :mod:`repro.oracle.analytic` — closed-form Eqs. 1-5 written only from
  the paper, sharing no code with the production schemes (simlint SL010
  enforces the independence);
* :mod:`repro.oracle.differential` — for every registered scheme,
  generated demand vectors serviced three ways (analytic, reported,
  DES-executed) with structured :class:`Divergence` records on mismatch;
* :mod:`repro.oracle.metamorphic` — relations that need no ground truth
  (permutation invariance, bounded extension, pointwise dominance);
* :mod:`repro.oracle.paper_claims` — the golden ledger of Table II
  constants and figure bands the test suite asserts against.

CLI: ``tetris-write oracle [--schemes ... --cases N --json PATH]``.
"""

from repro.oracle.analytic import OperatingPoint
from repro.oracle.differential import (
    DifferentialReport,
    Divergence,
    run_differential,
)
from repro.oracle.metamorphic import RELATIONS, run_metamorphic
from repro.oracle.paper_claims import CLAIMS, RANKINGS, Claim

__all__ = [
    "CLAIMS",
    "Claim",
    "DifferentialReport",
    "Divergence",
    "OperatingPoint",
    "RANKINGS",
    "RELATIONS",
    "run_differential",
    "run_metamorphic",
]
