"""Differential harness: analytic model vs scheme report vs DES execution.

For every registered write scheme this module generates demand vectors
(exhaustive small grids, seeded random draws, adversarial corners),
services them three independent ways and asserts the answers agree:

1. **analytic** — the closed-form / independently-implemented models of
   :mod:`repro.oracle.analytic` (Eqs. 1-5 straight from the paper);
2. **reported** — what the production scheme's ``WriteOutcome`` says;
3. **executed** — the latency observed by actually *running* the write's
   phases and scheduled bursts as events on the discrete-event simulator
   and reading the clock when the last one fires.

Any mismatch becomes a structured :class:`Divergence` record carrying the
scheme, the demand vector, all three values and the first write unit at
which the timelines part ways — enough to turn straight into a pinned
regression fixture under ``tests/fixtures/oracle/``.

Two lanes:

* the **scheduler lane** drives ``TetrisScheduler`` (and the batch packer
  and generalized packer) directly at several (K, L, budget) operating
  points, including budgets small enough to force burst splitting —
  corners the paper-point write path can never reach;
* the **write lane** drives all eight registered schemes end-to-end at
  the paper configuration, realizing each demand vector as an actual
  ``(stored image, new data)`` pair.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.config import SystemConfig, default_config
from repro.core.analysis import TetrisScheduler
from repro.core.batch import pack_batch
from repro.core.generalized import (
    BurstClass,
    GeneralizedSchedule,
    GeneralizedScheduler,
)
from repro.core.schedule import TetrisSchedule
from repro.oracle import analytic
from repro.pcm.state import LineState
from repro.schemes import SCHEME_REGISTRY, get_scheme
from repro.sim.engine import Simulator

__all__ = [
    "Divergence",
    "DifferentialReport",
    "des_execute_schedule",
    "des_execute_generalized",
    "des_execute_phases",
    "generate_vectors",
    "run_differential",
    "SCHEDULER_POINTS",
]

_TOL = 1e-9

#: Scheduler-lane operating points.  The paper's bank point first; then
#: budgets shrunk until bursts must split (at the default config a unit
#: can draw at most 64*L = 128 = the whole bank budget, so over-budget
#: corners only exist at reduced budgets), a fractional-ratio point
#: where the historical rounding bug lived, and K sweeps.
SCHEDULER_POINTS: tuple[tuple[int, float, float], ...] = (
    (8, 2.0, 128.0),
    (8, 2.0, 16.0),
    (4, 1.5, 6.5),
    (16, 2.0, 12.0),
    (8, 3.0, 9.0),
)


# ----------------------------------------------------------------------
# Divergence records.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Divergence:
    """One disagreement between the three service-time answers."""

    scheme: str
    lane: str                 # "scheduler" | "write" | "batch" | "relaxed"
    kind: str                 # which pair disagreed, or which invariant broke
    point: dict               # the operating point (K, L, budget, ...)
    n_set: tuple[int, ...]
    n_reset: tuple[int, ...]
    analytic: float | None
    reported: float | None
    executed: float | None
    first_bad_unit: int | None
    detail: str = ""

    def to_dict(self) -> dict:
        return asdict(self)


def _first_bad_unit(*values: float | None) -> int | None:
    """First write unit where the timelines can differ: the floor of the
    smallest diverging completion (they agree up to the shorter one)."""
    present = [v for v in values if v is not None]
    if len(present) < 2 or max(present) - min(present) <= _TOL:
        return None
    return int(min(present))


@dataclass
class DifferentialReport:
    """Aggregate outcome of one :func:`run_differential` run."""

    cases: int = 0
    seed: int = 0
    schemes: list[str] = field(default_factory=list)
    lane_cases: dict = field(default_factory=dict)
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def to_dict(self) -> dict:
        return {
            "cases": self.cases,
            "seed": self.seed,
            "schemes": list(self.schemes),
            "lane_cases": dict(self.lane_cases),
            "ok": self.ok,
            "divergences": [d.to_dict() for d in self.divergences],
        }


# ----------------------------------------------------------------------
# DES replay: turn schedules / phase plans into simulator events.
# ----------------------------------------------------------------------
def des_execute_schedule(sched: TetrisSchedule, t_set_ns: float) -> float:
    """Replay an Algorithm-2 schedule on the DES; return the completion.

    One event per scheduled burst at its end time — a write-1 in write
    unit ``j`` ends at ``(j+1) * t_set``, a write-0 in global sub-slot
    ``s`` ends at ``(s+1) * t_set/K`` — and the write completes when the
    last event fires.  Independent of ``service_units()``'s arithmetic:
    if Eq. 5's bookkeeping ever declares slots no burst occupies (the
    phantom-capacity bug) the replayed clock disagrees.
    """
    sim = Simulator()
    t_sub = t_set_ns / sched.K
    done = [0.0]

    def _finish(end_ns: float) -> None:
        done[0] = max(done[0], end_ns)

    for op in sched.write1_queue:
        sim.at((op.slot + 1) * t_set_ns, _finish, (op.slot + 1) * t_set_ns)
    for op in sched.write0_queue:
        sim.at((op.slot + 1) * t_sub, _finish, (op.slot + 1) * t_sub)
    sim.run()
    return done[0]


def des_execute_generalized(sched: GeneralizedSchedule) -> float:
    """Replay a generalized (unaligned) schedule; return the completion."""
    sim = Simulator()
    done = [0.0]

    def _finish(end_ns: float) -> None:
        done[0] = max(done[0], end_ns)

    for b in sched.bursts:
        end = b.end_subslot * sched.sub_slot_ns
        sim.at(end, _finish, end)
    sim.run()
    return done[0]


def des_execute_phases(phases: Sequence[float]) -> float:
    """Replay a fixed-latency write as chained phase events; return the end.

    Each phase's completion event schedules the next phase, so the final
    clock reading exercises the simulator's ordering rather than just
    summing the list.
    """
    sim = Simulator()
    remaining = [float(p) for p in phases if p > 0]

    def _next() -> None:
        if remaining:
            sim.schedule(remaining.pop(0), _next)

    sim.at(0.0, _next)
    sim.run()
    return sim.now


# ----------------------------------------------------------------------
# Demand-vector generation.
# ----------------------------------------------------------------------
def _corner_vectors(
    units: int, K: int, L: float, budget: float, max_per_unit: int
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Adversarial corners for one operating point."""
    zeros = np.zeros(units, dtype=np.int64)
    # All-zero demand (silent write): must cost exactly zero.
    yield zeros.copy(), zeros.copy()
    # SET-only and RESET-only lines.
    full = np.full(units, max_per_unit, dtype=np.int64)
    yield full.copy(), zeros.copy()
    yield zeros.copy(), full.copy()
    # Single-unit demand over the budget in both passes (forces a split
    # when the budget allows fewer than max_per_unit cells).
    over1 = zeros.copy()
    over1[0] = max_per_unit
    yield over1, zeros.copy()
    yield zeros.copy(), over1.copy()
    # K-tail: a RESET count whose burst chunks leave a remainder chunk
    # (K not dividing the overflow tail) plus an odd straggler unit.
    cells_per_chunk = max(int(budget // L), 1)
    tail = zeros.copy()
    tail[0] = cells_per_chunk * K + 1
    if units > 1:
        tail[-1] = 1
    yield zeros.copy(), np.minimum(tail, max_per_unit)
    # Budget-boundary: exactly one cell below / at the split threshold.
    edge = zeros.copy()
    edge[0] = min(cells_per_chunk, max_per_unit)
    yield edge.copy(), edge.copy()


def _grid_vectors(
    units: int, max_count: int
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Exhaustive (n_set, n_reset) grid over small vectors."""
    ranges = [range(max_count + 1)] * units
    import itertools

    for s in itertools.product(*ranges):
        for r in itertools.product(*ranges):
            yield (
                np.array(s, dtype=np.int64),
                np.array(r, dtype=np.int64),
            )


def generate_vectors(
    rng: np.random.Generator,
    *,
    units: int,
    max_per_unit: int,
    K: int,
    L: float,
    budget: float,
    n_random: int,
    grid: bool = True,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """The full vector set for one lane/point: grid + corners + random."""
    out: list[tuple[np.ndarray, np.ndarray]] = []
    if grid:
        # Exhaustive over the first two units; remaining units quiet so
        # every vector in a lane shares one shape (batch cross-check).
        pad = np.zeros(units, dtype=np.int64)
        for s, r in _grid_vectors(min(units, 2), 3):
            full_s, full_r = pad.copy(), pad.copy()
            full_s[: s.size] = s
            full_r[: r.size] = r
            out.append((full_s, full_r))
    out.extend(_corner_vectors(units, K, L, budget, max_per_unit))
    for _ in range(n_random):
        total = rng.integers(0, max_per_unit + 1, size=units)
        split = rng.integers(0, total + 1)
        out.append(
            (split.astype(np.int64), (total - split).astype(np.int64))
        )
    return out


# ----------------------------------------------------------------------
# Lane 1: the scheduler, batch packer and generalized packer.
# ----------------------------------------------------------------------
def _check_scheduler_point(
    K: int,
    L: float,
    budget: float,
    vectors: Iterable[tuple[np.ndarray, np.ndarray]],
    divergences: list[Divergence],
) -> int:
    point = analytic.OperatingPoint(
        K=K, L=L, budget=budget, data_units=8, write_units=8
    )
    point_dict = {"K": K, "L": L, "budget": budget}
    scheduler = TetrisScheduler(K, L, budget, allow_split=True)
    t_set = 430.0
    checked = 0
    batch_set: list[np.ndarray] = []
    batch_reset: list[np.ndarray] = []
    batch_reported: list[tuple[int, int]] = []

    for n_set, n_reset in vectors:
        checked += 1
        sched = scheduler.schedule(n_set, n_reset)
        reported = sched.service_units()
        a_result, a_subresult = analytic.tetris_pack(
            n_set.tolist(), n_reset.tolist(), point
        )
        expected = a_result + a_subresult / K
        executed = des_execute_schedule(sched, t_set) / t_set
        base = dict(
            scheme="tetris_scheduler",
            lane="scheduler",
            point=point_dict,
            n_set=tuple(int(x) for x in n_set),
            n_reset=tuple(int(x) for x in n_reset),
            analytic=expected,
            reported=reported,
            executed=executed,
            first_bad_unit=_first_bad_unit(expected, reported, executed),
        )
        if abs(reported - expected) > _TOL:
            divergences.append(Divergence(
                kind="reported_vs_analytic",
                detail=f"scheduler (result={sched.result}, subresult="
                       f"{sched.subresult}) vs oracle ({a_result}, {a_subresult})",
                **base,
            ))
        if abs(reported - executed) > _TOL:
            divergences.append(Divergence(
                kind="reported_vs_executed",
                detail="Eq. 5 bookkeeping disagrees with the replayed bursts",
                **base,
            ))
        batch_set.append(n_set)
        batch_reset.append(n_reset)
        batch_reported.append((sched.result, sched.subresult))

        # Relaxed lane at the same point: generalized packer vs the
        # independent unaligned oracle, and its DES replay.
        gsched = GeneralizedScheduler(budget, t_set / K).schedule({
            BurstClass("write1", K, 1.0): n_set,
            BurstClass("write0", 1, L): n_reset,
        })
        g_reported = gsched.total_subslots / K
        g_expected = analytic.tetris_relaxed_units(
            n_set.tolist(), n_reset.tolist(), point
        )
        g_executed = des_execute_generalized(gsched) / t_set
        if abs(g_reported - g_expected) > _TOL or abs(g_reported - g_executed) > _TOL:
            divergences.append(Divergence(
                scheme="generalized_scheduler",
                lane="relaxed",
                kind="reported_vs_analytic"
                if abs(g_reported - g_expected) > _TOL
                else "reported_vs_executed",
                point=point_dict,
                n_set=tuple(int(x) for x in n_set),
                n_reset=tuple(int(x) for x in n_reset),
                analytic=g_expected,
                reported=g_reported,
                executed=g_executed,
                first_bad_unit=_first_bad_unit(g_expected, g_reported, g_executed),
                detail="unaligned packer vs independent earliest-fit oracle",
            ))

    # Batch cross-check: the vectorized packer must agree vector-by-vector.
    ns = np.stack(batch_set)
    nr = np.stack(batch_reset)
    bres = pack_batch(ns, nr, K=K, L=L, power_budget=budget, allow_split=True)
    for i, (r, s) in enumerate(batch_reported):
        if int(bres.result[i]) != r or int(bres.subresult[i]) != s:
            divergences.append(Divergence(
                scheme="batch_packer",
                lane="batch",
                kind="batch_vs_scalar",
                point=point_dict,
                n_set=tuple(int(x) for x in batch_set[i]),
                n_reset=tuple(int(x) for x in batch_reset[i]),
                analytic=r + s / K,
                reported=float(bres.result[i] + bres.subresult[i] / K),
                executed=None,
                first_bad_unit=_first_bad_unit(
                    r + s / K, float(bres.result[i] + bres.subresult[i] / K)
                ),
                detail=f"scalar ({r}, {s}) vs batch "
                       f"({int(bres.result[i])}, {int(bres.subresult[i])})",
            ))
    return checked


# ----------------------------------------------------------------------
# Lane 2: every registered scheme, end to end at the paper point.
# ----------------------------------------------------------------------
def _realize(
    n_set: np.ndarray, n_reset: np.ndarray, unit_bits: int
) -> tuple[LineState, np.ndarray]:
    """Build a ``(stored image, new data)`` pair whose read stage yields
    exactly the requested per-unit program counts.

    Old image: ones in bit positions ``[0, n_reset)``.  New data: ones in
    ``[n_reset, n_reset + n_set)``.  With a clear flip tag the straight
    Hamming distance is ``n_set + n_reset <= unit_bits // 2``, so the
    flip rule keeps the straight encoding and the diff reproduces the
    demand exactly.
    """
    total = n_set + n_reset
    if int(total.max(initial=0)) > unit_bits // 2:
        raise ValueError("vector not realizable without triggering a flip")

    def _ones(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        out = np.zeros(lo.shape, dtype=np.uint64)
        for i in range(lo.size):
            val = 0
            for b in range(int(lo[i]), int(hi[i])):
                val |= 1 << b
            out[i] = val
        return out

    zeros = np.zeros_like(n_reset)
    old = _ones(zeros, n_reset)
    new = _ones(n_reset, n_reset + n_set)
    state = LineState(
        physical=old, flip=np.zeros(old.shape, dtype=bool)
    )
    return state, new


def _analytic_units_for(
    scheme: str,
    point: analytic.OperatingPoint,
    n_set: np.ndarray,
    n_reset: np.ndarray,
    new_logical: np.ndarray,
) -> float:
    n_zero = None
    if scheme == "preset":
        mask = (1 << point.unit_bits) - 1
        n_zero = [
            point.unit_bits - bin(int(u) & mask).count("1") for u in new_logical
        ]
    return analytic.scheme_units(
        scheme, point,
        n_set=n_set.tolist(), n_reset=n_reset.tolist(), n_zero=n_zero,
    )


def _executed_write_ns(scheme_obj, config: SystemConfig) -> float | None:
    """DES-replay the write stage the scheme actually scheduled."""
    sched = getattr(scheme_obj, "last_schedule", None)
    if isinstance(sched, TetrisSchedule):
        return des_execute_schedule(sched, config.timings.t_set_ns)
    if isinstance(sched, GeneralizedSchedule):
        return des_execute_generalized(sched)
    return None


def _check_write_scheme(
    name: str,
    config: SystemConfig,
    vectors: Iterable[tuple[np.ndarray, np.ndarray]],
    divergences: list[Divergence],
) -> int:
    point = analytic.OperatingPoint.from_config(config)
    point_dict = {
        "K": point.K, "L": point.L, "budget": point.budget,
        "config": "paper",
    }
    t_set = config.timings.t_set_ns
    checked = 0
    half = config.data_unit_bits // 2
    for n_set, n_reset in vectors:
        checked += 1
        # Clamp to the flip rule's guarantee: post-flip, at most half a
        # unit's cells are programmed, so anything beyond that is not a
        # vector the read stage can ever hand the scheme.
        n_set = np.minimum(n_set, half)
        n_reset = np.minimum(n_reset, half - n_set)
        state, new = _realize(n_set, n_reset, config.data_unit_bits)
        scheme = get_scheme(name, config)
        out = scheme.write(state, new)

        expected_units = _analytic_units_for(name, point, n_set, n_reset, new)
        expected_service = analytic.service_ns(name, expected_units, point)

        write_ns = _executed_write_ns(scheme, config)
        if write_ns is None:
            # Fixed-latency scheme: replay its phase plan.
            write_ns = des_execute_phases([out.units * t_set])
        executed_service = des_execute_phases(
            [out.read_ns, out.analysis_ns]
        ) + write_ns

        base = dict(
            scheme=name,
            lane="write",
            point=point_dict,
            n_set=tuple(int(x) for x in n_set),
            n_reset=tuple(int(x) for x in n_reset),
        )
        if abs(out.units - expected_units) > _TOL:
            divergences.append(Divergence(
                kind="reported_vs_analytic",
                analytic=expected_units,
                reported=out.units,
                executed=write_ns / t_set,
                first_bad_unit=_first_bad_unit(expected_units, out.units),
                detail="write-stage units disagree with the Eq. 1-5 model",
                **base,
            ))
        if abs(out.service_ns - expected_service) > _TOL:
            divergences.append(Divergence(
                kind="service_vs_analytic",
                analytic=expected_service,
                reported=out.service_ns,
                executed=executed_service,
                first_bad_unit=_first_bad_unit(
                    expected_service / t_set, out.service_ns / t_set
                ),
                detail="service composition (read+analysis+write) diverged",
                **base,
            ))
        if abs(out.service_ns - executed_service) > _TOL:
            divergences.append(Divergence(
                kind="reported_vs_executed",
                analytic=expected_service,
                reported=out.service_ns,
                executed=executed_service,
                first_bad_unit=_first_bad_unit(
                    out.service_ns / t_set, executed_service / t_set
                ),
                detail="DES-replayed phases finish at a different clock",
                **base,
            ))
    return checked


# ----------------------------------------------------------------------
# Entry point.
# ----------------------------------------------------------------------
def run_differential(
    schemes: Sequence[str] | None = None,
    *,
    cases: int = 500,
    seed: int = 0,
    config: SystemConfig | None = None,
) -> DifferentialReport:
    """Run both lanes; return a report with every divergence found.

    ``cases`` scales the *random* vector volume (the exhaustive grids
    and corner cases always run).  Roughly half the random budget goes
    to the scheduler lane (split across its operating points), half to
    the write lane (split across the schemes).
    """
    if schemes is None:
        schemes = sorted(SCHEME_REGISTRY)
    unknown = set(schemes) - set(SCHEME_REGISTRY)
    if unknown:
        raise KeyError(f"unknown schemes: {sorted(unknown)}")
    config = config if config is not None else default_config()
    rng = np.random.default_rng(seed)
    report = DifferentialReport(seed=seed, schemes=list(schemes))

    # Lane 1: scheduler operating points.
    per_point = max(cases // (2 * len(SCHEDULER_POINTS)), 4)
    n_sched = 0
    for K, L, budget in SCHEDULER_POINTS:
        vectors = generate_vectors(
            rng, units=8, max_per_unit=32, K=K, L=L, budget=budget,
            n_random=per_point,
        )
        n_sched += _check_scheduler_point(
            K, L, budget, vectors, report.divergences
        )
    report.lane_cases["scheduler"] = n_sched

    # Lane 2: end-to-end schemes at the paper configuration.  Vectors
    # must stay realizable (<= unit_bits/2 programs per unit post-flip).
    half = config.data_unit_bits // 2
    per_scheme = max(cases // (2 * len(schemes)), 4)
    n_write = 0
    for name in schemes:
        vectors = generate_vectors(
            rng, units=config.data_units_per_line, max_per_unit=half,
            K=config.K, L=config.L, budget=config.bank_power_budget,
            n_random=per_scheme,
        )
        n_write += _check_write_scheme(
            name, config, vectors, report.divergences
        )
    report.lane_cases["write"] = n_write
    report.cases = n_sched + n_write
    return report
