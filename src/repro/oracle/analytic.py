"""Independent analytic service-time models: paper Equations 1-5.

This module is the *oracle half* of the differential harness
(``repro.oracle.differential``): closed-form write-stage lengths for the
four baselines (Eqs. 1-4), an independently written Algorithm-2 packer
for Tetris Write (Eq. 5), and the matching unaligned packer for the
``tetris_relaxed`` extension.  Everything is written from the paper text
alone and deliberately shares **no code** with the production schemes.

Independence contract (enforced by simlint rule SL010): this module must
not import anything from ``repro.schemes``, ``repro.core``,
``repro.pcm``, ``repro.sim`` or ``repro.config``.  If the production
scheduler and this packer ever agree on a wrong answer, it must be
because both independently implement the paper wrongly — not because one
calls the other.

All models are parameterized by an :class:`OperatingPoint`
``(K, L, budget, data_units, ...)`` and, for the content-aware schemes,
by per-unit demand vectors ``n_set`` / ``n_reset``.

Equation reference (PAPER.md):

* Eq. 1 — Conventional / DCW: ``T = (N/M) * Tset``
* Eq. 2 — Flip-N-Write:       ``T = Tread + (N/M)/2 * Tset``
* Eq. 3 — 2-Stage-Write:      ``T = (1/K + 1/2L) * (N/M) * Tset``
* Eq. 4 — 3-Stage-Write:      ``T = Tread + (1/2K + 1/2L) * (N/M) * Tset``
* Eq. 5 — Tetris Write:       ``T = (result + subresult/K) * Tset``
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

__all__ = [
    "OperatingPoint",
    "conventional_units",
    "dcw_units",
    "flip_n_write_units",
    "two_stage_units",
    "three_stage_units",
    "tetris_pack",
    "tetris_units",
    "tetris_relaxed_subslots",
    "tetris_relaxed_units",
    "preset_units",
    "wire_units",
    "datacon_units",
    "palp_units",
    "worst_case_units",
    "service_ns",
]


@dataclass(frozen=True)
class OperatingPoint:
    """The paper's operating parameters, decoupled from ``SystemConfig``.

    ``write_units`` is the paper's ``N/M`` — how many sequential write
    units a cache line needs under the conventional scheme (Eqs. 1-4).
    ``data_units`` is the number of demand-vector entries the analysis
    stage schedules (Eq. 5); both are 8 at the paper's Table II point
    but diverge in the mobile configurations (smaller write units, same
    64-bit data units).
    """

    K: int = 8
    L: float = 2.0
    budget: float = 128.0
    data_units: int = 8
    write_units: int = 8
    unit_bits: int = 64
    t_read_ns: float = 50.0
    t_set_ns: float = 430.0
    analysis_ns: float = 102.5

    def __post_init__(self) -> None:
        if self.K < 1:
            raise ValueError("K must be >= 1")
        if self.L <= 0 or self.budget <= 0:
            raise ValueError("L and budget must be positive")
        if self.data_units < 1 or self.write_units < 1 or self.unit_bits < 1:
            raise ValueError("unit counts must be positive")

    @staticmethod
    def from_config(config) -> "OperatingPoint":
        """Build a point from a ``SystemConfig``-shaped object.

        Duck-typed on purpose: reading attributes keeps this module free
        of simulator imports (the SL010 independence contract).
        """
        return OperatingPoint(
            K=int(config.K),
            L=float(config.L),
            budget=float(config.bank_power_budget),
            data_units=int(config.data_units_per_line),
            write_units=int(config.units_per_line),
            unit_bits=int(config.data_unit_bits),
            t_read_ns=float(config.timings.t_read_ns),
            t_set_ns=float(config.timings.t_set_ns),
            analysis_ns=float(config.analysis_overhead_ns),
        )


# ----------------------------------------------------------------------
# Equations 1-4: content-independent write-stage lengths, in t_set units.
# ----------------------------------------------------------------------
def conventional_units(point: OperatingPoint) -> float:
    """Eq. 1: every write unit takes a full ``t_set`` — ``N/M`` units."""
    return float(point.write_units)


def dcw_units(point: OperatingPoint) -> float:
    """DCW keeps Eq. 1's timing; only the programmed-cell count shrinks."""
    return float(point.write_units)


def flip_n_write_units(point: OperatingPoint) -> float:
    """Eq. 2: at most ``N/2`` programs per unit doubles the write unit."""
    return point.write_units / 2.0


def two_stage_units(point: OperatingPoint) -> float:
    """Eq. 3: a RESET phase of ``(N/M)/K`` plus a SET phase of ``(N/M)/2L``."""
    nm = point.write_units
    return nm / point.K + nm / (2.0 * point.L)


def three_stage_units(point: OperatingPoint) -> float:
    """Eq. 4: the read stage halves both phases' cell counts."""
    nm = point.write_units
    return nm / (2.0 * point.K) + nm / (2.0 * point.L)


# ----------------------------------------------------------------------
# Equation 5: an independent implementation of Algorithm 2.
# ----------------------------------------------------------------------
def _burst_chunks(cells: int, cost: float, budget: float) -> list[int]:
    """Split one unit's burst into whole-cell chunks under the budget."""
    if cells < 0:
        raise ValueError("negative program count")
    if cells * cost <= budget:
        return [cells] if cells else []
    per_chunk = int(budget // cost)
    if per_chunk < 1:
        raise ValueError(f"budget {budget} below one cell's current {cost}")
    full, rest = divmod(cells, per_chunk)
    return [per_chunk] * full + ([rest] if rest else [])


def tetris_pack(
    n_set: Sequence[int], n_reset: Sequence[int], point: OperatingPoint
) -> tuple[int, int]:
    """Algorithm 2 from the paper text: returns ``(result, subresult)``.

    Pass 1 (write-1): SET bursts, one current unit per cell, each
    occupying a whole write unit of ``K`` sub-slots; placed
    first-fit-decreasing into write units — the count opened is
    ``result``.  Pass 2 (write-0): RESET bursts, ``L`` current per cell,
    one sub-slot each; dropped largest-first into the earliest sub-slot
    with headroom, appending extra sub-slots only when none fits — the
    extras are ``subresult``.

    Implementation is residual-based (free capacity per slot) rather
    than the production scheduler's occupancy-based bookkeeping, so the
    two agree only if both implement the paper's algorithm correctly.
    """
    if len(n_set) != len(n_reset):
        raise ValueError("n_set / n_reset length mismatch")
    budget, K, L = point.budget, point.K, point.L

    set_bursts = sorted(
        (bits * 1.0 for u in n_set for bits in _burst_chunks(int(u), 1.0, budget)),
        reverse=True,
    )
    unit_free: list[float] = []  # residual budget per opened write unit
    for need in set_bursts:
        for j, free in enumerate(unit_free):
            if need <= free:
                unit_free[j] = free - need
                break
        else:
            unit_free.append(budget - need)
    result = len(unit_free)

    # The timeline: K interspace sub-slots per write unit, then extras.
    slot_free = [free for free in unit_free for _ in range(K)]
    reset_bursts = sorted(
        (bits * L for u in n_reset for bits in _burst_chunks(int(u), L, budget)),
        reverse=True,
    )
    n_interspace = len(slot_free)
    for need in reset_bursts:
        for s in range(len(slot_free)):
            if need <= slot_free[s]:
                slot_free[s] -= need
                break
        else:
            slot_free.append(budget - need)
    subresult = len(slot_free) - n_interspace
    return result, subresult


def tetris_units(
    n_set: Sequence[int], n_reset: Sequence[int], point: OperatingPoint
) -> float:
    """Eq. 5 without ``Tset``: ``result + subresult / K``."""
    result, subresult = tetris_pack(n_set, n_reset, point)
    return result + subresult / point.K


def preset_units(n_zero: Sequence[int], point: OperatingPoint) -> float:
    """PreSET demand write: RESET-only Algorithm 2 (``result = 0``).

    ``n_zero`` is the per-unit count of '0' cells in the new data (the
    line was pre-SET to all-ones in the background).
    """
    result, subresult = tetris_pack([0] * len(n_zero), n_zero, point)
    return result + subresult / point.K


def tetris_relaxed_subslots(
    n_set: Sequence[int], n_reset: Sequence[int], point: OperatingPoint
) -> int:
    """Unaligned Algorithm 2: earliest-offset fit on the sub-slot line.

    Models the ``tetris_relaxed`` extension: a write-1 burst spans ``K``
    consecutive sub-slots starting at *any* offset (not only write-unit
    boundaries); bursts go longest-then-largest first to the earliest
    offset where every spanned sub-slot has headroom.  Returns the total
    occupied sub-slots (completion time in ``t_set/K`` units).
    """
    if len(n_set) != len(n_reset):
        raise ValueError("n_set / n_reset length mismatch")
    budget, K, L = point.budget, point.K, point.L

    items: list[tuple[int, float]] = []  # (duration_subslots, current)
    for u in n_set:
        for bits in _burst_chunks(int(u), 1.0, budget):
            items.append((K, bits * 1.0))
    for u in n_reset:
        for bits in _burst_chunks(int(u), L, budget):
            items.append((1, bits * L))
    items.sort(key=lambda it: (-it[0], -it[1]))

    free: list[float] = []  # residual budget per occupied sub-slot
    for duration, current in items:
        start = len(free)
        for s in range(len(free)):
            span = free[s : s + duration]
            if all(current <= f for f in span):
                start = s
                break
        end = start + duration
        while len(free) < end:
            free.append(budget)
        for s in range(start, end):
            free[s] -= current
    return len(free)


def tetris_relaxed_units(
    n_set: Sequence[int], n_reset: Sequence[int], point: OperatingPoint
) -> float:
    """Relaxed completion in ``t_set`` units: ``total_subslots / K``."""
    return tetris_relaxed_subslots(n_set, n_reset, point) / point.K


# ----------------------------------------------------------------------
# Scheme-zoo closed forms (cross-paper competitors, see PAPERS.md).
# ----------------------------------------------------------------------
def wire_units(point: OperatingPoint) -> float:
    """WIRE (arXiv:2511.04928): Flip-N-Write's timing, Eq. 2.

    WIRE re-chooses the stored polarity by transition *cost* instead of
    count, but keeps the count bound (at most ``N/2`` programs per
    unit), so the write stage is Eq. 2's constant; only the energy
    column moves.
    """
    return flip_n_write_units(point)


def datacon_units(
    n_set: Sequence[int], n_reset: Sequence[int], point: OperatingPoint
) -> float:
    """DATACON (arXiv:2005.04753): one conventional share per dirty unit.

    ``T = Tread + dirty * (N/M)/data_units * Tset`` — a fully dirty line
    degenerates to Eq. 1, so the write stage never exceeds
    Conventional's at any operating point.
    """
    if len(n_set) != len(n_reset):
        raise ValueError("n_set / n_reset length mismatch")
    dirty = sum(1 for s, r in zip(n_set, n_reset) if int(s) + int(r) > 0)
    return dirty * point.write_units / point.data_units


def palp_units(
    n_set: Sequence[int],
    n_reset: Sequence[int],
    point: OperatingPoint,
    partitions: int = 2,
) -> float:
    """PALP (arXiv:1908.07966): min(serial Eq. 5, partitioned Eq. 5).

    The partitioned plan splits the demand vector into ``partitions``
    contiguous ceil-division chunks, packs each with Algorithm 2 at
    ``budget / partitions``, and completes with the slowest chunk.  The
    controller issues whichever plan is shorter, so PALP is never worse
    than single-partition Tetris.  When the per-partition budget cannot
    cover one cell's current (``budget / partitions < max(1, L)``) only
    the serial plan exists.
    """
    if partitions < 1:
        raise ValueError("partitions must be >= 1")
    serial = tetris_units(n_set, n_reset, point)
    sub_budget = point.budget / partitions
    if sub_budget < max(1.0, point.L):
        return serial
    sub_point = replace(point, budget=sub_budget)
    chunk = -(-len(n_set) // partitions)  # ceil division
    worst = 0.0
    for p in range(partitions):
        lo, hi = p * chunk, min((p + 1) * chunk, len(n_set))
        if lo >= hi:
            break
        worst = max(
            worst, tetris_units(n_set[lo:hi], n_reset[lo:hi], sub_point)
        )
    return min(serial, worst)


# ----------------------------------------------------------------------
# Worst cases and full service times.
# ----------------------------------------------------------------------
def worst_case_units(scheme: str, point: OperatingPoint) -> float:
    """Closed-form worst-case write-stage length per scheme."""
    if scheme in ("conventional", "dcw"):
        return float(point.write_units)
    if scheme == "flip_n_write":
        return flip_n_write_units(point)
    if scheme == "two_stage":
        return two_stage_units(point)
    if scheme == "three_stage":
        return three_stage_units(point)
    if scheme in ("tetris", "tetris_relaxed", "palp"):
        # Queue-admission bound: one write unit per data unit plus a
        # full set of overflow sub-slots (PALP's serial plan bound).
        return float(point.write_units) + point.data_units / point.K
    if scheme == "wire":
        return wire_units(point)
    if scheme == "datacon":
        return float(point.write_units)
    if scheme == "preset":
        per_unit = math.ceil(point.unit_bits * point.L / point.budget)
        return point.data_units * per_unit / point.K
    raise KeyError(f"no analytic worst case for scheme {scheme!r}")


#: Which schemes pay the read-before-write and the analysis stage.
_READS = frozenset({
    "dcw", "flip_n_write", "three_stage", "tetris", "tetris_relaxed",
    "wire", "datacon", "palp",
})
_ANALYZES = frozenset({"tetris", "tetris_relaxed", "palp"})


def service_ns(scheme: str, units: float, point: OperatingPoint) -> float:
    """Total bank occupancy: read + analysis + ``units * Tset``."""
    read = point.t_read_ns if scheme in _READS else 0.0
    analysis = point.analysis_ns if scheme in _ANALYZES else 0.0
    return read + analysis + units * point.t_set_ns


def scheme_units(
    scheme: str,
    point: OperatingPoint,
    n_set: Iterable[int] | None = None,
    n_reset: Iterable[int] | None = None,
    n_zero: Iterable[int] | None = None,
) -> float:
    """Dispatch: the analytic write-stage length for any registered scheme.

    Content-aware schemes need their demand vectors (``n_set`` /
    ``n_reset`` post-flip program counts; ``n_zero`` per-unit zero cells
    for PreSET); the fixed-latency baselines ignore them.
    """
    if scheme in ("conventional", "dcw"):
        return conventional_units(point)
    if scheme == "flip_n_write":
        return flip_n_write_units(point)
    if scheme == "two_stage":
        return two_stage_units(point)
    if scheme == "three_stage":
        return three_stage_units(point)
    if scheme == "tetris":
        return tetris_units(list(n_set or []), list(n_reset or []), point)
    if scheme == "tetris_relaxed":
        return tetris_relaxed_units(list(n_set or []), list(n_reset or []), point)
    if scheme == "preset":
        return preset_units(list(n_zero or []), point)
    if scheme == "wire":
        return wire_units(point)
    if scheme == "datacon":
        return datacon_units(list(n_set or []), list(n_reset or []), point)
    if scheme == "palp":
        return palp_units(list(n_set or []), list(n_reset or []), point)
    raise KeyError(f"no analytic model for scheme {scheme!r}")
