"""Metamorphic relations: properties that need no ground-truth latency.

Where the differential lane asks "do three implementations agree on this
input?", a metamorphic relation asks "does the answer *move the right
way* when the input is transformed?" — checkable without knowing the
correct absolute value.  Four relations, all derived from the paper:

``permutation``
    Algorithm 2 packs *currents*, not unit identities: permuting the
    data units of a line never changes ``(result, subresult)``.
``reset_extension``
    Appending one extra RESET cell adds at most one sub-write-unit to
    the schedule (it either slots into existing interspace or opens one
    extra sub-slot; it can never force a whole new write unit).
``fnw_vs_conventional``
    Flip-N-Write's write stage is never longer than Conventional's on
    the same data (Eq. 2's bound is half of Eq. 1's — Table I).
``tetris_vs_two_stage``
    Fig. 10: Tetris never exceeds 2-Stage-Write's constant on realizable
    (post-flip) demand vectors at the paper's operating point.

Three scheme-zoo relations pin the cross-paper competitors (PAPERS.md)
to their headline guarantees:

``wire_vs_fnw_energy``
    WIRE's per-line write energy never exceeds Flip-N-Write's on the
    same ``(stored image, new data)`` pair: FNW's count-rule choice is
    always feasible under WIRE's bound, and WIRE picks the cost-minimal
    feasible encoding (checked on the production schemes).
``datacon_vs_conventional``
    DATACON's write stage never exceeds Conventional's Eq. 1 constant —
    each dirty data unit costs one conventional per-data-unit share, so
    a fully dirty line is exactly Eq. 1 (checked at full and reduced
    ``write_units`` operating points).
``palp_vs_tetris``
    PALP's service time never exceeds single-partition Tetris Write's
    on the same line write: the controller prices both plans and issues
    the cheaper one (checked on the production schemes).

Each relation is a callable ``(rng, trials) -> list[violation dicts]``
registered in :data:`RELATIONS`; :func:`run_metamorphic` drives them
all.  Violations are returned, not raised, so the CLI can report them
alongside differential divergences.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.config import default_config
from repro.core.analysis import TetrisScheduler
from repro.oracle import analytic
from repro.pcm.state import LineState
from repro.schemes import get_scheme

__all__ = ["RELATIONS", "run_metamorphic"]

#: (K, L, budget) points every scheduler relation is exercised at.
_POINTS: tuple[tuple[int, float, float], ...] = (
    (8, 2.0, 128.0),
    (8, 2.0, 16.0),
    (4, 1.5, 6.5),
    (16, 2.0, 12.0),
    (8, 3.0, 9.0),
)
_UNITS = 8
_MAX = 32


def _random_vector(
    rng: np.random.Generator, max_per_unit: int = _MAX
) -> tuple[np.ndarray, np.ndarray]:
    total = rng.integers(0, max_per_unit + 1, size=_UNITS)
    split = rng.integers(0, total + 1)
    return split.astype(np.int64), (total - split).astype(np.int64)


def _violation(name: str, point, n_set, n_reset, before, after, bound) -> dict:
    return {
        "relation": name,
        "point": {"K": point[0], "L": point[1], "budget": point[2]},
        "n_set": [int(x) for x in n_set],
        "n_reset": [int(x) for x in n_reset],
        "before": before,
        "after": after,
        "bound": bound,
    }


# ----------------------------------------------------------------------
def check_permutation(rng: np.random.Generator, trials: int) -> list[dict]:
    """Permuting the data units never changes ``(result, subresult)``."""
    out: list[dict] = []
    per_point = max(trials // len(_POINTS), 1)
    for K, L, budget in _POINTS:
        scheduler = TetrisScheduler(K, L, budget, allow_split=True)
        for _ in range(per_point):
            n_set, n_reset = _random_vector(rng)
            base = scheduler.schedule(n_set, n_reset)
            perm = rng.permutation(_UNITS)
            permuted = scheduler.schedule(n_set[perm], n_reset[perm])
            if (base.result, base.subresult) != (
                permuted.result, permuted.subresult
            ):
                out.append(_violation(
                    "permutation", (K, L, budget), n_set, n_reset,
                    before=[base.result, base.subresult],
                    after=[permuted.result, permuted.subresult],
                    bound="equal",
                ))
    return out


def check_reset_extension(rng: np.random.Generator, trials: int) -> list[dict]:
    """One extra RESET cell costs at most one extra sub-write-unit."""
    out: list[dict] = []
    per_point = max(trials // len(_POINTS), 1)
    for K, L, budget in _POINTS:
        scheduler = TetrisScheduler(K, L, budget, allow_split=True)
        for _ in range(per_point):
            n_set, n_reset = _random_vector(rng)
            unit = int(rng.integers(0, _UNITS))
            extended = n_reset.copy()
            extended[unit] += 1
            before = scheduler.schedule(n_set, n_reset).total_sub_slots
            after = scheduler.schedule(n_set, extended).total_sub_slots
            if after > before + 1:
                out.append(_violation(
                    "reset_extension", (K, L, budget), n_set, n_reset,
                    before=before, after=after, bound="before + 1",
                ))
    return out


def check_fnw_vs_conventional(
    rng: np.random.Generator, trials: int
) -> list[dict]:
    """Eq. 2 <= Eq. 1 at every operating point (write-stage length)."""
    out: list[dict] = []
    for K, L, budget in _POINTS:
        point = analytic.OperatingPoint(K=K, L=L, budget=budget)
        fnw = analytic.flip_n_write_units(point)
        conv = analytic.conventional_units(point)
        if fnw > conv + 1e-12:
            out.append(_violation(
                "fnw_vs_conventional", (K, L, budget), [], [],
                before=conv, after=fnw, bound="fnw <= conventional",
            ))
    return out


def check_tetris_vs_two_stage(
    rng: np.random.Generator, trials: int
) -> list[dict]:
    """Fig. 10: measured Tetris <= 2-Stage's constant on realizable vectors.

    Realizable means post-flip: at most half a unit's cells programmed
    (the flip rule's guarantee), which is what 2-Stage's Eq. 3 assumes.
    Checked at the paper's bank point, where the figure lives.
    """
    out: list[dict] = []
    K, L, budget = 8, 2.0, 128.0
    point = analytic.OperatingPoint(K=K, L=L, budget=budget)
    scheduler = TetrisScheduler(K, L, budget, allow_split=True)
    bound = analytic.two_stage_units(point)
    for _ in range(trials):
        n_set, n_reset = _random_vector(rng)  # totals <= 32 = realizable
        units = scheduler.schedule(n_set, n_reset).service_units()
        if units > bound + 1e-12:
            out.append(_violation(
                "tetris_vs_two_stage", (K, L, budget), n_set, n_reset,
                before=bound, after=units, bound="tetris <= two_stage",
            ))
    return out


def _random_line(
    rng: np.random.Generator, units: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """A random stored image (physical, flip) and new logical data."""
    physical = rng.integers(0, 2**64, size=units, dtype=np.uint64)
    flip = rng.integers(0, 2, size=units).astype(bool)
    new = rng.integers(0, 2**64, size=units, dtype=np.uint64)
    # Half the trials: mutate only a few units so mostly-silent lines
    # (the common workload case) are exercised too.
    if rng.random() < 0.5:
        keep = physical ^ np.where(flip, np.uint64(2**64 - 1), np.uint64(0))
        mask = rng.random(units) < 0.75
        new = np.where(mask, keep, new)
    return physical, flip, new


def check_wire_vs_fnw_energy(
    rng: np.random.Generator, trials: int
) -> list[dict]:
    """WIRE's write energy <= Flip-N-Write's on every line (production)."""
    out: list[dict] = []
    config = default_config()
    units = config.data_units_per_line
    for _ in range(trials):
        physical, flip, new = _random_line(rng, units)
        results = {}
        for name in ("wire", "flip_n_write"):
            state = LineState(physical=physical.copy(), flip=flip.copy())
            results[name] = get_scheme(name, config).write(state, new)
        if results["wire"].energy > results["flip_n_write"].energy + 1e-9:
            out.append(_violation(
                "wire_vs_fnw_energy",
                (config.K, config.L, config.bank_power_budget),
                physical.tolist(), new.tolist(),
                before=results["flip_n_write"].energy,
                after=results["wire"].energy,
                bound="wire energy <= flip_n_write energy",
            ))
    return out


def check_datacon_vs_conventional(
    rng: np.random.Generator, trials: int
) -> list[dict]:
    """DATACON's write stage <= Eq. 1 at full and reduced write_units."""
    out: list[dict] = []
    per_case = max(trials // (len(_POINTS) * 2), 1)
    for K, L, budget in _POINTS:
        for write_units in (8, 4):
            point = analytic.OperatingPoint(
                K=K, L=L, budget=budget, write_units=write_units
            )
            bound = analytic.conventional_units(point)
            for _ in range(per_case):
                n_set, n_reset = _random_vector(rng)
                units = analytic.datacon_units(n_set, n_reset, point)
                if units > bound + 1e-12:
                    out.append(_violation(
                        "datacon_vs_conventional",
                        (K, L, budget), n_set, n_reset,
                        before=bound, after=units,
                        bound="datacon <= conventional",
                    ))
    return out


def check_palp_vs_tetris(rng: np.random.Generator, trials: int) -> list[dict]:
    """PALP's service time <= single-partition Tetris's (production)."""
    out: list[dict] = []
    config = default_config()
    units = config.data_units_per_line
    for _ in range(trials):
        physical, flip, new = _random_line(rng, units)
        results = {}
        for name in ("palp", "tetris"):
            state = LineState(physical=physical.copy(), flip=flip.copy())
            results[name] = get_scheme(name, config).write(state, new)
        if results["palp"].service_ns > results["tetris"].service_ns + 1e-9:
            out.append(_violation(
                "palp_vs_tetris",
                (config.K, config.L, config.bank_power_budget),
                physical.tolist(), new.tolist(),
                before=results["tetris"].service_ns,
                after=results["palp"].service_ns,
                bound="palp service <= tetris service",
            ))
    return out


RELATIONS: dict[str, Callable[[np.random.Generator, int], list[dict]]] = {
    "permutation": check_permutation,
    "reset_extension": check_reset_extension,
    "fnw_vs_conventional": check_fnw_vs_conventional,
    "tetris_vs_two_stage": check_tetris_vs_two_stage,
    "wire_vs_fnw_energy": check_wire_vs_fnw_energy,
    "datacon_vs_conventional": check_datacon_vs_conventional,
    "palp_vs_tetris": check_palp_vs_tetris,
}


def run_metamorphic(
    *, trials: int = 200, seed: int = 0,
    relations: list[str] | None = None,
) -> dict:
    """Run the registered relations; return ``{relation: [violations]}``
    plus a top-level ``ok`` flag."""
    names = relations if relations is not None else sorted(RELATIONS)
    unknown = set(names) - set(RELATIONS)
    if unknown:
        raise KeyError(f"unknown relations: {sorted(unknown)}")
    rng = np.random.default_rng(seed)
    results = {name: RELATIONS[name](rng, trials) for name in names}
    return {
        "ok": not any(results.values()),
        "trials": trials,
        "seed": seed,
        "violations": results,
    }
