"""PreSET (Qureshi et al., ISCA 2012 — the paper's ref [23]).

PreSET inverts the asymmetry exploit: during idle periods the controller
proactively programs *every* cell of a dirty-predicted line to '1' (SET,
slow but off the critical path).  A demand write then only needs to
RESET the 0-cells of the new data — short, high-current pulses that pack
densely under the power budget.

Service model: each data unit demands ``n_zero * L`` current for one
sub-write-unit; units are first-fit packed into sub-slots (the write-0
pass of Algorithm 2 with no write-1 interspace).  The pre-SET itself is
charged to energy (it programs all cells eventually) but not to demand
latency — the scheme's entire premise, and its well-known cost: idle
bandwidth and endurance.

This is an extension baseline: the paper cites PreSET but does not
compare against it.
"""

from __future__ import annotations

import numpy as np

from repro.config import SystemConfig
from repro.core.analysis import TetrisScheduler
from repro.pcm.state import LineState
from repro.schemes.base import WriteOutcome, WriteScheme

__all__ = ["PreSETWrite"]

_U64 = np.uint64
_ONES = np.uint64(0xFFFF_FFFF_FFFF_FFFF)


class PreSETWrite(WriteScheme):
    """Demand writes RESET-only; SETs pre-done in the background."""

    name = "preset"
    requires_read = False

    def __init__(self, config: SystemConfig | None = None) -> None:
        super().__init__(config)
        cfg = self.config
        # Reuse Algorithm 2's write-0 machinery: no write-1s exist, so
        # every unit's RESET burst lands in (result=0) + extra sub-slots.
        self.scheduler = TetrisScheduler(
            cfg.K, cfg.L, cfg.bank_power_budget, allow_split=True
        )
        self.preset_cells = 0  # background SETs owed (energy/endurance)
        self.last_schedule = None  # most recent demand-write schedule

    def worst_case_units(self) -> float:
        """All cells zero: N cells x L current per unit; each unit's burst
        splits into ceil(N*L / budget) sub-slots."""
        cfg = self.config
        per_unit = int(np.ceil(cfg.data_unit_bits * cfg.L / cfg.bank_power_budget))
        return cfg.data_units_per_line * per_unit / cfg.K

    def _write_once(self, state: LineState, new_logical: np.ndarray) -> WriteOutcome:
        new_logical = np.asarray(new_logical, dtype=_U64)
        unit_bits = self.config.data_unit_bits
        mask = _ONES if unit_bits == 64 else _U64((1 << unit_bits) - 1)

        # The line was pre-SET: every cell is '1'; RESET the 0-cells.
        n_reset = (unit_bits - np.bitwise_count(new_logical & mask)).astype(
            np.int64
        )
        sched = self.scheduler.schedule(np.zeros_like(n_reset), n_reset)
        self.last_schedule = sched
        # Background debt: the next idle pre-SET must re-SET those cells.
        self.preset_cells += int(n_reset.sum())

        state.store(new_logical & mask, np.zeros(new_logical.shape, dtype=bool))
        out = self._outcome(
            units=sched.service_units(),
            read_ns=0.0,
            analysis_ns=0.0,
            n_set=0,
            n_reset=int(n_reset.sum()),
        )
        # Charge the deferred SET energy here so comparisons are honest:
        # every RESET cell will be re-SET in the background before the
        # next write.
        return WriteOutcome(
            service_ns=out.service_ns,
            units=out.units,
            read_ns=out.read_ns,
            analysis_ns=out.analysis_ns,
            n_set=out.n_set,
            n_reset=out.n_reset,
            energy=out.energy
            + float(self.energy_model.e_set) * int(n_reset.sum()),
            flipped_units=0,
        )
