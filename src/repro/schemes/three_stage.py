"""Three-Stage-Write (Li et al., ASP-DAC 2015) — paper Equation 4.

Combines Flip-N-Write's read-and-flip with 2-Stage-Write's phase split:

* **read stage** — read the stored line, flip each unit when more than
  half of its cells would change; only *changed* cells are programmed
  afterwards, at most ``N/2`` per unit.
* **stage-0** — RESET the changed '0' cells.  With at most ``N/2`` per
  unit, two units fit one sub-slot: ``(N/M)/(2K)`` write-unit times —
  half of 2-Stage-Write's stage-0.
* **stage-1** — SET the changed '1' cells: ``(N/M)/(2L)`` write-unit
  times, same as 2-Stage-Write.

``T = Tread + (1/2K + 1/2L) * (N/M) * Tset``, and the energy is
comparison-based like Flip-N-Write (Table I: reduces both).
"""

from __future__ import annotations

import numpy as np

from repro.core.read_stage import read_stage
from repro.pcm.state import LineState
from repro.schemes.base import WriteOutcome, WriteScheme

__all__ = ["ThreeStageWrite"]


class ThreeStageWrite(WriteScheme):
    """``T = Tread + (1/2K + 1/2L) * (N/M) * Tset``; changed cells only."""

    name = "three_stage"
    requires_read = True

    def worst_case_units(self) -> float:
        nm = self.config.units_per_line
        return nm / (2.0 * self.config.K) + nm / (2.0 * self.config.L)

    def _write_once(self, state: LineState, new_logical: np.ndarray) -> WriteOutcome:
        new_logical = np.asarray(new_logical, dtype=np.uint64)
        rs = read_stage(
            state.physical,
            state.flip,
            new_logical,
            unit_bits=self.config.data_unit_bits,
            count_flip_bit=self.config.count_flip_bit,
        )
        state.store(rs.physical, rs.flip)
        return self._outcome(
            units=self.worst_case_units(),
            read_ns=self.t_read,
            analysis_ns=0.0,
            n_set=int(rs.n_set.sum()),
            n_reset=int(rs.n_reset.sum()),
            flipped_units=int(rs.flip.sum()),
        )
