"""PALP — partition-level parallelism over the Tetris power packer.

PALP (see PAPERS.md: "Enabling and Exploiting Partition-Level
Parallelism in PCM", arXiv:1908.07966) observes that a PCM bank is
physically a set of partitions that can program concurrently as long as
each stays inside its share of the charge-pump budget.  Layered on
Tetris Write, the controller prices *two* access plans per line write
and issues the cheaper one:

* **serial** — the paper's Algorithm 2 against the full bank budget
  (exactly the ``tetris`` scheme's write stage);
* **partitioned** — the line's data units split into ``partitions``
  contiguous chunks, each chunk Algorithm-2 packed against
  ``budget / partitions``, all partitions programming concurrently; the
  write stage is the slowest partition's schedule.

``units = min(serial, partitioned)``, so PALP never does worse than
single-partition Tetris (the ``palp_vs_tetris`` metamorphic relation)
and wins when the line's demand spreads across partitions — the
partitioned plan turns write units that Algorithm 2 would serialize
under the pooled budget into concurrent per-partition units.  When the
per-partition budget cannot cover even one cell's program current
(``budget / partitions < max(1, L)``) the partitioned plan is
infeasible and the controller always issues the serial plan.

Like Tetris, PALP pays the read stage and the analysis overhead (it
runs Algorithm 2 twice, but the two packs are independent hardware
passes over the same counts, so the measured 41-cycle overhead is
unchanged).  PALP has no analytic fastpath pricer yet — sweeps route it
to the DES lane with the ``unpriced-scheme`` envelope reason.
"""

from __future__ import annotations

import numpy as np

from repro.config import SystemConfig
from repro.core.analysis import TetrisScheduler
from repro.core.read_stage import read_stage
from repro.pcm.state import LineState
from repro.schemes.base import WriteOutcome, WriteScheme

__all__ = ["PALPWrite"]

_U64 = np.uint64


class PALPWrite(WriteScheme):
    """``units = min(serial Tetris, slowest-partition Tetris at budget/P)``."""

    name = "palp"
    requires_read = True

    def __init__(
        self, config: SystemConfig | None = None, *, partitions: int = 2
    ) -> None:
        super().__init__(config)
        if partitions < 1:
            raise ValueError("partitions must be >= 1")
        self.partitions = partitions
        cfg = self.config
        self.serial_scheduler = TetrisScheduler(
            cfg.K, cfg.L, cfg.bank_power_budget, allow_split=True
        )
        sub_budget = cfg.bank_power_budget / partitions
        # A partition must cover at least one cell's program current
        # (SET = 1, RESET = L); below that only the serial plan exists.
        self.partition_feasible = sub_budget >= max(1.0, cfg.L)
        self.partition_scheduler = (
            TetrisScheduler(cfg.K, cfg.L, sub_budget, allow_split=True)
            if self.partition_feasible
            else None
        )
        # No single TetrisSchedule describes the min-of-plans write
        # stage, so DES replay uses the phase plan (units * t_set).
        self.last_schedule = None

    def worst_case_units(self) -> float:
        """Serial-plan bound: same queue-admission bound as Tetris."""
        return float(self.config.units_per_line) + (
            self.config.data_units_per_line / self.config.K
        )

    # ------------------------------------------------------------------
    def _partitioned_units(
        self, n_set: np.ndarray, n_reset: np.ndarray
    ) -> float | None:
        """Slowest partition's Eq. 5 length, or None when infeasible."""
        if self.partition_scheduler is None:
            return None
        chunk = -(-n_set.size // self.partitions)  # ceil division
        worst = 0.0
        for p in range(self.partitions):
            lo, hi = p * chunk, min((p + 1) * chunk, n_set.size)
            if lo >= hi:
                break
            sched = self.partition_scheduler.schedule(
                n_set[lo:hi], n_reset[lo:hi]
            )
            worst = max(worst, sched.service_units())
        return worst

    def _write_once(self, state: LineState, new_logical: np.ndarray) -> WriteOutcome:
        new_logical = np.asarray(new_logical, dtype=_U64)
        rs = read_stage(
            state.physical,
            state.flip,
            new_logical,
            unit_bits=self.config.data_unit_bits,
            count_flip_bit=self.config.count_flip_bit,
        )
        serial = self.serial_scheduler.schedule(
            rs.n_set, rs.n_reset
        ).service_units()
        parallel = self._partitioned_units(rs.n_set, rs.n_reset)
        units = serial if parallel is None else min(serial, parallel)

        state.store(rs.physical, rs.flip)
        return self._outcome(
            units=units,
            read_ns=self.t_read,
            analysis_ns=self.config.analysis_overhead_ns,
            n_set=int(rs.n_set.sum()),
            n_reset=int(rs.n_reset.sum()),
            flipped_units=int(rs.flip.sum()),
        )
