"""PCM write schemes: the paper's baselines, Tetris Write, and the zoo.

Every scheme implements the :class:`~repro.schemes.base.WriteScheme`
interface: given the stored image of a line and the new logical data it
returns a :class:`~repro.schemes.base.WriteOutcome` (service time, write
units, programmed-cell counts, energy) and commits the new image.

========================  ========================================  =====
scheme                    key idea (paper Table I)                  read?
========================  ========================================  =====
``conventional``          worst-case serial write units             no
``dcw``                   read-compare, program changed cells only  yes
``flip_n_write``          flip to halve programmed cells, 2x unit   yes
``two_stage``             split RESET/SET phases (asymmetries)      no
``three_stage``           2-Stage + flip (halves both phases)       yes
``tetris``                schedule by *actual* per-unit currents    yes
========================  ========================================  =====

Cross-paper zoo (beyond the paper's Table I — see PAPERS.md):

========================  ========================================  =====
scheme                    key idea (source paper)                   read?
========================  ========================================  =====
``wire``                  energy-minimal inversion coding (WIRE,    yes
                          arXiv:2511.04928)
``datacon``               skip silent data units (DATACON,          yes
                          arXiv:2005.04753)
``palp``                  partition-parallel Tetris packing (PALP,  yes
                          arXiv:1908.07966)
========================  ========================================  =====
"""

from repro.schemes.base import SCHEME_REGISTRY, WriteOutcome, WriteScheme, get_scheme
from repro.schemes.conventional import ConventionalWrite
from repro.schemes.dcw import DCWWrite
from repro.schemes.flip_n_write import FlipNWrite
from repro.schemes.two_stage import TwoStageWrite
from repro.schemes.three_stage import ThreeStageWrite
from repro.schemes.tetris import TetrisWrite
from repro.schemes.preset import PreSETWrite
from repro.schemes.tetris_relaxed import TetrisRelaxedWrite
from repro.schemes.wire import WIREWrite
from repro.schemes.datacon import DataConWrite
from repro.schemes.palp import PALPWrite

ALL_SCHEMES = (
    "dcw",
    "conventional",
    "flip_n_write",
    "two_stage",
    "three_stage",
    "tetris",
)

EXTENSION_SCHEMES = ("preset", "tetris_relaxed")
"""Schemes beyond the paper's comparison set (see each module's notes)."""

ZOO_SCHEMES = ("wire", "datacon", "palp")
"""Cross-paper competitor schemes retrieved via PAPERS.md (the scheme
zoo): WIRE's energy-minimal inversion coding, DATACON's content-aware
unit skipping, and PALP's partition-level parallelism."""

COMPARED_SCHEMES = ("flip_n_write", "two_stage", "three_stage", "tetris")
"""The four schemes the evaluation compares against the DCW baseline."""

__all__ = [
    "ALL_SCHEMES",
    "COMPARED_SCHEMES",
    "EXTENSION_SCHEMES",
    "ZOO_SCHEMES",
    "SCHEME_REGISTRY",
    "ConventionalWrite",
    "DCWWrite",
    "DataConWrite",
    "FlipNWrite",
    "PALPWrite",
    "PreSETWrite",
    "TetrisWrite",
    "ThreeStageWrite",
    "TwoStageWrite",
    "WIREWrite",
    "WriteOutcome",
    "WriteScheme",
    "get_scheme",
]
