"""Flip-N-Write (Cho & Lee, MICRO 2009) — paper Equation 2.

Reads the stored line, then per data unit stores either the data or its
complement so that at most half of the cells (plus the flip tag) are
programmed.  Because the guaranteed bound is ``N/2`` cells per unit, two
data units always fit the power budget of one conventional write unit, so
the effective write unit doubles: ``T = Tread + (N/M)/2 * Tset``.
"""

from __future__ import annotations

import numpy as np

from repro.core.read_stage import cost_aware_flip, read_stage
from repro.pcm.state import LineState
from repro.schemes.base import WriteOutcome, WriteScheme

__all__ = ["FlipNWrite"]


class FlipNWrite(WriteScheme):
    """``T = Tread + (N/M)/2 * Tset``; flip halves the programmed cells.

    ``flip_policy="cost"`` swaps the count-based rule for the CAFO-style
    energy-weighted one (paper ref [22]) — same timing guarantee, lower
    energy on SET-heavy content.
    """

    name = "flip_n_write"
    requires_read = True

    def __init__(self, config=None, *, flip_policy: str = "count") -> None:
        super().__init__(config)
        if flip_policy not in ("count", "cost"):
            raise ValueError("flip_policy must be 'count' or 'cost'")
        self.flip_policy = flip_policy

    def worst_case_units(self) -> float:
        return self.config.units_per_line / 2.0

    def _write_once(self, state: LineState, new_logical: np.ndarray) -> WriteOutcome:
        new_logical = np.asarray(new_logical, dtype=np.uint64)
        if self.flip_policy == "cost":
            # The count bound keeps FNW's two-units-per-write-unit power
            # guarantee intact (see cost_aware_flip's max_programs note).
            rs = cost_aware_flip(
                state.physical,
                state.flip,
                new_logical,
                set_cost=self.energy_model.e_set,
                reset_cost=self.energy_model.e_reset,
                unit_bits=self.config.data_unit_bits,
                max_programs=self.config.data_unit_bits // 2,
            )
        else:
            rs = read_stage(
                state.physical,
                state.flip,
                new_logical,
                unit_bits=self.config.data_unit_bits,
                count_flip_bit=self.config.count_flip_bit,
            )
        state.store(rs.physical, rs.flip)
        return self._outcome(
            units=self.worst_case_units(),
            read_ns=self.t_read,
            analysis_ns=0.0,
            n_set=int(rs.n_set.sum()),
            n_reset=int(rs.n_reset.sum()),
            flipped_units=int(rs.flip.sum()),
        )
