"""2-Stage-Write (Yue & Zhu, HPCA 2013) — paper Equation 3.

Splits the write into a RESET phase and a SET phase to exploit both
asymmetries, *without* a read-before-write:

* **stage-0** programs every '0' cell of every unit.  RESETs are fast
  (``t_reset = t_set/K``) but draw ``L`` SET units each, so one write
  unit's worth of zeros saturates the budget per sub-slot — the phase
  takes ``(N/M)/K`` write-unit times.
* **stage-1** programs every '1' cell.  The data is flipped per unit when
  more than half its bits are '1', bounding SETs at ``N/2`` per unit, and
  SET current is ``1/L`` of RESET, so ``2L`` units run per ``t_set``:
  the phase takes ``(N/M)/(2L)`` write-unit times.

Because no comparison is done, *all* cells are programmed — 2-Stage-Write
reduces latency but not energy (Table I).
"""

from __future__ import annotations

import numpy as np

from repro.pcm.state import LineState
from repro.schemes.base import WriteOutcome, WriteScheme

__all__ = ["TwoStageWrite"]

_U64 = np.uint64
_ONES = np.uint64(0xFFFF_FFFF_FFFF_FFFF)


class TwoStageWrite(WriteScheme):
    """``T = (1/K + 1/2L) * (N/M) * Tset``; programs every cell."""

    name = "two_stage"
    requires_read = False

    def worst_case_units(self) -> float:
        nm = self.config.units_per_line
        return nm / self.config.K + nm / (2.0 * self.config.L)

    def _write_once(self, state: LineState, new_logical: np.ndarray) -> WriteOutcome:
        new_logical = np.asarray(new_logical, dtype=_U64)
        unit_bits = self.config.data_unit_bits
        mask = _ONES if unit_bits == 64 else _U64((1 << unit_bits) - 1)

        # Flip-for-stage-1: store inverted when more than half the bits
        # are '1', so the SET phase writes at most N/2 cells per unit.
        ones = np.bitwise_count(new_logical & mask).astype(np.int64)
        flip = ones > unit_bits // 2
        physical = np.where(flip, ~new_logical & mask, new_logical & mask)

        n_set = int(np.bitwise_count(physical).sum())
        n_cells = new_logical.size * unit_bits
        state.store(physical, flip)
        return self._outcome(
            units=self.worst_case_units(),
            read_ns=0.0,
            analysis_ns=0.0,
            n_set=n_set,
            n_reset=n_cells - n_set,
            flipped_units=int(flip.sum()),
        )
