"""Data-Comparison Write — the paper's evaluation baseline.

DCW (Yang et al., ISCAS 2007) reads the stored line first and programs
only the cells whose value changes.  That removes redundant cell wear and
energy, but the *timing* stays the conventional worst case: the write is
still issued as ``N/M`` sequential write units of ``t_set`` each, plus the
read-before-write.  This is why Figure 10 shows the baseline at 8 write
units while its energy is already comparison-based.
"""

from __future__ import annotations

import numpy as np

from repro.pcm.state import LineState
from repro.schemes.base import WriteOutcome, WriteScheme
from repro.util.bits import reset_mask, set_mask

__all__ = ["DCWWrite"]


class DCWWrite(WriteScheme):
    """``T = Tread + (N/M) * Tset``; programs changed cells only."""

    name = "dcw"
    requires_read = True

    def worst_case_units(self) -> float:
        return float(self.config.units_per_line)

    def _write_once(self, state: LineState, new_logical: np.ndarray) -> WriteOutcome:
        new_logical = np.asarray(new_logical, dtype=np.uint64)
        # DCW stores plain (unflipped) data; if a previous flip-capable
        # scheme left inverted units behind, compare against the logical
        # view and normalize the stored encoding.
        old_logical = state.logical
        n_set = int(np.bitwise_count(set_mask(old_logical, new_logical)).sum())
        n_reset = int(np.bitwise_count(reset_mask(old_logical, new_logical)).sum())
        state.store(new_logical, np.zeros(new_logical.shape, dtype=bool))
        return self._outcome(
            units=self.worst_case_units(),
            read_ns=self.t_read,
            analysis_ns=0.0,
            n_set=n_set,
            n_reset=n_reset,
        )
