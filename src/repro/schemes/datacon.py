"""DATACON — content-aware write that skips silent data units.

DATACON (see PAPERS.md: "Improving Phase Change Memory Performance with
Data Content Aware Access", arXiv:2005.04753) observes that after the
read-before-write comparison many 64-bit data units need *no* cell
programs at all, yet a conventional/DCW controller still walks every
write unit serially.  The content-aware controller issues program pulses
only for the dirty units, so the write stage shortens to one ``t_set``
write unit per unit that actually changes.

Service model (at the paper point, where one data unit maps to one
write unit)::

    T = Tread + (#units with n_set + n_reset > 0) * Tset

In general each dirty data unit costs the conventional per-data-unit
share ``(N/M) / data_units`` of the line's write units, so a fully
dirty line is exactly Eq. 1 and the write stage never exceeds
Conventional/DCW's constant at *any* operating point — the
``datacon_vs_conventional`` metamorphic relation.  Energy is DCW's
(changed cells only, plain encoding — no inversion machinery).
"""

from __future__ import annotations

import numpy as np

from repro.pcm.state import LineState
from repro.schemes.base import WriteOutcome, WriteScheme
from repro.util.bits import reset_mask, set_mask

__all__ = ["DataConWrite"]


class DataConWrite(WriteScheme):
    """``T = Tread + dirty_units * Tset``; programs changed units only."""

    name = "datacon"
    requires_read = True

    def worst_case_units(self) -> float:
        """Fully dirty line: every unit programs, same as Eq. 1."""
        return float(self.config.units_per_line)

    def _write_once(self, state: LineState, new_logical: np.ndarray) -> WriteOutcome:
        new_logical = np.asarray(new_logical, dtype=np.uint64)
        # Like DCW, DATACON stores plain (unflipped) data: compare the
        # logical view so inverted leftovers from a flip-capable scheme
        # are normalized on the way through.
        old_logical = state.logical
        n_set = np.bitwise_count(set_mask(old_logical, new_logical)).astype(
            np.int64
        )
        n_reset = np.bitwise_count(reset_mask(old_logical, new_logical)).astype(
            np.int64
        )
        dirty_units = int(np.count_nonzero(n_set + n_reset))
        per_dirty = self.config.units_per_line / self.config.data_units_per_line
        state.store(new_logical, np.zeros(new_logical.shape, dtype=bool))
        return self._outcome(
            units=dirty_units * per_dirty,
            read_ns=self.t_read,
            analysis_ns=0.0,
            n_set=int(n_set.sum()),
            n_reset=int(n_reset.sum()),
        )
