"""Tetris-Relaxed: Algorithm 2 without write-unit alignment (extension).

The hardware Tetris FSMs align every write-1 burst to a write-unit
boundary (FSM1 advances in whole ``t_set`` steps).  This variant drops
that constraint: bursts take the earliest sub-slot offset with headroom,
via the generalized packer.  It bounds how much performance the aligned
FSMs leave behind — the alignment-cost bench measures ~0 % at the
paper's operating point, which is itself a result: Algorithm 2's
hardware simplicity is free.

Registered as ``"tetris_relaxed"``; usable anywhere a scheme name is
accepted (note the full-system precompute path falls back to per-write
Python packing for it, so it is slower to price than ``"tetris"``).
"""

from __future__ import annotations

import numpy as np

from repro.config import SystemConfig
from repro.core.generalized import BurstClass, GeneralizedScheduler
from repro.core.read_stage import read_stage
from repro.pcm.state import LineState
from repro.schemes.base import WriteOutcome, WriteScheme

__all__ = ["TetrisRelaxedWrite"]


class TetrisRelaxedWrite(WriteScheme):
    """Earliest-fit, unaligned variant of Tetris Write."""

    name = "tetris_relaxed"
    requires_read = True

    def __init__(self, config: SystemConfig | None = None) -> None:
        super().__init__(config)
        cfg = self.config
        self.write1_class = BurstClass("write1", cfg.K, 1.0)
        self.write0_class = BurstClass("write0", 1, cfg.L)
        self.scheduler = GeneralizedScheduler(
            cfg.bank_power_budget, cfg.timings.t_set_ns / cfg.K
        )
        self.last_schedule = None

    def worst_case_units(self) -> float:
        # Never worse than the aligned scheduler's bound.
        return float(self.config.units_per_line) + (
            self.config.data_units_per_line / self.config.K
        )

    def service_units_for_counts(
        self, n_set: np.ndarray, n_reset: np.ndarray
    ) -> float:
        """Write-stage length in t_set units for given change counts."""
        sched = self.scheduler.schedule(
            {
                self.write1_class: np.asarray(n_set, dtype=np.int64),
                self.write0_class: np.asarray(n_reset, dtype=np.int64),
            }
        )
        self.last_schedule = sched
        return sched.total_subslots / self.config.K

    def _write_once(self, state: LineState, new_logical: np.ndarray) -> WriteOutcome:
        new_logical = np.asarray(new_logical, dtype=np.uint64)
        rs = read_stage(
            state.physical,
            state.flip,
            new_logical,
            unit_bits=self.config.data_unit_bits,
            count_flip_bit=self.config.count_flip_bit,
        )
        units = self.service_units_for_counts(rs.n_set, rs.n_reset)
        state.store(rs.physical, rs.flip)
        return self._outcome(
            units=units,
            read_ns=self.t_read,
            analysis_ns=self.config.analysis_overhead_ns,
            n_set=int(rs.n_set.sum()),
            n_reset=int(rs.n_reset.sum()),
            flipped_units=int(rs.flip.sum()),
        )
