"""Conventional write scheme (paper Equation 1).

Every write unit is charged its worst case: all cells of the unit are
programmed (no read-compare), and each unit completes after a full
``t_set`` regardless of content.  A 64 B line over an 8 B bank write unit
therefore takes ``8 * t_set`` and programs all 512 cells.
"""

from __future__ import annotations

import numpy as np

from repro.pcm.state import LineState
from repro.schemes.base import WriteOutcome, WriteScheme

__all__ = ["ConventionalWrite"]


class ConventionalWrite(WriteScheme):
    """``T = (N/M) * Tset``; programs every cell to its new value."""

    name = "conventional"
    requires_read = False

    def worst_case_units(self) -> float:
        return float(self.config.units_per_line)

    def _write_once(self, state: LineState, new_logical: np.ndarray) -> WriteOutcome:
        new_logical = np.asarray(new_logical, dtype=np.uint64)
        n_ones = int(np.bitwise_count(new_logical).sum())
        n_cells = new_logical.size * self.config.data_unit_bits
        # No flip support: the stored image is the logical image.
        state.store(new_logical, np.zeros(new_logical.shape, dtype=bool))
        return self._outcome(
            units=self.worst_case_units(),
            read_ns=0.0,
            analysis_ns=0.0,
            n_set=n_ones,
            n_reset=n_cells - n_ones,
        )
