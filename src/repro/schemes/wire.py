"""WIRE — write-energy-reducing inversion coding (cross-paper extension).

WIRE (see PAPERS.md: "WIRE: Write-Induced Redundancy Elimination",
arXiv:2511.04928) keeps Flip-N-Write's flag-per-unit encoding but picks
the stored polarity by *transition cost* instead of transition count:
per data unit the straight and inverted images are priced as
``n_set * E_set + n_reset * E_reset`` over the data cells only (the flag
lives in a cheap side structure) and the cheaper encoding wins.  On PCM
asymmetries a SET costs ~4x a RESET, so trading a few extra RESETs for
fewer SETs cuts write energy below the count-minimal choice.

Timing is unchanged from Flip-N-Write: the count bound (at most ``N/2``
data-cell programs per unit, enforced as a feasibility override on the
cost choice) preserves the two-units-per-write-unit power guarantee, so
the write stage stays ``(N/M)/2`` write units — Eq. 2's constant.  The
scheme's whole effect is on the energy (and wear) column.

Guarantee (pinned by the ``wire_vs_fnw_energy`` metamorphic relation):
WIRE's per-line write energy never exceeds Flip-N-Write's on the same
``(stored image, new data)`` pair, because FNW's count-rule choice is
always feasible under the same bound and WIRE picks the cost-minimal
feasible encoding.
"""

from __future__ import annotations

import numpy as np

from repro.core.read_stage import cost_aware_flip
from repro.pcm.state import LineState
from repro.schemes.base import WriteOutcome, WriteScheme

__all__ = ["WIREWrite"]


class WIREWrite(WriteScheme):
    """``T = Tread + (N/M)/2 * Tset``; polarity chosen by energy, not count."""

    name = "wire"
    requires_read = True

    def worst_case_units(self) -> float:
        return self.config.units_per_line / 2.0

    def _write_once(self, state: LineState, new_logical: np.ndarray) -> WriteOutcome:
        new_logical = np.asarray(new_logical, dtype=np.uint64)
        # Cost objective over data cells only (charge_tag=False); the
        # count bound keeps FNW's power/timing guarantee intact, so the
        # Eq. 2 write-stage constant below stays honest.
        rs = cost_aware_flip(
            state.physical,
            state.flip,
            new_logical,
            set_cost=self.energy_model.e_set,
            reset_cost=self.energy_model.e_reset,
            unit_bits=self.config.data_unit_bits,
            max_programs=self.config.data_unit_bits // 2,
            charge_tag=False,
        )
        state.store(rs.physical, rs.flip)
        return self._outcome(
            units=self.worst_case_units(),
            read_ns=self.t_read,
            analysis_ns=0.0,
            n_set=int(rs.n_set.sum()),
            n_reset=int(rs.n_reset.sum()),
            flipped_units=int(rs.flip.sum()),
        )
