"""Common interface for PCM write schemes.

A scheme turns ``(stored image, new logical data)`` into a
:class:`WriteOutcome` — the bank-occupancy time, the Figure-10 write-unit
count, and the programmed-cell counts that drive the energy model — and
commits the new image to the :class:`~repro.pcm.state.LineState`.

Service-time convention
-----------------------
``service_ns`` is the total time the write occupies the bank, including
the read-before-write and analysis components where the scheme has them.
``units`` is only the *write-stage* length expressed in multiples of
``t_set`` — the quantity the paper's Figure 10 plots (Tetris: measured
``result + subresult/K``; baselines: their worst-case constants).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, ClassVar

import numpy as np

from repro.config import SystemConfig, default_config
from repro.pcm.energy import EnergyModel
from repro.pcm.state import LineState
from repro.verify.invariants import runtime_verification_enabled, verify_outcome

__all__ = ["WriteOutcome", "WriteScheme", "SCHEME_REGISTRY", "get_scheme"]


@dataclass(frozen=True)
class WriteOutcome:
    """Everything the simulator and benches need to know about one write.

    Attributes
    ----------
    service_ns:
        Total bank occupancy (read + analysis + write stages).
    units:
        Write-stage length in ``t_set`` units (Figure 10's metric).
    read_ns / analysis_ns:
        The pre-write components (0 where the scheme has none).
    n_set / n_reset:
        Cells actually programmed to '1' / '0'.
    energy:
        Normalized energy (see :class:`~repro.pcm.energy.EnergyModel`).
    flipped_units:
        How many data units were stored inverted by this write.
    """

    service_ns: float
    units: float
    read_ns: float
    analysis_ns: float
    n_set: int
    n_reset: int
    energy: float
    flipped_units: int = 0


SCHEME_REGISTRY: dict[str, type["WriteScheme"]] = {}


class WriteScheme(ABC):
    """Base class: subclasses register themselves under ``name``."""

    name: ClassVar[str]
    requires_read: ClassVar[bool]

    def __init__(self, config: SystemConfig | None = None) -> None:
        self.config = config if config is not None else default_config()
        self.energy_model = EnergyModel(
            t_set_ns=self.config.timings.t_set_ns,
            t_reset_ns=self.config.timings.t_reset_ns,
            reset_current_ratio=self.config.L,
        )
        # Resolved once so the disabled case costs one attribute test on
        # the hot path (config flag OR the REPRO_VERIFY environment).
        self.verify = runtime_verification_enabled(self.config)

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        if hasattr(cls, "name") and isinstance(getattr(cls, "name", None), str):
            SCHEME_REGISTRY[cls.name] = cls

    # ------------------------------------------------------------------
    @abstractmethod
    def write(self, state: LineState, new_logical: np.ndarray) -> WriteOutcome:
        """Service one cache-line write and commit the new image."""

    @abstractmethod
    def worst_case_units(self) -> float:
        """The closed-form write-unit count (Equations 1-4, Fig 10 bars)."""

    # ------------------------------------------------------------------
    @property
    def t_read(self) -> float:
        return self.config.timings.t_read_ns

    @property
    def t_set(self) -> float:
        return self.config.timings.t_set_ns

    @property
    def t_reset(self) -> float:
        return self.config.timings.t_reset_ns

    def worst_case_service_ns(self) -> float:
        """Upper bound on ``service_ns`` (used for queue admission)."""
        read = self.t_read if self.requires_read else 0.0
        return read + self.worst_case_units() * self.t_set

    def _outcome(
        self,
        *,
        units: float,
        read_ns: float,
        analysis_ns: float,
        n_set: int,
        n_reset: int,
        flipped_units: int = 0,
    ) -> WriteOutcome:
        """Assemble an outcome, deriving time and energy consistently."""
        outcome = WriteOutcome(
            service_ns=read_ns + analysis_ns + units * self.t_set,
            units=units,
            read_ns=read_ns,
            analysis_ns=analysis_ns,
            n_set=n_set,
            n_reset=n_reset,
            energy=float(self.energy_model.write_energy(n_set, n_reset))
            + (self.energy_model.read_energy_per_line if read_ns > 0 else 0.0),
            flipped_units=flipped_units,
        )
        if self.verify:
            verify_outcome(outcome, t_set_ns=self.t_set)
        return outcome


def get_scheme(
    name: str, config: SystemConfig | None = None, **kwargs
) -> WriteScheme:
    """Instantiate a registered scheme by name (see ``ALL_SCHEMES``)."""
    try:
        cls: Callable[..., WriteScheme] = SCHEME_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scheme {name!r}; registered: {sorted(SCHEME_REGISTRY)}"
        ) from None
    return cls(config, **kwargs)
