"""Common interface for PCM write schemes.

A scheme turns ``(stored image, new logical data)`` into a
:class:`WriteOutcome` — the bank-occupancy time, the Figure-10 write-unit
count, and the programmed-cell counts that drive the energy model — and
commits the new image to the :class:`~repro.pcm.state.LineState`.

Service-time convention
-----------------------
``service_ns`` is the total time the write occupies the bank, including
the read-before-write and analysis components where the scheme has them.
``units`` is only the *write-stage* length expressed in multiples of
``t_set`` — the quantity the paper's Figure 10 plots (Tetris: measured
``result + subresult/K``; baselines: their worst-case constants).
"""

from __future__ import annotations

import dataclasses
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, ClassVar

import numpy as np

from repro.config import SystemConfig, default_config
from repro.obs.runtime import tracer_for
from repro.pcm.energy import EnergyModel
from repro.pcm.state import LineState
from repro.pcm.wear import WearTracker
from repro.verify.invariants import runtime_verification_enabled, verify_outcome

__all__ = ["WriteOutcome", "WriteScheme", "SCHEME_REGISTRY", "get_scheme"]


@dataclass(frozen=True)
class WriteOutcome:
    """Everything the simulator and benches need to know about one write.

    Attributes
    ----------
    service_ns:
        Total bank occupancy (read + analysis + write stages).
    units:
        Write-stage length in ``t_set`` units (Figure 10's metric).
    read_ns / analysis_ns:
        The pre-write components (0 where the scheme has none).
    n_set / n_reset:
        Cells actually programmed to '1' / '0'.
    energy:
        Normalized energy (see :class:`~repro.pcm.energy.EnergyModel`).
    flipped_units:
        How many data units were stored inverted by this write.
    attempts:
        Program passes the write needed (1 = clean first shot; only the
        fault-enabled path ever reports more).
    retried_bits:
        Cell programs issued by passes beyond the first (0 when clean).
    retry_units:
        Extra write-stage length, in ``t_set`` units, consumed by the
        residual retry schedules (``units`` keeps its pristine meaning,
        so Figure-10 comparisons stay untouched).
    verify_ns:
        Read-back verification time (one array read per attempt).
    degraded:
        The write needed ECP pointers to become durable.
    retired:
        The line was retired to a spare during this write.
    """

    service_ns: float
    units: float
    read_ns: float
    analysis_ns: float
    n_set: int
    n_reset: int
    energy: float
    flipped_units: int = 0
    attempts: int = 1
    retried_bits: int = 0
    retry_units: float = 0.0
    verify_ns: float = 0.0
    degraded: bool = False
    retired: bool = False


SCHEME_REGISTRY: dict[str, type["WriteScheme"]] = {}


class WriteScheme(ABC):
    """Base class: subclasses register themselves under ``name``."""

    name: ClassVar[str]
    requires_read: ClassVar[bool]

    def __init__(self, config: SystemConfig | None = None) -> None:
        self.config = config if config is not None else default_config()
        self.energy_model = EnergyModel(
            t_set_ns=self.config.timings.t_set_ns,
            t_reset_ns=self.config.timings.t_reset_ns,
            reset_current_ratio=self.config.L,
        )
        # Resolved once so the disabled case costs one attribute test on
        # the hot path (config flag OR the REPRO_VERIFY environment).
        self.verify = runtime_verification_enabled(self.config)
        # Observability (repro.obs): same resolve-once contract — None
        # unless config.trace.enabled, so an untraced write pays a
        # single `is None` test.  ``obs_bank`` is stamped by the PCMBank
        # that owns this scheme instance so concurrently-busy banks land
        # on distinct timeline lanes.
        self._obs = tracer_for(self.config)
        self.obs_bank: int | None = None
        # Endurance accounting rides the write path by default; the fault
        # model needs it always-on (and in per-cell mode) when enabled.
        faults_cfg = getattr(self.config, "faults", None)
        faults_on = bool(faults_cfg is not None and faults_cfg.enabled)
        track_wear = bool(getattr(self.config, "track_wear", False)) or faults_on
        self.wear: WearTracker | None = (
            WearTracker(
                cell_tracking=faults_on, unit_bits=self.config.data_unit_bits
            )
            if track_wear
            else None
        )
        if faults_on:
            from repro.faults.model import FaultModel

            self.faults: "FaultModel | None" = FaultModel(
                self.config, wear=self.wear
            )
        else:
            self.faults = None

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        # Only a class that declares its *own* ``name`` registers: a
        # subclass inheriting the attribute is a refinement of an already
        # registered scheme, not a new one, and must not clobber its
        # parent's registry slot.
        name = cls.__dict__.get("name")
        if isinstance(name, str):
            existing = SCHEME_REGISTRY.get(name)
            if existing is not None and existing is not cls:
                raise ValueError(
                    f"scheme name {name!r} is already registered by "
                    f"{existing.__module__}.{existing.__qualname__}; "
                    f"{cls.__module__}.{cls.__qualname__} must pick a "
                    f"distinct name (silent shadowing would mis-price "
                    f"every sweep and cache key using {name!r})"
                )
            SCHEME_REGISTRY[name] = cls

    # ------------------------------------------------------------------
    def write(
        self, state: LineState, new_logical: np.ndarray, *, line: int = 0
    ) -> WriteOutcome:
        """Service one cache-line write and commit the new image.

        Template method: subclasses implement :meth:`_write_once` (one
        pristine, fault-free pass); this wrapper adds the always-on wear
        accounting and, when ``config.faults.enabled``, the bounded
        program-and-verify retry loop with ECP/retirement degradation.
        ``line`` keys the wear and fault state; callers that do not
        model addresses may omit it.
        """
        if self.faults is None:
            outcome = self._write_once(state, new_logical)
            if self.wear is not None:
                self.wear.record(int(line), outcome.n_set, outcome.n_reset)
        else:
            outcome = self._write_with_faults(state, new_logical, int(line))
        if self._obs is not None:
            self._trace_write(outcome, int(line))
        return outcome

    @abstractmethod
    def _write_once(self, state: LineState, new_logical: np.ndarray) -> WriteOutcome:
        """One pristine program pass: price the write, commit the image."""

    @abstractmethod
    def worst_case_units(self) -> float:
        """The closed-form write-unit count (Equations 1-4, Fig 10 bars)."""

    # ------------------------------------------------------------------
    def _write_with_faults(
        self, state: LineState, new_logical: np.ndarray, line: int
    ) -> WriteOutcome:
        """Run one write through the fault model's verify-and-retry loop.

        The pristine pass is priced by :meth:`_write_once` exactly as in
        the fault-free path; the fault model then decides which cells it
        actually landed on, runs the residual retries, and this wrapper
        folds the extra latency/energy into the outcome.  On an
        uncorrectable failure the stored image is restored before the
        structured error propagates — never silent corruption.
        """
        from repro.faults.ecp import UncorrectableWriteError

        before_physical = state.physical.copy()
        before_flip = state.flip.copy()
        outcome = self._write_once(state, new_logical)
        try:
            report = self.faults.program_line(
                line, before_physical, state.physical
            )
        except UncorrectableWriteError:
            state.store(before_physical, before_flip)
            raise
        # The scheme's own pass counts as attempt 1 even when nothing
        # changed; hardware verifies every program command it issued.
        attempts = max(report.attempts, 1)
        verify_ns = attempts * self.t_read
        extended = dataclasses.replace(
            outcome,
            service_ns=outcome.service_ns
            + report.retry_units * self.t_set
            + verify_ns,
            n_set=outcome.n_set + report.retry_set,
            n_reset=outcome.n_reset + report.retry_reset,
            energy=outcome.energy
            + float(
                self.energy_model.write_energy(
                    report.retry_set, report.retry_reset
                )
            )
            + attempts * self.energy_model.read_energy_per_line,
            attempts=attempts,
            retried_bits=report.retried_bits,
            retry_units=report.retry_units,
            verify_ns=verify_ns,
            degraded=report.degraded,
            retired=report.retired,
        )
        if self.verify:
            verify_outcome(extended, t_set_ns=self.t_set)
        return extended

    # ------------------------------------------------------------------
    def _trace_write(self, outcome: WriteOutcome, line: int) -> None:
        """Record one serviced write on the scheme timeline.

        The span is retrospective: it starts at the tracer clock's *now*
        (the instant the bank began servicing the write in a DES run)
        and lasts the already-computed ``service_ns``.  Tetris attaches
        its Equation-5 quantities when a schedule is available.
        """
        obs = self._obs
        ts = obs.clock.now_ns()
        tid = self.name if self.obs_bank is None else f"bank{self.obs_bank}"
        args: dict = {
            "line": line,
            "units": outcome.units,
            "n_set": outcome.n_set,
            "n_reset": outcome.n_reset,
        }
        sched = getattr(self, "last_schedule", None)
        if sched is not None:
            args["result"] = sched.result
            args["subresult"] = sched.subresult
        if outcome.attempts > 1:
            args["attempts"] = outcome.attempts
            obs.instant(
                "write.retry",
                ts_ns=ts + outcome.service_ns,
                pid="scheme",
                tid=tid,
                cat="faults",
                args={"line": line, "attempts": outcome.attempts,
                      "retried_bits": outcome.retried_bits},
            )
        if outcome.degraded:
            obs.instant(
                "write.ecp_degraded", ts_ns=ts + outcome.service_ns,
                pid="scheme", tid=tid, cat="faults",
                args={"line": line},
            )
        if outcome.retired:
            obs.instant(
                "write.retired", ts_ns=ts + outcome.service_ns,
                pid="scheme", tid=tid, cat="faults",
                args={"line": line},
            )
        obs.complete(
            f"write.{self.name}",
            ts_ns=ts,
            dur_ns=outcome.service_ns,
            pid="scheme",
            tid=tid,
            cat="write",
            args=args,
        )
        m = obs.metrics.scope(f"scheme.{self.name}")
        m.counter("writes").inc()
        m.counter("set_bits").inc(outcome.n_set)
        m.counter("reset_bits").inc(outcome.n_reset)
        m.latency("service_ns").add(outcome.service_ns)
        m.gauge("units").set(outcome.units)
        if outcome.attempts > 1:
            m.counter("retried_writes").inc()

    # ------------------------------------------------------------------
    @property
    def t_read(self) -> float:
        return self.config.timings.t_read_ns

    @property
    def t_set(self) -> float:
        return self.config.timings.t_set_ns

    @property
    def t_reset(self) -> float:
        return self.config.timings.t_reset_ns

    def worst_case_service_ns(self) -> float:
        """Upper bound on ``service_ns`` (used for queue admission)."""
        read = self.t_read if self.requires_read else 0.0
        return read + self.worst_case_units() * self.t_set

    def _outcome(
        self,
        *,
        units: float,
        read_ns: float,
        analysis_ns: float,
        n_set: int,
        n_reset: int,
        flipped_units: int = 0,
    ) -> WriteOutcome:
        """Assemble an outcome, deriving time and energy consistently."""
        outcome = WriteOutcome(
            service_ns=read_ns + analysis_ns + units * self.t_set,
            units=units,
            read_ns=read_ns,
            analysis_ns=analysis_ns,
            n_set=n_set,
            n_reset=n_reset,
            energy=float(self.energy_model.write_energy(n_set, n_reset))
            + (self.energy_model.read_energy_per_line if read_ns > 0 else 0.0),
            flipped_units=flipped_units,
        )
        if self.verify:
            verify_outcome(outcome, t_set_ns=self.t_set)
        return outcome


def get_scheme(
    name: str, config: SystemConfig | None = None, **kwargs
) -> WriteScheme:
    """Instantiate a registered scheme by name (see ``ALL_SCHEMES``)."""
    try:
        cls: Callable[..., WriteScheme] = SCHEME_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scheme {name!r}; registered: {sorted(SCHEME_REGISTRY)}"
        ) from None
    return cls(config, **kwargs)
