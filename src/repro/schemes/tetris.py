"""Tetris Write — the paper's contribution, as a :class:`WriteScheme`.

Pipeline per cache-line write (paper §III.B):

1. **read** — :func:`repro.core.read_stage.read_stage`: flip decision and
   per-unit SET/RESET counts (Algorithm 1);
2. **analysis** — :class:`repro.core.analysis.TetrisScheduler`: first-fit-
   decreasing packing of write-1s into write units and Tetris-filling of
   write-0s into the leftover sub-slots (Algorithm 2), charged with the
   measured 41-cycle analysis overhead (§IV.D);
3. **individually write** — service time from Equation 5,
   ``(result + subresult/K) * Tset``.

Two scheduling granularities are supported:

* ``"bank"`` (default) — the Global Charge Pump pools the four chips'
  budgets, so the eight 64-bit data units are packed against the
  bank-level budget of 128 SET units.  This matches the paper's GCP
  configuration (§IV).
* ``"chip"`` — each chip schedules its own 16-bit slices against its
  private budget of 32; the bank finishes when the slowest chip does.
  This models a system without GCP and is used in the ablation bench.
"""

from __future__ import annotations

import numpy as np

from repro.config import SystemConfig
from repro.core.analysis import TetrisScheduler
from repro.obs.runtime import emit_schedule
from repro.core.read_stage import read_stage
from repro.core.schedule import TetrisSchedule
from repro.pcm.state import LineState
from repro.schemes.base import WriteOutcome, WriteScheme
from repro.verify.invariants import verify_outcome, verify_schedule

__all__ = ["TetrisWrite"]

_U64 = np.uint64


class TetrisWrite(WriteScheme):
    """Content-aware write scheduling; ``units`` is measured, not fixed."""

    name = "tetris"
    requires_read = True

    def __init__(
        self,
        config: SystemConfig | None = None,
        *,
        granularity: str = "bank",
        exclusive_unit_slots: bool = False,
        adaptive_analysis: bool = False,
    ) -> None:
        """``adaptive_analysis`` enables the hardware fast path: when the
        line's total write-1 current and total write-0 current each fit a
        single (sub-)write-unit trivially — two adders and a comparator,
        no sorting network — the analyzer answers in ~4 cycles instead of
        41.  Observation 1 makes this the common case."""
        super().__init__(config)
        if granularity not in ("bank", "chip"):
            raise ValueError("granularity must be 'bank' or 'chip'")
        self.granularity = granularity
        self.adaptive_analysis = adaptive_analysis
        self.fast_path_hits = 0
        # 4 cycles at the 400 MHz analyzer clock: latch, two parallel
        # sums (adder trees), compare, write-out.
        self.fast_path_ns = 4 / 0.400
        cfg = self.config
        budget = (
            cfg.bank_power_budget
            if granularity == "bank"
            else cfg.power.power_budget_per_chip
        )
        # allow_split: when an operating point shrinks the budget below a
        # single burst's draw (mobile modes, high L), the burst divides
        # into budget-sized chunks as division-mode hardware would.
        self.scheduler = TetrisScheduler(
            cfg.K,
            cfg.L,
            budget,
            exclusive_unit_slots=exclusive_unit_slots,
            allow_split=True,
        )
        self.last_schedule: TetrisSchedule | None = None
        self.last_chip_schedules: list[TetrisSchedule] | None = None

    # ------------------------------------------------------------------
    def worst_case_units(self) -> float:
        """Upper bound: Tetris never does worse than Three-Stage-Write's
        phase structure, but for queue-admission purposes we bound it by
        the conventional count (every unit in its own write unit plus a
        full set of overflow sub-slots)."""
        return float(self.config.units_per_line) + (
            self.config.data_units_per_line / self.config.K
        )

    # ------------------------------------------------------------------
    def _write_once(self, state: LineState, new_logical: np.ndarray) -> WriteOutcome:
        new_logical = np.asarray(new_logical, dtype=_U64)
        rs = read_stage(
            state.physical,
            state.flip,
            new_logical,
            unit_bits=self.config.data_unit_bits,
            count_flip_bit=self.config.count_flip_bit,
        )

        if self.granularity == "bank":
            sched = self.scheduler.schedule(rs.n_set, rs.n_reset)
            units = sched.service_units()
            self.last_schedule = sched
            self.last_chip_schedules = None
            if self.verify:
                verify_schedule(
                    sched,
                    n_set=rs.n_set,
                    n_reset=rs.n_reset,
                    L=self.scheduler.L,
                    units=units,
                )
        else:
            units = self._schedule_per_chip(state, rs.physical)

        analysis_ns = self.config.analysis_overhead_ns
        if self.adaptive_analysis and self._fast_path_applies(rs):
            analysis_ns = self.fast_path_ns
            self.fast_path_hits += 1

        if self._obs is not None:
            # The write stage starts after the read + analysis stages;
            # lanes land on the bank timeline (GCP mode) or one process
            # per chip (private-pump mode).
            base = self._obs.clock.now_ns() + self.t_read + analysis_ns
            bank_pid = (
                "bank" if self.obs_bank is None else f"bank{self.obs_bank}"
            )
            if self.last_schedule is not None:
                emit_schedule(
                    self._obs,
                    self.last_schedule,
                    base_ns=base,
                    t_set_ns=self.t_set,
                    pid=bank_pid,
                    budget=self.scheduler.power_budget,
                )
            elif self.last_chip_schedules is not None:
                for c, chip_sched in enumerate(self.last_chip_schedules):
                    emit_schedule(
                        self._obs,
                        chip_sched,
                        base_ns=base,
                        t_set_ns=self.t_set,
                        pid=f"{bank_pid}.chipsched{c}",
                    )

        before = state.physical.copy() if self.verify else None
        state.store(rs.physical, rs.flip)
        outcome = self._outcome(
            units=units,
            read_ns=self.t_read,
            analysis_ns=analysis_ns,
            n_set=int(rs.n_set.sum()),
            n_reset=int(rs.n_reset.sum()),
            flipped_units=int(rs.flip.sum()),
        )
        if self.verify:
            # count_flip_bit adds flip-tag programs to the counts that the
            # physical image diff cannot see; allow that many extras.
            verify_outcome(
                outcome,
                t_set_ns=self.t_set,
                state_before=before,
                state_after=state.physical,
                exact_cells=not self.config.count_flip_bit,
                max_extra_cells=int(rs.flip.size),
            )
        return outcome

    def _fast_path_applies(self, rs) -> bool:
        """Trivial schedule detector: all write-1s share one write unit
        AND all write-0s share one sub-slot of its interspace."""
        budget = self.scheduler.power_budget
        in1 = float(rs.n_set.sum())
        in0 = float(rs.n_reset.sum()) * self.config.L
        return in1 <= budget and in1 + in0 <= budget

    # ------------------------------------------------------------------
    def _schedule_per_chip(self, state: LineState, new_physical: np.ndarray) -> float:
        """No-GCP mode: schedule each chip's slices independently.

        The flip decision stays at data-unit granularity (it already
        happened in the caller); here we only split each unit's SET/RESET
        masks into the per-chip 16-bit lanes and pack each chip against
        its private budget.  The bank's write completes when the slowest
        chip completes.
        """
        cfg = self.config
        slice_bits = cfg.organization.write_unit_bits_per_chip
        n_chips = cfg.data_unit_bits // slice_bits
        set_bits = ~state.physical & new_physical
        reset_bits = state.physical & ~new_physical

        schedules: list[TetrisSchedule] = []
        worst = 0.0
        lane = _U64((1 << slice_bits) - 1)
        for c in range(n_chips):
            shift = _U64(c * slice_bits)
            n1 = np.bitwise_count((set_bits >> shift) & lane).astype(np.int64)
            n0 = np.bitwise_count((reset_bits >> shift) & lane).astype(np.int64)
            sched = self.scheduler.schedule(n1, n0)
            if self.verify:
                verify_schedule(
                    sched, n_set=n1, n_reset=n0, L=self.scheduler.L,
                    units=sched.service_units(),
                )
            schedules.append(sched)
            worst = max(worst, sched.service_units())
        self.last_schedule = None
        self.last_chip_schedules = schedules
        return worst
