"""Simulation parameter sets (paper Table II) and derived constants.

The paper evaluates Tetris Write on a 4-core CMP with a 3-level cache
hierarchy backed by 4 GB of SLC PCM built from 4 X16 chips per bank.  All
timing below is taken verbatim from Table II of the paper; the PCM numbers
originate from Samsung's 90 nm PRAM prototype (Lee et al., JSSC 2008).

Two kinds of objects live here:

* :class:`SystemConfig` — the full Table II configuration (CPU, caches,
  memory controller, PCM organization and timing) plus the knobs our
  reproduction adds (RNG seed, scheduling granularity, ...).
* Factory helpers — :func:`default_config` reproduces Table II exactly;
  :func:`mobile_config` models the reduced-current mobile scenario the
  introduction describes (write unit shrunk to 4 or 2 bits per chip).

Everything downstream (schemes, PCM device model, full-system simulator)
reads its parameters from a :class:`SystemConfig` so that ablation sweeps
only ever touch one object.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field


class ConfigError(ValueError):
    """Raised when a configuration is internally inconsistent."""


@dataclass(frozen=True)
class PCMTimings:
    """Raw device timing, in nanoseconds (paper Table II, "Memory Timing").

    ``t_set`` dominates: a SET (crystallize, write '1') takes about 8x as
    long as a RESET (amorphize, write '0'), which is the *time asymmetry*
    the schemes exploit.
    """

    t_read_ns: float = 50.0
    t_reset_ns: float = 53.0
    t_set_ns: float = 430.0

    def __post_init__(self) -> None:
        if min(self.t_read_ns, self.t_reset_ns, self.t_set_ns) <= 0:
            raise ConfigError("all PCM timings must be positive")
        if self.t_set_ns < self.t_reset_ns:
            raise ConfigError(
                "t_set must be >= t_reset (SET is the slow operation); got "
                f"t_set={self.t_set_ns} < t_reset={self.t_reset_ns}"
            )

    @property
    def time_asymmetry(self) -> int:
        """``K`` — how many RESET slots fit in one SET slot (floor, >= 1).

        The paper uses K = 8 for 430 ns / 53 ns.  A write unit lasting
        ``t_set`` is divided into K *sub-write-units* of ``t_set / K`` each;
        write-0 operations occupy exactly one sub-write-unit.
        """
        return max(1, int(self.t_set_ns // self.t_reset_ns))

    @property
    def t_sub_ns(self) -> float:
        """Duration of one sub-write-unit (``t_set / K``)."""
        return self.t_set_ns / self.time_asymmetry


@dataclass(frozen=True)
class PCMPower:
    """Current/power model of the charge pump (paper Table II + §IV.D).

    Currents are expressed in *SET units*: one concurrent SET costs 1.0,
    one concurrent RESET costs ``reset_set_current_ratio`` (the paper's
    ``L`` = 2).  ``power_budget`` is the maximum number of SET units the
    pump can supply at one instant — 32 per chip in the paper's worked
    example (so 32 SETs *or* 16 RESETs per chip at once), 128 per bank
    when the four chips pool their pumps through the Global Charge Pump.
    """

    reset_set_current_ratio: float = 2.0
    power_budget_per_chip: float = 32.0
    gcp_enabled: bool = True
    pump_voltage_v: float = 5.0
    pump_current_ma: float = 25.0

    def __post_init__(self) -> None:
        if self.reset_set_current_ratio <= 0:
            raise ConfigError("reset/set current ratio must be positive")
        if self.power_budget_per_chip <= 0:
            raise ConfigError("power budget must be positive")

    @property
    def L(self) -> float:
        """The paper's power-asymmetry constant (Creset / Cset)."""
        return self.reset_set_current_ratio

    @property
    def baseline_write_power_mw(self) -> float:
        """Pump power in division-write mode (§IV.D: 5 V x 25 mA = 125 mW)."""
        return self.pump_voltage_v * self.pump_current_ma


@dataclass(frozen=True)
class PCMOrganization:
    """Physical organization (paper Table II, "PCM Organization").

    A memory bank is built from ``chips_per_bank`` chips of
    ``chip_io_bits`` I/O width.  The charge-pump constraint limits a chip
    to ``write_unit_bits_per_chip`` concurrently-programmed bits under the
    conventional scheme, so the bank-level write unit is
    ``chips_per_bank * write_unit_bits_per_chip / 8`` bytes (8 B in the
    paper) and a 64 B cache line needs 8 sequential write units.
    """

    capacity_bytes: int = 4 << 30
    num_ranks: int = 1
    num_banks: int = 8
    chips_per_bank: int = 4
    chip_io_bits: int = 16
    write_unit_bits_per_chip: int = 16
    row_size_bytes: int = 2048
    # Subarrays per bank (the paper's refs [13]/[15]): with > 1, a read
    # may proceed under an in-flight write when the two target different
    # subarrays.  1 disables intra-bank parallelism (the paper's model).
    subarrays_per_bank: int = 1

    def __post_init__(self) -> None:
        if self.chip_io_bits not in (2, 4, 8, 16, 32):
            raise ConfigError(f"unsupported chip I/O width: {self.chip_io_bits}")
        if self.write_unit_bits_per_chip > self.chip_io_bits:
            raise ConfigError("write unit cannot exceed chip I/O width")
        if self.num_banks < 1 or self.chips_per_bank < 1:
            raise ConfigError("need at least one bank and one chip")
        if self.subarrays_per_bank < 1:
            raise ConfigError("need at least one subarray per bank")

    @property
    def write_unit_bytes_per_bank(self) -> int:
        """Bank-level write unit in bytes (8 B in the default config)."""
        return self.chips_per_bank * self.write_unit_bits_per_chip // 8

    @property
    def bank_data_width_bits(self) -> int:
        return self.chips_per_bank * self.chip_io_bits


@dataclass(frozen=True)
class CacheConfig:
    """One cache level (paper Table II)."""

    name: str
    size_bytes: int
    assoc: int
    latency_cycles: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes % (self.assoc * self.line_bytes):
            raise ConfigError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"assoc*line ({self.assoc}*{self.line_bytes})"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)


@dataclass(frozen=True)
class CPUConfig:
    """Core count and clock (paper Table II: 4-core CMP at 2 GHz).

    ``max_outstanding_reads`` models the memory-level parallelism of an
    out-of-order core: with 1 the core blocks on every post-LLC read
    (our default substitute for GEM5's O3 cores, DESIGN.md §4); larger
    values let it keep executing with several misses in flight, blocking
    only at the limit.
    """

    num_cores: int = 4
    freq_ghz: float = 2.0
    base_cpi: float = 1.0
    max_outstanding_reads: int = 1

    def __post_init__(self) -> None:
        if self.max_outstanding_reads < 1:
            raise ConfigError("need at least one outstanding read")
        if self.freq_ghz <= 0 or self.base_cpi <= 0:
            raise ConfigError("frequency and CPI must be positive")

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.freq_ghz


@dataclass(frozen=True)
class FaultConfig:
    """Program-failure model (``repro.faults``; docs/FAULTS.md).

    Real PCM programs fail: transiently (cell variation, drift — the
    pulse lands but the resistance misses its band) and permanently
    (endurance-induced stuck-at cells).  When ``enabled``, every scheme's
    write path runs a bounded program-and-verify loop against a
    deterministic, seeded :class:`repro.faults.FaultModel`; writes that
    exhaust retries degrade gracefully through an ECP-style pointer
    table and, beyond that, line retirement to a spare pool.

    Off by default: the disabled path must stay bit-identical to a
    simulator without the fault subsystem.
    """

    enabled: bool = False
    # Per-bit probability that one program pulse fails transiently (per
    # attempt).  0 disables transient faults even when ``enabled``.
    transient_bit_error_rate: float = 0.0
    # Lognormal sigma of the per-region ProcessVariation factor scaling
    # the transient rate (slow regions fail more).  0 = uniform rate.
    variation_sigma: float = 0.0
    variation_region_lines: int = 1024
    # Per-cell program endurance: lognormal(mean, sigma); a cell whose
    # program count crosses its drawn endurance sticks at the last value
    # it successfully held.
    endurance_mean: float = 1e8
    endurance_sigma: float = 0.2
    # Program-and-verify bound: total program passes per write per line
    # (the first pass included) before degradation kicks in.
    max_write_attempts: int = 3
    # Error-Correcting Pointers per line (Schechter et al., ISCA 2010):
    # up to this many stuck-mismatched cells are absorbed per write.
    ecp_entries: int = 6
    # Retirement spare pool (per fault domain); 0 means the first
    # over-ECP line raises UncorrectableWriteError immediately.
    spare_lines: int = 64
    seed: int = 20160816

    def __post_init__(self) -> None:
        if not 0.0 <= self.transient_bit_error_rate < 1.0:
            raise ConfigError("transient_bit_error_rate must be in [0, 1)")
        if self.variation_sigma < 0 or self.endurance_sigma < 0:
            raise ConfigError("sigmas must be non-negative")
        if self.variation_region_lines < 1:
            raise ConfigError("variation_region_lines must be >= 1")
        if self.endurance_mean <= 0:
            raise ConfigError("endurance_mean must be positive")
        if self.max_write_attempts < 1:
            raise ConfigError("max_write_attempts must be >= 1")
        if self.ecp_entries < 0 or self.spare_lines < 0:
            raise ConfigError("ecp_entries/spare_lines must be non-negative")


@dataclass(frozen=True)
class TraceConfig:
    """Observability knobs (``repro.obs``; docs/OBSERVABILITY.md).

    When ``enabled``, instrumented components (engine, memory
    controller, schemes, chips, fault model) record spans / instants /
    counters into a shared ring-buffer tracer, exportable as
    Perfetto-loadable Chrome trace JSON and flamegraph collapsed
    stacks.  Off by default: a disabled run must stay bit-identical to
    a build without the observability subsystem (the disabled path is
    one attribute check per site; ``benchmarks/bench_obs_overhead.py``
    pins it below 2%).
    """

    enabled: bool = False
    # Ring capacity in events; older events are overwritten (and
    # counted as dropped) rather than growing memory without bound.
    buffer_events: int = 1 << 16
    # Clock domain: "sim" stamps events in simulated nanoseconds
    # (deterministic under a fixed seed); "wall" uses the host
    # process clock (profiling only, never a simulation result).
    clock: str = "sim"

    def __post_init__(self) -> None:
        if self.buffer_events < 1:
            raise ConfigError("trace buffer must hold at least one event")
        if self.clock not in ("sim", "wall"):
            raise ConfigError(f"unknown trace clock domain: {self.clock!r}")


@dataclass(frozen=True)
class MemCtrlConfig:
    """Memory controller (paper Table II: FR-FCFS, 32-entry R/W queues).

    Writes are serviced when the write queue fills beyond
    ``drain_high_watermark`` and draining continues until occupancy drops
    to ``drain_low_watermark`` — the paper's FR-FCFS variant "schedules
    the read request first and services the write requests only when the
    write queue is full", which is why read-dominant workloads
    (blackscholes, swaptions) see long write waits under every scheme.
    ``opportunistic_drain=True`` relaxes that: a bank with no read
    pending may service a write early (kept as an ablation knob).
    """

    read_queue_entries: int = 32
    write_queue_entries: int = 32
    drain_high_watermark: int = 28
    drain_low_watermark: int = 8
    opportunistic_drain: bool = False
    # Write pausing (Qureshi et al., HPCA 2010 — the paper's refs [23-24]):
    # an in-flight write may be suspended at sub-write-unit granularity to
    # serve a critical read, then resumed with a small re-ramp penalty.
    # Off by default: the paper's controller does not pause.
    write_pausing: bool = False
    pause_overhead_ns: float = 10.0
    pause_threshold_ns: float = 100.0
    # Write coalescing (NVMain-style): a write to a line that already has
    # a pending write absorbs into it — one bank service instead of two.
    # Off by default to match the paper's controller.
    write_coalescing: bool = False
    # Drain ordering: "fifo" (the paper's oldest-first) or "sjf" —
    # shortest-predicted-service first, possible because Tetris's analysis
    # stage knows each write's service time before it is issued.
    drain_order: str = "fifo"

    def __post_init__(self) -> None:
        if not 0 <= self.drain_low_watermark <= self.drain_high_watermark <= self.write_queue_entries:
            raise ConfigError("watermarks must satisfy 0 <= lo <= hi <= capacity")
        if self.pause_overhead_ns < 0 or self.pause_threshold_ns < 0:
            raise ConfigError("pause parameters must be non-negative")
        if self.drain_order not in ("fifo", "sjf"):
            raise ConfigError(f"unknown drain order: {self.drain_order!r}")


@dataclass(frozen=True)
class SystemConfig:
    """Bundle of every knob in the simulated system (paper Table II).

    ``data_unit_bits`` is the granularity at which the Tetris analysis
    stage counts and schedules changed bits: 64 bits (one bank-level
    write-unit slice of the cache line) as in the paper's Figure 3.
    ``analysis_overhead_ns`` charges the paper's measured worst-case
    analysis latency (41 cycles at 400 MHz, §IV.D).
    """

    timings: PCMTimings = field(default_factory=PCMTimings)
    power: PCMPower = field(default_factory=PCMPower)
    organization: PCMOrganization = field(default_factory=PCMOrganization)
    cpu: CPUConfig = field(default_factory=CPUConfig)
    memctrl: MemCtrlConfig = field(default_factory=MemCtrlConfig)
    caches: tuple[CacheConfig, ...] = (
        CacheConfig("L1I", 32 << 10, 2, 2),
        CacheConfig("L1D", 32 << 10, 2, 2),
        CacheConfig("L2", 2 << 20, 8, 20),
        CacheConfig("L3", 32 << 20, 16, 50),
    )
    cache_line_bytes: int = 64
    data_unit_bits: int = 64
    analysis_overhead_ns: float = 41.0 / 0.400  # 41 cycles @ 400 MHz = 102.5 ns
    count_flip_bit: bool = False
    seed: int = 20160816
    # Runtime invariant verification (repro.verify.invariants): schemes
    # check every schedule/outcome they produce.  Off by default — the
    # REPRO_VERIFY=1 environment variable also enables it globally.
    verify_invariants: bool = False
    # Endurance accounting on the scheme write path (repro.pcm.wear):
    # on by default so the fault model always has program counts to
    # consume; turn off to shave the last few ns per write in sweeps
    # that do not read wear.  Forced on while ``faults.enabled``.
    track_wear: bool = True
    # Program-failure model (repro.faults; docs/FAULTS.md).
    faults: FaultConfig = field(default_factory=FaultConfig)
    # Observability (repro.obs; docs/OBSERVABILITY.md).
    trace: TraceConfig = field(default_factory=TraceConfig)

    def __post_init__(self) -> None:
        if self.cache_line_bytes % self.organization.write_unit_bytes_per_bank:
            raise ConfigError(
                "cache line must be a whole number of bank write units"
            )
        if self.data_unit_bits % 8 or self.data_unit_bits > 64:
            raise ConfigError("data_unit_bits must be a byte multiple <= 64")

    # ------------------------------------------------------------------
    # Derived quantities used throughout the schemes.
    # ------------------------------------------------------------------
    @property
    def units_per_line(self) -> int:
        """Number of write units a cache line occupies under the
        conventional scheme (the paper's ``N/M`` = 8)."""
        return self.cache_line_bytes // self.organization.write_unit_bytes_per_bank

    @property
    def data_units_per_line(self) -> int:
        """Number of ``data_unit_bits``-wide slices in a cache line."""
        return self.cache_line_bytes * 8 // self.data_unit_bits

    @property
    def K(self) -> int:
        """Time asymmetry (Tset // Treset)."""
        return self.timings.time_asymmetry

    @property
    def L(self) -> float:
        """Power asymmetry (Creset / Cset)."""
        return self.power.L

    @property
    def bank_power_budget(self) -> float:
        """Total instantaneous current the bank may draw, in SET units.

        With the Global Charge Pump, chips pool their budgets so data
        skew across chips cannot stall one chip while others idle.
        """
        return self.power.power_budget_per_chip * self.organization.chips_per_bank

    @property
    def chip_slices_per_unit(self) -> int:
        """How many chips one data unit is striped across."""
        return self.data_unit_bits // self.organization.write_unit_bits_per_chip

    def replace(self, **kwargs) -> "SystemConfig":
        """Return a copy with the given top-level fields replaced."""
        return dataclasses.replace(self, **kwargs)

    # ------------------------------------------------------------------
    # Serialization: configs are experiment artifacts and must be
    # reproducible from disk (the report generator embeds them).
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON-serializable representation (round-trips)."""
        return dataclasses.asdict(self)

    @staticmethod
    def from_dict(data: dict) -> "SystemConfig":
        """Rebuild a config saved with :meth:`to_dict`."""
        data = dict(data)
        faults = data.pop("faults", None)
        trace = data.pop("trace", None)
        return SystemConfig(
            timings=PCMTimings(**data.pop("timings")),
            power=PCMPower(**data.pop("power")),
            organization=PCMOrganization(**data.pop("organization")),
            cpu=CPUConfig(**data.pop("cpu")),
            memctrl=MemCtrlConfig(**data.pop("memctrl")),
            caches=tuple(CacheConfig(**c) for c in data.pop("caches")),
            # Configs saved before the fault subsystem round-trip as
            # fault-free (the behavior they were recorded under).
            faults=FaultConfig(**faults) if faults is not None else FaultConfig(),
            # Configs saved before the observability subsystem load with
            # tracing off (the behavior they were recorded under).
            trace=TraceConfig(**trace) if trace is not None else TraceConfig(),
            **data,
        )

    def to_json(self) -> str:
        import json

        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def canonical_json(self) -> str:
        """Minimal sorted-keys serialization for content addressing.

        The parallel result cache (``repro.parallel.resultcache``) keys
        cells on this string: identical configurations must serialize
        identically regardless of construction order, so keys are sorted
        and whitespace is fixed.
        """
        import json

        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    @staticmethod
    def from_json(text: str) -> "SystemConfig":
        import json

        return SystemConfig.from_dict(json.loads(text))


def default_config(**overrides) -> SystemConfig:
    """The paper's Table II configuration, with optional field overrides."""
    return SystemConfig(**overrides)


def mobile_config(write_unit_bits_per_chip: int = 4, **overrides) -> SystemConfig:
    """Reduced-current mobile configuration (paper §I).

    In a mobile system the supply current shrinks, so the number of cells
    a chip may program concurrently drops to 4 or even 2 bits.  The power
    budget scales proportionally: the default desktop budget of 32 SET
    units corresponds to a 16-bit write unit, so a 4-bit unit gets 8 and
    a 2-bit unit gets 4.
    """
    if write_unit_bits_per_chip not in (2, 4, 8):
        raise ConfigError("mobile write units are 2, 4 or 8 bits per chip")
    scale = write_unit_bits_per_chip / 16.0
    org = PCMOrganization(write_unit_bits_per_chip=write_unit_bits_per_chip)
    power = PCMPower(power_budget_per_chip=32.0 * scale)
    return SystemConfig(organization=org, power=power, **overrides)


def theoretical_write_units(config: SystemConfig) -> dict[str, float]:
    """Closed-form write-unit counts for the worst-case baselines.

    These are the horizontal reference lines of the paper's Figure 10:
    Conventional/DCW = N/M (8), Flip-N-Write = N/2M (4), 2-Stage-Write =
    (1/K + 1/2L)·N/M (3), Three-Stage-Write = (1/2K + 1/2L)·N/M (2.5).
    """
    nm = config.units_per_line
    K, L = config.K, config.L
    return {
        "conventional": float(nm),
        "dcw": float(nm),
        "flip_n_write": nm / 2.0,
        "two_stage": (1.0 / K + 1.0 / (2 * L)) * nm,
        "three_stage": (1.0 / (2 * K) + 1.0 / (2 * L)) * nm,
    }
