"""Vectorized bit-level primitives shared by the read stage and schemes.

A cache line is modelled as a small NumPy array of ``uint64`` *data units*
(8 units for a 64 B line).  Everything that touches individual bits goes
through this module so the hot paths stay vectorized: per the NumPy
performance guidance, the per-write work is a handful of ufunc calls over
the whole line rather than Python loops over 512 bits.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "popcount64",
    "hamming_distance",
    "set_mask",
    "reset_mask",
    "unpack_bits",
    "pack_units",
    "random_units",
]

_U64 = np.uint64


def popcount64(values: np.ndarray | int) -> np.ndarray | int:
    """Population count of uint64 values (vectorized).

    Accepts scalars or arrays; returns the same shape with small-int dtype.
    """
    arr = np.asarray(values, dtype=_U64)
    out = np.bitwise_count(arr)
    if np.isscalar(values) or arr.ndim == 0:
        return int(out)
    return out.astype(np.int64)


def hamming_distance(a: np.ndarray, b: np.ndarray) -> int:
    """Total number of differing bits between two equal-shape uint64 arrays."""
    a = np.asarray(a, dtype=_U64)
    b = np.asarray(b, dtype=_U64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return int(np.bitwise_count(a ^ b).sum())


def set_mask(old: np.ndarray, new: np.ndarray) -> np.ndarray:
    """Bits that must be programmed 0 -> 1 (SET operations)."""
    old = np.asarray(old, dtype=_U64)
    new = np.asarray(new, dtype=_U64)
    return ~old & new


def reset_mask(old: np.ndarray, new: np.ndarray) -> np.ndarray:
    """Bits that must be programmed 1 -> 0 (RESET operations)."""
    old = np.asarray(old, dtype=_U64)
    new = np.asarray(new, dtype=_U64)
    return old & ~new


def unpack_bits(units: np.ndarray, width: int = 64) -> np.ndarray:
    """Expand uint64 data units into a (n, width) array of 0/1 bytes.

    Bit 0 (LSB) of each unit lands in column 0.  Used by tests and the
    FSM-level chip model, never on the hot path.
    """
    units = np.atleast_1d(np.asarray(units, dtype=_U64))
    cols = np.arange(width, dtype=_U64)
    return ((units[:, None] >> cols) & _U64(1)).astype(np.uint8)


def pack_units(bits: np.ndarray) -> np.ndarray:
    """Inverse of :func:`unpack_bits`: (n, width) 0/1 array -> uint64 units."""
    bits = np.asarray(bits, dtype=_U64)
    if bits.ndim != 2 or bits.shape[1] > 64:
        raise ValueError("expected (n, <=64) bit matrix")
    cols = np.arange(bits.shape[1], dtype=_U64)
    return (bits << cols).sum(axis=1, dtype=_U64)


def random_units(rng: np.random.Generator, n: int) -> np.ndarray:
    """Draw ``n`` uniformly random uint64 data units."""
    return rng.integers(0, np.iinfo(np.uint64).max, size=n, dtype=np.uint64)


def flip_k_bits(
    rng: np.random.Generator, unit: int, ones_to_zero: int, zeros_to_one: int
) -> int:
    """Return ``unit`` with exactly the requested number of bit flips.

    Chooses ``ones_to_zero`` random 1-bits to clear and ``zeros_to_one``
    random 0-bits to set.  Raises ``ValueError`` if the unit does not have
    enough bits of the requested polarity.  Used by the synthetic content
    model to hit a target SET/RESET profile exactly.
    """
    u = int(unit)
    one_positions = [i for i in range(64) if (u >> i) & 1]
    zero_positions = [i for i in range(64) if not (u >> i) & 1]
    if ones_to_zero > len(one_positions) or zeros_to_one > len(zero_positions):
        raise ValueError(
            f"cannot flip {ones_to_zero} ones / {zeros_to_one} zeros in a unit "
            f"with {len(one_positions)} ones"
        )
    for i in rng.choice(len(one_positions), size=ones_to_zero, replace=False):
        u &= ~(1 << one_positions[int(i)])
    for i in rng.choice(len(zero_positions), size=zeros_to_one, replace=False):
        u |= 1 << zero_positions[int(i)]
    return u
