"""Process-local dispatch + accounting for the array kernels.

The hot bit-level kernels (read stage, cell diff, popcount) have two
implementations: the numpy-vectorized production path and a pure-Python
scalar reference.  ``REPRO_NO_VECTOR=1`` selects the scalar path
everywhere — the two are bit-identical (property-tested), so the switch
exists to *prove* the vectorization changed nothing and to debug kernel
issues with ordinary Python semantics.

Counters are plain module state: cheap to bump from a hot loop, read
back by the sweep engine for the per-lane stats report.  They are
process-local by design — worker processes keep their own counts; the
engine documents its numbers as parent-process observations.
"""

from __future__ import annotations

import os

__all__ = ["record", "reset", "snapshot", "use_scalar"]

_counts = {"vectorized": 0, "scalar": 0}


def use_scalar() -> bool:
    """True when ``REPRO_NO_VECTOR=1`` selects the scalar reference path.

    Read from the environment on every call so tests (and the bench
    harness) can flip the switch at runtime without re-importing.
    """
    return os.environ.get("REPRO_NO_VECTOR", "") == "1"


def record(kind: str, n: int = 1) -> None:
    """Count ``n`` kernel invocations of ``kind`` (vectorized/scalar)."""
    _counts[kind] += n


def snapshot() -> dict[str, int]:
    """Current counter values (a copy; safe to hold across resets)."""
    return dict(_counts)


def reset() -> None:
    """Zero the counters (test isolation / per-phase bench deltas)."""
    for key in _counts:
        _counts[key] = 0
