"""Shared low-level helpers (bit manipulation, RNG plumbing)."""

from repro.util.bits import (
    hamming_distance,
    pack_units,
    popcount64,
    random_units,
    reset_mask,
    set_mask,
    unpack_bits,
)

__all__ = [
    "hamming_distance",
    "pack_units",
    "popcount64",
    "random_units",
    "reset_mask",
    "set_mask",
    "unpack_bits",
]
