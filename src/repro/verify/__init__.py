"""Runtime invariant verification (enable with ``REPRO_VERIFY=1``).

See :mod:`repro.verify.invariants` and ``docs/SIMLINT.md`` (Layer 2).
"""

from repro.verify.invariants import (
    InvariantViolation,
    env_enabled,
    runtime_verification_enabled,
    verify_outcome,
    verify_schedule,
)

__all__ = [
    "InvariantViolation",
    "env_enabled",
    "runtime_verification_enabled",
    "verify_outcome",
    "verify_schedule",
]
