"""Runtime contract checker for schedules and write outcomes.

Static analysis (``tools/simlint``) guards the source; this module
guards the *values* the simulator produces.  When enabled it validates

* every :class:`~repro.core.schedule.TetrisSchedule` — occupancy within
  the power budget in every sub-slot, burst slots inside the declared
  time axis, each data unit's write-1/write-0 current scheduled exactly
  once, and the Figure-10 ``units`` agreeing with Equation 5
  (``result + subresult/K``) within tolerance;
* every :class:`~repro.schemes.base.WriteOutcome` — non-negative
  components, ``service_ns >= read_ns + analysis_ns``, the Equation-5
  service decomposition (extended to multi-attempt writes:
  ``read + analysis + (units + retry_units) * t_set + verify_ns``),
  retry accounting (``attempts >= 1``; a single-attempt write reports
  no retried bits or retry units), and ``n_set``/``n_reset`` consistent
  with the committed :class:`~repro.pcm.state.LineState` diff.

Violations raise :class:`InvariantViolation`, which carries a machine-
readable ``kind`` plus the offending slot/unit in ``context`` so a
failure in a million-write run pinpoints the broken schedule.

Enabling
--------
Verification is off by default and must stay zero-cost when off: schemes
capture one boolean at construction (``runtime_verification_enabled``)
and the hot path pays a single attribute test.  Turn it on with either

* ``REPRO_VERIFY=1`` in the environment (any of 1/true/yes/on), or
* ``SystemConfig.verify_invariants = True`` on the config you pass in.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Iterable, Mapping

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.schedule import TetrisSchedule
    from repro.schemes.base import WriteOutcome

__all__ = [
    "InvariantViolation",
    "env_enabled",
    "runtime_verification_enabled",
    "verify_schedule",
    "verify_outcome",
]

_TRUTHY = frozenset({"1", "true", "yes", "on"})


class InvariantViolation(AssertionError):
    """A simulator invariant failed at run time.

    Attributes
    ----------
    kind:
        Stable identifier of the broken invariant (``"power_budget"``,
        ``"slot_range"``, ``"duplicate_burst"``, ``"cell_accounting"``,
        ``"bit_accounting"``, ``"units_mismatch"``,
        ``"negative_component"``, ``"service_decomposition"``,
        ``"retry_accounting"``, ``"state_diff"``).
    context:
        The offending slot/unit/values, for post-mortem without a rerun.
    """

    def __init__(self, kind: str, message: str, **context: Any) -> None:
        self.kind = kind
        self.context: Mapping[str, Any] = dict(context)
        detail = ", ".join(f"{k}={v!r}" for k, v in self.context.items())
        super().__init__(f"[{kind}] {message}" + (f" ({detail})" if detail else ""))


def env_enabled() -> bool:
    """True when ``REPRO_VERIFY`` requests verification."""
    return os.environ.get("REPRO_VERIFY", "").strip().lower() in _TRUTHY


def runtime_verification_enabled(config: Any = None) -> bool:
    """Resolve the effective flag: config field OR environment."""
    return bool(getattr(config, "verify_invariants", False)) or env_enabled()


# ----------------------------------------------------------------------
# Schedule invariants.
# ----------------------------------------------------------------------
def verify_schedule(
    sched: "TetrisSchedule",
    *,
    n_set: Iterable[int] | None = None,
    n_reset: Iterable[int] | None = None,
    L: float | None = None,
    units: float | None = None,
    tol: float = 1e-9,
) -> None:
    """Check one schedule against the paper's constraints.

    ``n_set``/``n_reset`` (the read stage's per-unit program counts) and
    ``L`` enable the exactly-once accounting check; ``units`` enables
    the Equation-5 consistency check against an externally reported
    write-stage length.  All raise :class:`InvariantViolation`.
    """
    if sched.result < 0 or sched.subresult < 0:
        raise InvariantViolation(
            "units_mismatch",
            "negative result/subresult",
            result=sched.result,
            subresult=sched.subresult,
        )

    # --- power budget in every sub-slot (including out-of-range slots,
    # which occupancy() exposes before truncation via the slot checks).
    occ = sched.occupancy()
    if occ.size:
        worst = int(np.argmax(occ))
        if float(occ[worst]) > sched.power_budget + tol:
            raise InvariantViolation(
                "power_budget",
                "sub-slot current exceeds the power budget",
                slot=worst,
                current=float(occ[worst]),
                budget=sched.power_budget,
            )

    # --- slot ranges on the declared time axis.
    for op in sched.write1_queue:
        if not 0 <= op.slot < sched.result:
            raise InvariantViolation(
                "slot_range",
                "write-1 burst outside its write units",
                unit=op.unit,
                slot=op.slot,
                result=sched.result,
            )
    total = sched.total_sub_slots
    for op in sched.write0_queue:
        if not 0 <= op.slot < total:
            raise InvariantViolation(
                "slot_range",
                "write-0 burst outside the scheduled sub-slots",
                unit=op.unit,
                slot=op.slot,
                total_sub_slots=total,
            )

    # --- every burst scheduled exactly once.
    for kind, queue in (("write1", sched.write1_queue), ("write0", sched.write0_queue)):
        seen: set[tuple[int, int]] = set()
        for op in queue:
            key = (op.unit, op.chunk)
            if key in seen:
                raise InvariantViolation(
                    "duplicate_burst",
                    f"{kind} burst scheduled twice",
                    unit=op.unit,
                    chunk=op.chunk,
                )
            seen.add(key)
            if op.kind != kind:
                raise InvariantViolation(
                    "duplicate_burst",
                    "burst queued under the wrong kind",
                    unit=op.unit,
                    kind=op.kind,
                    queue=kind,
                )

    # --- every burst programs whole cells and draws matching current.
    # A zero-bit burst occupies a sub-slot while programming nothing
    # (stretching Eq. 5 for free); a current that disagrees with
    # n_bits * per-cell-cost claims capacity the cell-integral device
    # cannot draw.  Both were symptoms of the current-sliced chunk
    # split the differential oracle flagged.
    for kind, queue, cost in (
        ("write1", sched.write1_queue, 1.0),
        ("write0", sched.write0_queue, float(L) if L is not None else None),
    ):
        for op in queue:
            if op.n_bits < 1:
                raise InvariantViolation(
                    "bit_accounting",
                    f"{kind} burst programs no cells",
                    unit=op.unit,
                    chunk=op.chunk,
                    n_bits=op.n_bits,
                )
            if cost is not None and abs(op.current - op.n_bits * cost) > tol:
                raise InvariantViolation(
                    "bit_accounting",
                    f"{kind} burst current disagrees with n_bits x per-cell cost",
                    unit=op.unit,
                    chunk=op.chunk,
                    current=float(op.current),
                    n_bits=op.n_bits,
                    cost=cost,
                )

    # --- per-unit current + bit accounting against the read stage's counts.
    if n_set is not None:
        _check_accounting(sched.write1_queue,
                          np.atleast_1d(np.asarray(n_set, dtype=np.float64)),
                          scale=1.0, kind="write1", tol=tol)
    if n_reset is not None:
        scale = float(L) if L is not None else 1.0
        _check_accounting(sched.write0_queue,
                          np.atleast_1d(np.asarray(n_reset, dtype=np.float64)),
                          scale=scale, kind="write0", tol=tol)

    # --- Equation 5 consistency with the reported write-stage length.
    if units is not None:
        expect = sched.result + sched.subresult / sched.K
        if abs(units - expect) > max(tol, 1e-9 * max(abs(expect), 1.0)):
            raise InvariantViolation(
                "units_mismatch",
                "reported units disagree with result + subresult/K",
                units=units,
                result=sched.result,
                subresult=sched.subresult,
                K=sched.K,
            )


def _check_accounting(queue, counts: np.ndarray, *, scale: float, kind: str, tol: float) -> None:
    """Scheduled current/bits per unit must equal the read-stage counts."""
    scheduled = np.zeros_like(counts)
    bits = np.zeros_like(counts)
    for op in queue:
        if not 0 <= op.unit < counts.size:
            raise InvariantViolation(
                "cell_accounting",
                f"{kind} burst references a data unit outside the line",
                unit=op.unit,
                units_in_line=int(counts.size),
            )
        scheduled[op.unit] += op.current
        bits[op.unit] += op.n_bits
    expected = counts * scale
    bad = np.nonzero(np.abs(scheduled - expected) > tol + 1e-9 * np.abs(expected))[0]
    if bad.size:
        i = int(bad[0])
        raise InvariantViolation(
            "cell_accounting",
            f"data unit's {kind} current not scheduled exactly once",
            unit=i,
            scheduled=float(scheduled[i]),
            expected=float(expected[i]),
        )
    # Chunk splits must conserve cells: the per-unit n_bits total equals
    # the demanded program count exactly (not merely the current total).
    bad = np.nonzero(np.abs(bits - counts) > tol)[0]
    if bad.size:
        i = int(bad[0])
        raise InvariantViolation(
            "bit_accounting",
            f"data unit's {kind} cells not scheduled exactly once",
            unit=i,
            scheduled_bits=float(bits[i]),
            expected_bits=float(counts[i]),
        )


# ----------------------------------------------------------------------
# Outcome invariants.
# ----------------------------------------------------------------------
def verify_outcome(
    outcome: "WriteOutcome",
    *,
    t_set_ns: float | None = None,
    state_before: np.ndarray | None = None,
    state_after: np.ndarray | None = None,
    exact_cells: bool = True,
    max_extra_cells: int = 0,
    tol: float = 1e-6,
) -> None:
    """Check one write outcome's internal and external consistency.

    ``state_before``/``state_after`` are the physical images around the
    committed write; when given, ``n_set``/``n_reset`` must match the
    cell diff (``exact_cells=False`` allows up to ``max_extra_cells``
    additional programs for out-of-array cells such as flip tags, which
    ``count_flip_bit`` adds to the counts but not to the image).
    """
    for attr in (
        "service_ns", "units", "read_ns", "analysis_ns", "energy",
        "retry_units", "verify_ns",
    ):
        value = float(getattr(outcome, attr, 0.0))
        if not np.isfinite(value) or value < -tol:
            raise InvariantViolation(
                "negative_component",
                f"outcome.{attr} must be finite and non-negative",
                attr=attr,
                value=value,
            )
    for attr in ("n_set", "n_reset", "flipped_units", "retried_bits"):
        if int(getattr(outcome, attr, 0)) < 0:
            raise InvariantViolation(
                "negative_component",
                f"outcome.{attr} must be non-negative",
                attr=attr,
                value=int(getattr(outcome, attr, 0)),
            )

    # --- multi-attempt accounting (fault-enabled writes).
    attempts = int(getattr(outcome, "attempts", 1))
    retried_bits = int(getattr(outcome, "retried_bits", 0))
    retry_units = float(getattr(outcome, "retry_units", 0.0))
    verify_ns = float(getattr(outcome, "verify_ns", 0.0))
    if attempts < 1:
        raise InvariantViolation(
            "retry_accounting",
            "a serviced write has at least one program attempt",
            attempts=attempts,
        )
    if attempts == 1 and (retried_bits != 0 or retry_units > tol):
        raise InvariantViolation(
            "retry_accounting",
            "single-attempt write reports retried bits or retry units",
            attempts=attempts,
            retried_bits=retried_bits,
            retry_units=retry_units,
        )
    if retried_bits > 0 and attempts < 2:
        raise InvariantViolation(
            "retry_accounting",
            "retried bits require at least a second attempt",
            attempts=attempts,
            retried_bits=retried_bits,
        )

    overhead = outcome.read_ns + outcome.analysis_ns
    if outcome.service_ns < overhead - tol:
        raise InvariantViolation(
            "service_decomposition",
            "service_ns smaller than its read + analysis components",
            service_ns=outcome.service_ns,
            read_ns=outcome.read_ns,
            analysis_ns=outcome.analysis_ns,
        )
    if t_set_ns is not None:
        # Equation 5, extended to multi-attempt writes: the pristine
        # write stage plus the residual retry schedules plus read-back
        # verification time.  Single-attempt, fault-free outcomes reduce
        # to the paper's read + analysis + units * t_set.
        expect = overhead + (outcome.units + retry_units) * t_set_ns + verify_ns
        if abs(outcome.service_ns - expect) > tol + 1e-9 * expect:
            raise InvariantViolation(
                "service_decomposition",
                "service_ns disagrees with read + analysis + "
                "(units + retry_units) * t_set + verify_ns",
                service_ns=outcome.service_ns,
                expected=expect,
                units=outcome.units,
                retry_units=retry_units,
                verify_ns=verify_ns,
                t_set_ns=t_set_ns,
            )

    if state_before is not None and state_after is not None:
        before = np.asarray(state_before, dtype=np.uint64)
        after = np.asarray(state_after, dtype=np.uint64)
        set_cells = int(np.bitwise_count(~before & after).sum())
        reset_cells = int(np.bitwise_count(before & ~after).sum())
        for attr, cells in (("n_set", set_cells), ("n_reset", reset_cells)):
            reported = int(getattr(outcome, attr))
            extra = reported - cells
            limit = 0 if exact_cells else max_extra_cells
            if extra < 0 or extra > limit:
                raise InvariantViolation(
                    "state_diff",
                    f"outcome.{attr} inconsistent with the committed image diff",
                    attr=attr,
                    reported=reported,
                    image_cells=cells,
                    allowed_extra=limit,
                )
