"""Discrete-event simulation kernel (the GEM5-event-engine substrate)."""

from repro.sim.engine import Event, Simulator
from repro.sim.stats import Histogram, LatencyStat, StatRegistry

__all__ = ["Event", "Histogram", "LatencyStat", "Simulator", "StatRegistry"]
