"""Statistics collection for simulation runs.

Accumulators are streaming (O(1) memory for the moments, fixed bins for
the histogram) because the Fig 11-14 runs see hundreds of thousands of
requests.  A :class:`StatRegistry` groups the named stats of one run so
experiment code can dump everything uniformly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["FaultStats", "LatencyStat", "Histogram", "StatRegistry", "TimeSeries"]


@dataclass
class FaultStats:
    """Streaming aggregate of the fault/retry facet of write outcomes.

    Feeds the fault-sweep experiment and the CLI summary: every write
    outcome is folded in via :meth:`observe`, so the aggregate never
    stores per-write records (the sweeps replay full traces).
    """

    writes: int = 0
    retried_writes: int = 0
    total_attempts: int = 0
    retried_bits: int = 0
    retry_units: float = 0.0
    verify_ns: float = 0.0
    degraded_writes: int = 0
    retired_writes: int = 0
    uncorrectable: int = 0

    def observe(self, outcome) -> None:
        """Fold one write outcome (any object with the retry fields)."""
        self.writes += 1
        attempts = int(getattr(outcome, "attempts", 1))
        self.total_attempts += attempts
        if attempts > 1:
            self.retried_writes += 1
        self.retried_bits += int(getattr(outcome, "retried_bits", 0))
        self.retry_units += float(getattr(outcome, "retry_units", 0.0))
        self.verify_ns += float(getattr(outcome, "verify_ns", 0.0))
        if getattr(outcome, "degraded", False):
            self.degraded_writes += 1
        if getattr(outcome, "retired", False):
            self.retired_writes += 1

    @property
    def mean_attempts(self) -> float:
        return self.total_attempts / self.writes if self.writes else 0.0

    @property
    def retry_rate(self) -> float:
        return self.retried_writes / self.writes if self.writes else 0.0

    def summary(self) -> dict[str, float]:
        return {
            "writes": self.writes,
            "retried_writes": self.retried_writes,
            "mean_attempts": self.mean_attempts,
            "retry_rate": self.retry_rate,
            "retried_bits": self.retried_bits,
            "retry_units": self.retry_units,
            "verify_ns": self.verify_ns,
            "degraded_writes": self.degraded_writes,
            "retired_writes": self.retired_writes,
            "uncorrectable": self.uncorrectable,
        }


@dataclass
class TimeSeries:
    """Sparse (time, value) samples of a signal (e.g. queue occupancy).

    Samples append in O(1); :meth:`resample` turns the step function
    into a fixed-width vector (time-weighted) for plotting/sparklines.
    """

    name: str = "series"
    times: list = field(default_factory=list)
    values: list = field(default_factory=list)

    def sample(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError("samples must be time-ordered")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def resample(self, buckets: int = 64) -> np.ndarray:
        """Time-weighted mean of the step function over equal buckets."""
        if buckets < 1:
            raise ValueError("need at least one bucket")
        if not self.times:
            return np.zeros(buckets)
        t = np.asarray(self.times, dtype=np.float64)
        v = np.asarray(self.values, dtype=np.float64)
        t0, t1 = t[0], t[-1]
        if t1 <= t0:
            return np.full(buckets, v[-1])
        out = np.zeros(buckets)
        weight = np.zeros(buckets)
        edges = np.linspace(t0, t1, buckets + 1)
        # Each step [t_i, t_i+1) holds value v_i; distribute over buckets.
        for i in range(len(t) - 1):
            lo, hi = t[i], t[i + 1]
            if hi <= lo:
                continue
            b_lo = int(np.searchsorted(edges, lo, side="right")) - 1
            b_hi = int(np.searchsorted(edges, hi, side="left"))
            for b in range(max(b_lo, 0), min(b_hi, buckets)):
                seg = min(hi, edges[b + 1]) - max(lo, edges[b])
                if seg > 0:
                    out[b] += v[i] * seg
                    weight[b] += seg
        mask = weight > 0
        out[mask] /= weight[mask]
        return out

    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def time_above(self, threshold: float) -> float:
        """Total time the signal sat strictly above ``threshold``."""
        total = 0.0
        for i in range(len(self.times) - 1):
            if self.values[i] > threshold:
                total += self.times[i + 1] - self.times[i]
        return total


@dataclass
class LatencyStat:
    """Streaming mean/min/max/variance of a latency series (Welford)."""

    name: str = "latency"
    count: int = 0
    _mean: float = 0.0
    _m2: float = 0.0
    _min: float = math.inf
    _max: float = -math.inf
    total: float = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def min(self) -> float:
        """Smallest observed value; 0.0 before any sample (never ``inf``)."""
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        """Largest observed value; 0.0 before any sample (never ``-inf``)."""
        return self._max if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.min,
            "max": self.max,
        }


@dataclass
class Histogram:
    """Fixed-width histogram with overflow bin (for latency tails)."""

    name: str
    bin_width: float
    num_bins: int = 64
    counts: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.bin_width <= 0 or self.num_bins <= 0:
            raise ValueError("bin_width and num_bins must be positive")
        if self.counts is None:
            self.counts = np.zeros(self.num_bins + 1, dtype=np.int64)

    def add(self, value: float) -> None:
        if value < 0:
            raise ValueError("histogram values must be non-negative")
        idx = int(value // self.bin_width)
        # Float division can land one bin off near the edges (e.g.
        # 0.3 // 0.1 == 2.0): correct against the half-open convention
        # ``[idx * w, (idx + 1) * w)`` explicitly.
        if (idx + 1) * self.bin_width <= value:
            idx += 1
        elif idx * self.bin_width > value:
            idx -= 1
        self.counts[min(idx, self.num_bins)] += 1

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    def percentile(self, p: float) -> float:
        """Approximate percentile from bin edges (upper edge convention)."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        total = self.total
        if total == 0:
            return 0.0
        # Clamp the rank to the first sample so p=0 (and tiny p on small
        # totals) lands on the first *occupied* bin rather than on bin 0
        # regardless of contents; the upper-edge convention is unchanged.
        target = max(1.0, total * p / 100.0)
        cum = np.cumsum(self.counts)
        idx = int(np.searchsorted(cum, target))
        if idx >= self.num_bins:
            # Rank lands in the overflow bin: the value is somewhere
            # beyond the last edge, so any finite answer would
            # under-report the tail.
            return math.inf
        return (idx + 1) * self.bin_width

    def summary(self) -> dict[str, float]:
        """Uniform dump shape alongside :meth:`LatencyStat.summary`.

        Overflow-bin percentiles render as the string ``">edge"`` (the
        histogram only knows the tail passed its last edge), keeping the
        dump JSON-serializable.
        """
        edge = self.num_bins * self.bin_width

        def _render(v: float) -> float | str:
            return f">{edge:g}" if math.isinf(v) else v

        return {
            "total": self.total,
            "p50": _render(self.percentile(50)),
            "p99": _render(self.percentile(99)),
        }


class StatRegistry:
    """Named collection of stats for one simulation run."""

    def __init__(self) -> None:
        self._stats: dict[str, LatencyStat] = {}
        self._hists: dict[str, Histogram] = {}
        self.counters: dict[str, float] = {}

    def latency(self, name: str) -> LatencyStat:
        if name not in self._stats:
            self._stats[name] = LatencyStat(name=name)
        return self._stats[name]

    def histogram(self, name: str, bin_width: float, num_bins: int = 64) -> Histogram:
        if name not in self._hists:
            self._hists[name] = Histogram(name, bin_width, num_bins)
        return self._hists[name]

    def bump(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def summary(self) -> dict[str, dict | float]:
        out: dict[str, dict | float] = {k: s.summary() for k, s in self._stats.items()}
        for k, h in self._hists.items():
            # A latency stat and a histogram may share a name (same signal
            # observed two ways); keep both by suffixing the histogram.
            out[k if k not in out else f"{k}.hist"] = h.summary()
        out.update(self.counters)
        return out
