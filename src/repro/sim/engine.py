"""Minimal deterministic discrete-event engine.

The full-system experiments replay memory traces through cores, a memory
controller and PCM banks; all of them communicate by scheduling callbacks
on this engine.  Design points:

* **Determinism** — ties in time are broken by a monotone sequence
  number, so two runs of the same trace produce identical schedules (the
  reproduction's experiments must be exactly repeatable).
* **No processes/coroutines** — callbacks keep the kernel tiny and fast;
  components hold their own state machines (as the paper's FSMs do).
* **Cancellation** — events carry a live flag; cancelling is O(1) and the
  heap lazily discards dead entries.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Event", "Simulator"]


@dataclass(order=True)
class Event:
    """One scheduled callback.  Ordered by (time, seq) for determinism."""

    time: float
    seq: int
    fn: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    alive: bool = field(compare=False, default=True)

    def cancel(self) -> None:
        """Prevent the event from firing (lazy removal from the heap)."""
        self.alive = False


class Simulator:
    """Event loop with a nanosecond clock.

    Typical use::

        sim = Simulator()
        sim.schedule(10.0, handler, arg1)
        sim.run()                 # drain all events
        sim.run(until=1e6)        # or stop the clock at 1 ms
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[Event] = []
        self._seq = 0
        self.events_fired = 0
        # Optional repro.obs.Tracer assigned by the system builder when
        # tracing is enabled; None keeps step() on the untraced path.
        self.tracer = None

    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable, *args) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.at(self.now + delay, fn, *args)

    def at(self, time: float, fn: Callable, *args) -> Event:
        """Schedule ``fn(*args)`` at an absolute time."""
        if time < self.now:
            raise ValueError(f"cannot schedule into the past ({time} < {self.now})")
        self._seq += 1
        ev = Event(time=time, seq=self._seq, fn=fn, args=args)
        heapq.heappush(self._heap, ev)
        return ev

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next live event.  Returns False when none remain."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if not ev.alive:
                continue
            if ev.time < self.now:  # defensive; cannot happen via the API
                raise RuntimeError("event time went backwards")
            self.now = ev.time
            self.events_fired += 1
            if self.tracer is not None:
                self.tracer.instant(
                    getattr(ev.fn, "__qualname__", repr(ev.fn)),
                    ts_ns=ev.time,
                    pid="sim",
                    tid="events",
                    cat="engine",
                )
            try:
                ev.fn(*ev.args)
            except Exception as exc:
                # Stamp the simulated time so a fault escaping a callback
                # (e.g. an uncorrectable write) is attributable in traces.
                exc.add_note(f"while firing event at sim time {ev.time} ns")
                raise
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain the event heap, optionally bounded in time or events.

        ``until`` stops the clock *after* processing every event at or
        before that time; ``max_events`` is a safety valve for tests.
        """
        fired = 0
        while self._heap:
            nxt = self._peek_time()
            if nxt is None:
                break
            if until is not None and nxt > until:
                self.now = until
                return
            if not self.step():
                break
            fired += 1
            if max_events is not None and fired >= max_events:
                raise RuntimeError(f"exceeded max_events={max_events}")
        if until is not None:
            self.now = max(self.now, until)

    def _peek_time(self) -> float | None:
        while self._heap and not self._heap[0].alive:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    @property
    def pending(self) -> int:
        """Number of live events still queued."""
        return sum(1 for ev in self._heap if ev.alive)
