"""Minimal deterministic discrete-event engine.

The full-system experiments replay memory traces through cores, a memory
controller and PCM banks; all of them communicate by scheduling callbacks
on this engine.  Design points:

* **Determinism** — ties in time are broken by a monotone sequence
  number, so two runs of the same trace produce identical schedules (the
  reproduction's experiments must be exactly repeatable).
* **No processes/coroutines** — callbacks keep the kernel tiny and fast;
  components hold their own state machines (as the paper's FSMs do).
* **Cancellation** — events carry a live flag; cancelling is O(1) and the
  heap lazily discards dead entries.
* **Hot-path layout** — the heap stores ``(time, seq, event)`` tuples, so
  sift comparisons are C-speed tuple compares on floats/ints (``seq`` is
  unique, so the event object itself is never compared), and ``Event``
  uses ``__slots__``; a full-system run allocates one event per FSM
  transition, which makes both measurable in ``bench_fig14_running_time``.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

__all__ = ["Event", "Simulator"]


class Event:
    """One scheduled callback; ``(time, seq)`` orders it in the heap."""

    __slots__ = ("time", "seq", "fn", "args", "alive")

    def __init__(
        self, time: float, seq: int, fn: Callable[..., Any], args: tuple = ()
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.alive = True

    def cancel(self) -> None:
        """Prevent the event from firing (lazy removal from the heap)."""
        self.alive = False

    def __repr__(self) -> str:  # debugging aid; never on the hot path
        state = "live" if self.alive else "cancelled"
        return f"Event(t={self.time}, seq={self.seq}, {state}, fn={self.fn!r})"


class Simulator:
    """Event loop with a nanosecond clock.

    Typical use::

        sim = Simulator()
        sim.schedule(10.0, handler, arg1)
        sim.run()                 # drain all events
        sim.run(until=1e6)        # or stop the clock at 1 ms
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        # Heap of (time, seq, Event); time/seq duplicated from the event
        # so ordering never falls back to comparing Python objects.
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self.events_fired = 0
        # Optional repro.obs.Tracer assigned by the system builder when
        # tracing is enabled; None keeps run() on the untraced fast path.
        # Must be set before run() — the check is hoisted out of the loop.
        self.tracer = None

    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable, *args) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.at(self.now + delay, fn, *args)

    def at(self, time: float, fn: Callable, *args) -> Event:
        """Schedule ``fn(*args)`` at an absolute time."""
        if time < self.now:
            raise ValueError(f"cannot schedule into the past ({time} < {self.now})")
        self._seq += 1
        ev = Event(time, self._seq, fn, args)
        heapq.heappush(self._heap, (time, self._seq, ev))
        return ev

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next live event.  Returns False when none remain."""
        heap = self._heap
        while heap:
            time, _seq, ev = heapq.heappop(heap)
            if not ev.alive:
                continue
            if time < self.now:  # defensive; cannot happen via the API
                raise RuntimeError("event time went backwards")
            self.now = time
            self.events_fired += 1
            if self.tracer is not None:
                self.tracer.instant(
                    getattr(ev.fn, "__qualname__", repr(ev.fn)),
                    ts_ns=time,
                    pid="sim",
                    tid="events",
                    cat="engine",
                )
            try:
                ev.fn(*ev.args)
            except Exception as exc:
                # Stamp the simulated time so a fault escaping a callback
                # (e.g. an uncorrectable write) is attributable in traces.
                exc.add_note(f"while firing event at sim time {time} ns")
                raise
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain the event heap, optionally bounded in time or events.

        ``until`` stops the clock *after* processing every event at or
        before that time; ``max_events`` is a safety valve for tests.

        The drain loop is inlined rather than delegating to :meth:`step`:
        the tracer check is hoisted to a single branch decision before
        the loop (``tracer`` must not be attached mid-run), and the
        monotone-time guard is unnecessary here because :meth:`at`
        already rejects past times.
        """
        heap = self._heap
        heappop = heapq.heappop
        traced = self.tracer is not None
        fired = 0
        while heap:
            entry = heap[0]
            ev = entry[2]
            if not ev.alive:
                heappop(heap)
                continue
            time = entry[0]
            if until is not None and time > until:
                self.now = until
                return
            heappop(heap)
            self.now = time
            self.events_fired += 1
            if traced:
                self.tracer.instant(
                    getattr(ev.fn, "__qualname__", repr(ev.fn)),
                    ts_ns=time,
                    pid="sim",
                    tid="events",
                    cat="engine",
                )
            try:
                ev.fn(*ev.args)
            except Exception as exc:
                exc.add_note(f"while firing event at sim time {time} ns")
                raise
            fired += 1
            if max_events is not None and fired >= max_events:
                raise RuntimeError(f"exceeded max_events={max_events}")
        if until is not None:
            self.now = max(self.now, until)

    def _peek_time(self) -> float | None:
        heap = self._heap
        while heap and not heap[0][2].alive:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    @property
    def pending(self) -> int:
        """Number of live events still queued."""
        return sum(1 for _, _, ev in self._heap if ev.alive)
