"""Three-level write-back hierarchy (Table II) producing post-LLC traffic.

Non-inclusive, write-allocate at every level.  A CPU access walks
L1 -> L2 -> L3; a miss at L3 becomes a **memory read**, and a dirty line
evicted from L3 becomes a **memory write** — the two request kinds the
PCM controller sees.  Dirty victims of upper levels are absorbed by the
next level down (fill + mark dirty) rather than going to memory, as in a
conventional write-back hierarchy.

Latency accounting is additive over the levels probed (2/20/50 cycles,
Table II); memory latency is supplied by the caller.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import CacheConfig, SystemConfig
from repro.cache.setassoc import SetAssocCache

__all__ = ["CacheHierarchy", "HierarchyResult"]


@dataclass(frozen=True)
class HierarchyResult:
    """Effect of one CPU access on memory traffic.

    ``memory_read`` — the access missed all levels and must fetch the
    line from PCM.  ``writebacks`` — lines evicted dirty from the LLC by
    the fills this access caused (usually 0 or 1).  ``latency_cycles`` —
    cache-array cycles spent before memory is consulted.
    """

    memory_read: bool
    writebacks: tuple[int, ...]
    latency_cycles: int
    hit_level: str  # "L1" / "L2" / "L3" / "MEM"


class CacheHierarchy:
    """L1D + L2 + L3 for one address stream.

    The paper's private/shared split (per-core L1/L2, shared L3) is
    modelled by giving each core its own hierarchy view in the example;
    for trace calibration a single shared instance is sufficient.
    """

    def __init__(self, config: SystemConfig) -> None:
        by_name = {c.name: c for c in config.caches}
        self.l1 = SetAssocCache(by_name["L1D"])
        self.l2 = SetAssocCache(by_name["L2"])
        self.l3 = SetAssocCache(by_name["L3"])
        self._lat = {
            "L1": by_name["L1D"].latency_cycles,
            "L2": by_name["L2"].latency_cycles,
            "L3": by_name["L3"].latency_cycles,
        }
        self.memory_reads = 0
        self.memory_writes = 0

    # ------------------------------------------------------------------
    def access(self, line: int, is_write: bool) -> HierarchyResult:
        """One CPU load/store at line granularity."""
        writebacks: list[int] = []
        latency = self._lat["L1"]

        r1 = self.l1.access(line, is_write)
        if r1.hit:
            return HierarchyResult(False, (), latency, "L1")
        if r1.victim_dirty:
            self._absorb(self.l2, r1.victim_line, writebacks, level=2)

        latency += self._lat["L2"]
        r2 = self.l2.access(line, False)
        if r2.victim_dirty:
            self._absorb(self.l3, r2.victim_line, writebacks, level=3)
        if r2.hit:
            return HierarchyResult(False, tuple(writebacks), latency, "L2")

        latency += self._lat["L3"]
        r3 = self.l3.access(line, False)
        if r3.victim_dirty:
            writebacks.append(r3.victim_line)
            self.memory_writes += 1
        if r3.hit:
            return HierarchyResult(False, tuple(writebacks), latency, "L3")

        self.memory_reads += 1
        return HierarchyResult(True, tuple(writebacks), latency, "MEM")

    def _absorb(
        self, lower: SetAssocCache, line: int, writebacks: list[int], level: int
    ) -> None:
        """Install an upper level's dirty victim in the next level down."""
        if lower.mark_dirty(line):
            return
        res = lower.access(line, True)
        if res.victim_dirty:
            if level == 2:
                self._absorb(self.l3, res.victim_line, writebacks, level=3)
            else:
                writebacks.append(res.victim_line)
                self.memory_writes += 1

    # ------------------------------------------------------------------
    def flush_dirty_llc(self) -> list[int]:
        """Return (and clean) every dirty LLC line — end-of-run drain."""
        import numpy as np

        dirty_lines = self.l3.tags[self.l3.dirty & (self.l3.tags >= 0)]
        self.l3.dirty[:] = False
        self.memory_writes += int(dirty_lines.size)
        return [int(x) for x in np.sort(dirty_lines)]

    def flush_all_dirty(self) -> list[int]:
        """Drain dirty lines from *every* level (end-of-run writeback).

        Small working sets never evict from L1/L2, so their dirty data
        only reaches memory through this full flush.  Each distinct
        dirty line writes back once.
        """
        import numpy as np

        dirty: set[int] = set()
        for cache in (self.l1, self.l2, self.l3):
            lines = cache.tags[cache.dirty & (cache.tags >= 0)]
            dirty.update(int(x) for x in lines)
            cache.dirty[:] = False
        self.memory_writes += len(dirty)
        return sorted(dirty)

    def stats(self) -> dict[str, float]:
        return {
            "l1_hit_rate": self.l1.hit_rate(),
            "l2_hit_rate": self.l2.hit_rate(),
            "l3_hit_rate": self.l3.hit_rate(),
            "memory_reads": self.memory_reads,
            "memory_writes": self.memory_writes,
        }
