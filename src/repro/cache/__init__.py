"""Cache hierarchy substrate (paper Table II: L1 32K, L2 2M, L3 32M).

The main experiments replay *post-LLC* traces (DESIGN.md §4), but the
hierarchy is a real dependency of the paper's system: it decides which
CPU accesses become PCM reads and which dirty evictions become PCM
writes.  This package provides a functional set-associative write-back
hierarchy used by the full-pipeline example and by the trace-calibration
tests (a CPU-level stream filtered through it must land near the
Table III post-LLC rates).
"""

from repro.cache.setassoc import AccessResult, SetAssocCache
from repro.cache.hierarchy import CacheHierarchy, HierarchyResult

__all__ = ["AccessResult", "CacheHierarchy", "HierarchyResult", "SetAssocCache"]
