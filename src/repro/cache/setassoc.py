"""Set-associative write-back, write-allocate cache with true LRU.

Addresses are *line* indices (the hierarchy operates above a fixed 64 B
line size).  The implementation keeps per-set tag/dirty/LRU arrays in
NumPy; a lookup scans one set (at most 16 ways in the Table II caches),
so each access is a few small vector ops — fast enough for the
full-pipeline example's multi-million-access streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import CacheConfig

__all__ = ["AccessResult", "SetAssocCache"]


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one cache access.

    ``victim_line`` / ``victim_dirty`` describe the line evicted to make
    room on a miss (``victim_line < 0`` when the fill used an empty way).
    """

    hit: bool
    victim_line: int = -1
    victim_dirty: bool = False


class SetAssocCache:
    """One cache level."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.num_sets = config.num_sets
        self.assoc = config.assoc
        self.tags = np.full((self.num_sets, self.assoc), -1, dtype=np.int64)
        self.dirty = np.zeros((self.num_sets, self.assoc), dtype=bool)
        self.lru = np.zeros((self.num_sets, self.assoc), dtype=np.int64)
        self._clock = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_evictions = 0

    # ------------------------------------------------------------------
    def _set_of(self, line: int) -> int:
        return line % self.num_sets

    def probe(self, line: int) -> bool:
        """Lookup without any state change (no LRU update)."""
        s = self._set_of(line)
        return bool((self.tags[s] == line).any())

    def access(self, line: int, is_write: bool) -> AccessResult:
        """Reference a line; fills on miss (write-allocate).

        The caller (hierarchy) is responsible for propagating the miss
        downward and the victim writeback onward.
        """
        s = self._set_of(line)
        row = self.tags[s]
        self._clock += 1
        where = np.nonzero(row == line)[0]
        if where.size:
            w = int(where[0])
            self.lru[s, w] = self._clock
            if is_write:
                self.dirty[s, w] = True
            self.hits += 1
            return AccessResult(hit=True)

        self.misses += 1
        empty = np.nonzero(row == -1)[0]
        if empty.size:
            w = int(empty[0])
            victim, victim_dirty = -1, False
        else:
            w = int(np.argmin(self.lru[s]))
            victim = int(row[w])
            victim_dirty = bool(self.dirty[s, w])
            self.evictions += 1
            if victim_dirty:
                self.dirty_evictions += 1
        self.tags[s, w] = line
        self.dirty[s, w] = is_write
        self.lru[s, w] = self._clock
        return AccessResult(hit=False, victim_line=victim, victim_dirty=victim_dirty)

    def invalidate(self, line: int) -> bool:
        """Drop a line (back-invalidation); returns True if it was dirty."""
        s = self._set_of(line)
        where = np.nonzero(self.tags[s] == line)[0]
        if not where.size:
            return False
        w = int(where[0])
        was_dirty = bool(self.dirty[s, w])
        self.tags[s, w] = -1
        self.dirty[s, w] = False
        self.lru[s, w] = 0
        return was_dirty

    def mark_dirty(self, line: int) -> bool:
        """Set the dirty bit of a resident line (writeback absorption)."""
        s = self._set_of(line)
        where = np.nonzero(self.tags[s] == line)[0]
        if not where.size:
            return False
        self.dirty[s, int(where[0])] = True
        return True

    # ------------------------------------------------------------------
    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def resident_lines(self) -> int:
        return int((self.tags >= 0).sum())
