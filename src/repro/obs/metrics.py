"""Hierarchical metric registry for instrumented simulator components.

Names are dotted paths (``chip0.fsm1.bursts``, ``memctrl.write_queue.
stalls``): the flat dotted form is the storage key — cheap to bump on a
hot path — and :meth:`MetricRegistry.to_nested` folds the dots back into
a tree for human-facing JSON.  The value types reuse the streaming
accumulators of :mod:`repro.sim.stats` (``LatencyStat``, ``Histogram``)
so distribution metrics cost O(1) memory at Fig 11-14 scale, and add the
two trivial kinds every stats layer needs:

* :class:`CounterMetric` — a monotone total (events, bursts, retries);
* :class:`GaugeMetric` — a last-value sample with min/max watermarks
  (queue depth, GCP current).

Export is deterministic: :meth:`MetricRegistry.to_dict` sorts keys, so
a fixed-seed run produces byte-identical metric JSON
(`tests/test_obs.py::test_metric_export_deterministic`).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

from repro.sim.stats import Histogram, LatencyStat

__all__ = ["CounterMetric", "GaugeMetric", "MetricRegistry", "ScopedRegistry"]


@dataclass
class CounterMetric:
    """Monotone event total."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount

    def summary(self) -> float:
        return self.value


@dataclass
class GaugeMetric:
    """Last-sampled value with min/max watermarks."""

    name: str
    value: float = 0.0
    samples: int = 0
    _lo: float = math.inf
    _hi: float = -math.inf

    def set(self, value: float) -> None:
        value = float(value)
        self.value = value
        self.samples += 1
        if value < self._lo:
            self._lo = value
        if value > self._hi:
            self._hi = value

    @property
    def lo(self) -> float:
        return self._lo if self.samples else 0.0

    @property
    def hi(self) -> float:
        return self._hi if self.samples else 0.0

    def summary(self) -> dict[str, float]:
        return {
            "value": self.value,
            "min": self.lo,
            "max": self.hi,
            "samples": self.samples,
        }


class MetricRegistry:
    """Named collection of counters, gauges and streaming distributions."""

    def __init__(self) -> None:
        self._counters: dict[str, CounterMetric] = {}
        self._gauges: dict[str, GaugeMetric] = {}
        self._latencies: dict[str, LatencyStat] = {}
        self._hists: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Accessors create on first use so instrumentation sites stay O(1).
    # ------------------------------------------------------------------
    def counter(self, name: str) -> CounterMetric:
        m = self._counters.get(name)
        if m is None:
            self._check_fresh(name)
            m = self._counters[name] = CounterMetric(name)
        return m

    def gauge(self, name: str) -> GaugeMetric:
        m = self._gauges.get(name)
        if m is None:
            self._check_fresh(name)
            m = self._gauges[name] = GaugeMetric(name)
        return m

    def latency(self, name: str) -> LatencyStat:
        m = self._latencies.get(name)
        if m is None:
            self._check_fresh(name)
            m = self._latencies[name] = LatencyStat(name=name)
        return m

    def histogram(self, name: str, bin_width: float, num_bins: int = 64) -> Histogram:
        m = self._hists.get(name)
        if m is None:
            self._check_fresh(name)
            m = self._hists[name] = Histogram(name, bin_width, num_bins)
        return m

    def _check_fresh(self, name: str) -> None:
        if any(
            name in table
            for table in (self._counters, self._gauges, self._latencies, self._hists)
        ):
            raise ValueError(f"metric {name!r} already registered with another type")

    def scope(self, prefix: str) -> "ScopedRegistry":
        """A view that prepends ``prefix + '.'`` to every metric name."""
        return ScopedRegistry(self, prefix)

    # ------------------------------------------------------------------
    # Export.
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Flat ``{dotted_name: summary}`` mapping, keys sorted."""
        out: dict[str, object] = {}
        for name, c in self._counters.items():
            out[name] = c.summary()
        for name, g in self._gauges.items():
            out[name] = g.summary()
        for name, s in self._latencies.items():
            out[name] = s.summary()
        for name, h in self._hists.items():
            out[name] = h.summary()
        return {k: out[k] for k in sorted(out)}

    def to_nested(self) -> dict:
        """Fold dotted names into a tree (``chip0.fsm1.drops`` →
        ``{"chip0": {"fsm1": {"drops": ...}}}``).  A name that is both a
        leaf and a prefix keeps the leaf under the empty key."""
        tree: dict = {}
        for name, value in self.to_dict().items():
            node = tree
            *parents, leaf = name.split(".")
            for part in parents:
                nxt = node.get(part)
                if not isinstance(nxt, dict):
                    nxt = {} if nxt is None else {"": nxt}
                    node[part] = nxt
                node = nxt
            if isinstance(node.get(leaf), dict):
                node[leaf][""] = value
            else:
                node[leaf] = value
        return tree

    def to_json(self, *, nested: bool = False) -> str:
        payload = self.to_nested() if nested else self.to_dict()
        return json.dumps(payload, indent=2, sort_keys=True)


class ScopedRegistry:
    """Prefix view over a parent registry (hierarchical naming helper)."""

    def __init__(self, parent: MetricRegistry, prefix: str) -> None:
        self._parent = parent
        self._prefix = prefix.rstrip(".") + "."

    def counter(self, name: str) -> CounterMetric:
        return self._parent.counter(self._prefix + name)

    def gauge(self, name: str) -> GaugeMetric:
        return self._parent.gauge(self._prefix + name)

    def latency(self, name: str) -> LatencyStat:
        return self._parent.latency(self._prefix + name)

    def histogram(self, name: str, bin_width: float, num_bins: int = 64) -> Histogram:
        return self._parent.histogram(self._prefix + name, bin_width, num_bins)

    def scope(self, prefix: str) -> "ScopedRegistry":
        return ScopedRegistry(self._parent, self._prefix + prefix)
