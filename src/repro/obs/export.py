"""Exporters: Chrome trace-event JSON (Perfetto-loadable) + flamegraphs.

Chrome trace format (the JSON flavor Perfetto and ``chrome://tracing``
both load):

* processes/threads carry **integer** ids, so the exporter interns the
  tracer's string ``pid``/``tid`` labels in first-seen order and emits
  ``process_name`` / ``thread_name`` metadata events (``ph: "M"``) to
  restore the labels in the UI.  Chips map to processes; FSM0 / FSM1 /
  write-driver / queue lanes map to threads, so one chip's write-1 and
  write-0 bursts render as parallel tracks whose overlap *is* the
  paper's Figure 4.
* timestamps (``ts``) and durations (``dur``) are microseconds; the
  tracer records nanoseconds, so values divide by 1000 on the way out
  (``displayTimeUnit: "ns"`` keeps the UI readout in ns).
* spans are complete events (``ph: "X"``), instants ``ph: "i"`` with
  thread scope, counters ``ph: "C"``.

:func:`collapsed_stacks` renders the same spans as flamegraph collapsed
lines (``lane;outer;inner <self-ns>``) for `flamegraph.pl` / speedscope;
:func:`validate_chrome_trace` is the schema check shared by the tests
and the CI trace-artifact job.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.obs.tracer import COUNTER, INSTANT, SPAN, TraceEvent, Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "collapsed_stacks",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
]

_NS_PER_US = 1000.0


def _intern(table: dict[str, int], label: str) -> int:
    """First-seen-order integer id for a string label (ids start at 1)."""
    idx = table.get(label)
    if idx is None:
        idx = table[label] = len(table) + 1
    return idx


def chrome_trace(source: Tracer | Iterable[TraceEvent]) -> dict:
    """Render recorded events as a Chrome trace-event JSON object."""
    events = source.events() if isinstance(source, Tracer) else list(source)
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}
    out: list[dict] = []

    def ids_for(ev: TraceEvent) -> tuple[int, int]:
        pid = _intern(pids, ev.pid)
        key = (ev.pid, ev.tid)
        tid = tids.get(key)
        if tid is None:
            tid = tids[key] = len(tids) + 1
            out.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": ev.tid},
                }
            )
        return pid, tid

    # Metadata first so viewers label lanes before any payload arrives.
    for ev in events:
        if ev.pid not in pids:
            pid = _intern(pids, ev.pid)
            out.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": ev.pid},
                }
            )

    for ev in sorted(events, key=lambda e: (e.ts_ns, e.seq)):
        pid, tid = ids_for(ev)
        base = {
            "name": ev.name,
            "pid": pid,
            "tid": tid,
            "ts": ev.ts_ns / _NS_PER_US,
        }
        if ev.cat:
            base["cat"] = ev.cat
        if ev.kind == SPAN:
            base["ph"] = "X"
            base["dur"] = ev.dur_ns / _NS_PER_US
            if ev.args:
                base["args"] = dict(ev.args)
        elif ev.kind == INSTANT:
            base["ph"] = "i"
            base["s"] = "t"
            if ev.args:
                base["args"] = dict(ev.args)
        elif ev.kind == COUNTER:
            base["ph"] = "C"
            base["tid"] = 0
            base["args"] = {ev.name: ev.value}
        else:  # unknown kinds become instants rather than vanishing
            base["ph"] = "i"
            base["s"] = "t"
        out.append(base)

    return {"traceEvents": out, "displayTimeUnit": "ns"}


def write_chrome_trace(source: Tracer | Iterable[TraceEvent], path) -> dict:
    """Serialize :func:`chrome_trace` to ``path``; returns the object."""
    obj = chrome_trace(source)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(obj, fh)
    return obj


# ----------------------------------------------------------------------
# Flamegraph collapsed stacks.
# ----------------------------------------------------------------------
def collapsed_stacks(source: Tracer | Iterable[TraceEvent]) -> str:
    """Spans as flamegraph collapsed lines, one per unique stack.

    Stacks are reconstructed per ``(pid, tid)`` lane from interval
    containment: a span strictly inside another on the same lane is its
    child.  Values are *self* nanoseconds (duration minus children), so
    feeding the output to ``flamegraph.pl`` or speedscope shows where
    scheduling time actually went.  Lines are sorted for determinism.
    """
    events = source.events() if isinstance(source, Tracer) else list(source)
    spans = [ev for ev in events if ev.kind == SPAN]
    totals: dict[str, float] = {}

    by_lane: dict[tuple[str, str], list[TraceEvent]] = {}
    for ev in spans:
        by_lane.setdefault((ev.pid, ev.tid), []).append(ev)

    for (pid, tid), lane in by_lane.items():
        # Sort by start, widest first on ties, so parents precede children.
        lane.sort(key=lambda e: (e.ts_ns, -e.dur_ns, e.seq))
        stack: list[TraceEvent] = []
        child_ns: dict[int, float] = {}

        def emit(ev: TraceEvent, path: str) -> None:
            self_ns = max(0.0, ev.dur_ns - child_ns.get(ev.seq, 0.0))
            if self_ns > 0:
                totals[path] = totals.get(path, 0.0) + self_ns

        for ev in lane:
            while stack and ev.ts_ns >= stack[-1].end_ns - 1e-9:
                done = stack.pop()
                emit(done, ";".join(
                    [f"{pid};{tid}"] + [s.name for s in stack] + [done.name]
                ))
            if stack:
                child_ns[stack[-1].seq] = (
                    child_ns.get(stack[-1].seq, 0.0) + ev.dur_ns
                )
            stack.append(ev)
        while stack:
            done = stack.pop()
            emit(done, ";".join(
                [f"{pid};{tid}"] + [s.name for s in stack] + [done.name]
            ))

    lines = [f"{path} {int(round(ns))}" for path, ns in totals.items()]
    return "\n".join(sorted(lines)) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Validation (shared by tests and the CI artifact job).
# ----------------------------------------------------------------------
_REQUIRED = ("ph", "ts", "pid", "tid")


def validate_chrome_trace(obj, *, require_nonempty: bool = False) -> list[str]:
    """Schema-check a Chrome trace object; returns a list of problems.

    Checks every event carries ``ph``/``ts``/``pid``/``tid``, durations
    are non-negative, counter events carry numeric args, and — per
    ``(pid, tid)`` lane — complete events nest properly (each pair of
    spans is either disjoint or one contains the other).
    """
    problems: list[str] = []
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        return ["top level must be an object with a 'traceEvents' array"]
    events = obj["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' must be an array"]
    payload = [e for e in events if isinstance(e, dict) and e.get("ph") != "M"]
    if require_nonempty and not payload:
        problems.append("trace contains no payload events")

    lanes: dict[tuple, list[tuple[float, float, str]]] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i} is not an object")
            continue
        if ev.get("ph") == "M":
            continue
        for key in _REQUIRED:
            if key not in ev:
                problems.append(f"event {i} ({ev.get('name')!r}) missing {key!r}")
        ph = ev.get("ph")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"span {i} ({ev.get('name')!r}) has bad dur={dur!r}")
            else:
                lanes.setdefault((ev.get("pid"), ev.get("tid")), []).append(
                    (float(ev.get("ts", 0.0)), float(dur), str(ev.get("name")))
                )
        elif ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                problems.append(f"counter {i} ({ev.get('name')!r}) args not numeric")

    eps = 1e-6
    for (pid, tid), spans in lanes.items():
        spans.sort()
        open_stack: list[tuple[float, float, str]] = []
        for ts, dur, name in spans:
            while open_stack and ts >= open_stack[-1][0] + open_stack[-1][1] - eps:
                open_stack.pop()
            if open_stack:
                parent_end = open_stack[-1][0] + open_stack[-1][1]
                if ts + dur > parent_end + eps:
                    problems.append(
                        f"lane pid={pid} tid={tid}: span {name!r} "
                        f"[{ts}, {ts + dur}] straddles enclosing span "
                        f"ending at {parent_end}"
                    )
                    continue
            open_stack.append((ts, dur, name))
    return problems


def validate_chrome_trace_file(path, *, require_nonempty: bool = True) -> None:
    """Load + validate a trace file; raises ``ValueError`` on problems."""
    with open(path, "r", encoding="utf-8") as fh:
        obj = json.load(fh)
    problems = validate_chrome_trace(obj, require_nonempty=require_nonempty)
    if problems:
        raise ValueError(
            f"{path}: invalid Chrome trace ({len(problems)} problems): "
            + "; ".join(problems[:10])
        )
