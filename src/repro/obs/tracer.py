"""The event recorder at the heart of ``repro.obs`` (docs/OBSERVABILITY.md).

A :class:`Tracer` records typed :class:`TraceEvent` s — spans (an
interval of work on a timeline lane), instants (a point annotation) and
counters (a sampled signal) — into a **preallocated ring buffer**.  The
design constraints come from the simulator it observes:

* **Near-zero cost when off.**  Instrumented components resolve their
  tracer once at construction (``repro.obs.tracer_for(config)`` returns
  ``None`` unless ``config.trace.enabled``), so a disabled run pays one
  ``if self._obs is None`` attribute test per instrumentation site and
  executes byte-for-byte the same simulation (`tests/test_obs.py`
  pins bit-identity, ``benchmarks/bench_obs_overhead.py`` pins <2%).
* **Bounded memory.**  The ring holds ``capacity`` events; older events
  are overwritten and counted in :attr:`Tracer.dropped` instead of
  growing without bound under Fig 11-14 scale runs.
* **Deterministic.**  Events are stamped with explicit caller-provided
  timestamps where the simulator knows them analytically (the DES
  computes every duration before it happens), falling back to the
  tracer's :attr:`clock`.  With the default :class:`SimClock` /
  :class:`ManualClock` domains a fixed seed reproduces an identical
  event stream; the :class:`WallClock` domain exists for profiling the
  host process (benchmarks), not for simulation results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

__all__ = [
    "TraceEvent",
    "Tracer",
    "SpanHandle",
    "SimClock",
    "ManualClock",
    "WallClock",
]

# Event kinds (mapped to Chrome trace phases by repro.obs.export).
SPAN = "span"
INSTANT = "instant"
COUNTER = "counter"


@dataclass(frozen=True)
class TraceEvent:
    """One recorded observation.

    ``ts_ns`` is in the tracer's clock domain (simulated nanoseconds in
    the default configuration).  ``seq`` is a monotone sequence number
    breaking timestamp ties deterministically, mirroring the DES
    engine's own tie-breaking convention.
    """

    kind: str
    name: str
    ts_ns: float
    pid: str
    tid: str
    seq: int
    dur_ns: float = 0.0
    value: float = 0.0
    args: Mapping[str, Any] | None = None
    cat: str = ""

    @property
    def end_ns(self) -> float:
        return self.ts_ns + self.dur_ns


# ----------------------------------------------------------------------
# Clock domains.
# ----------------------------------------------------------------------
class SimClock:
    """Reads the simulated-nanosecond clock of a DES ``Simulator``."""

    domain = "sim"

    def __init__(self, sim) -> None:
        self._sim = sim

    def now_ns(self) -> float:
        return float(self._sim.now)


class ManualClock:
    """Simulated-time clock for standalone (no-DES) instrumented loops.

    Callers advance it explicitly (e.g. by each write's ``service_ns``),
    which keeps traces of scheme-only experiments deterministic.
    """

    domain = "sim"

    def __init__(self, start_ns: float = 0.0) -> None:
        self.now = float(start_ns)

    def now_ns(self) -> float:
        return self.now

    def advance(self, delta_ns: float) -> float:
        if delta_ns < 0:
            raise ValueError("cannot advance a clock backwards")
        self.now += float(delta_ns)
        return self.now


class WallClock:
    """Host-process clock (profiling only; never a simulation result)."""

    domain = "wall"

    def __init__(self) -> None:
        import time

        self._counter = time.perf_counter_ns
        self._t0 = self._counter()

    def now_ns(self) -> float:
        return float(self._counter() - self._t0)


# ----------------------------------------------------------------------
# The tracer.
# ----------------------------------------------------------------------
class SpanHandle:
    """Context manager returned by :meth:`Tracer.span`.

    Measures the enclosed block on the tracer's clock and records one
    span event at exit.  Mutate :attr:`args` inside the block to attach
    results discovered while the span was open.
    """

    __slots__ = ("_tracer", "name", "pid", "tid", "cat", "args", "_t0")

    def __init__(self, tracer: "Tracer", name: str, pid: str, tid: str,
                 cat: str, args: dict | None) -> None:
        self._tracer = tracer
        self.name = name
        self.pid = pid
        self.tid = tid
        self.cat = cat
        self.args = args
        self._t0 = 0.0

    def __enter__(self) -> "SpanHandle":
        self._t0 = self._tracer.clock.now_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = self._tracer.clock.now_ns()
        self._tracer.complete(
            self.name,
            ts_ns=self._t0,
            dur_ns=max(0.0, end - self._t0),
            pid=self.pid,
            tid=self.tid,
            cat=self.cat,
            args=self.args,
        )


class Tracer:
    """Typed event recorder over a fixed-capacity ring buffer."""

    def __init__(
        self,
        capacity: int = 1 << 16,
        *,
        clock: SimClock | ManualClock | WallClock | None = None,
        metrics=None,
    ) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.capacity = int(capacity)
        self._buf: list[TraceEvent | None] = [None] * self.capacity
        self._count = 0  # events ever recorded (also the seq source)
        self.clock = clock if clock is not None else ManualClock()
        if metrics is None:
            from repro.obs.metrics import MetricRegistry

            metrics = MetricRegistry()
        self.metrics = metrics

    # ------------------------------------------------------------------
    def bind_clock(self, clock) -> None:
        """Swap the clock domain (e.g. onto a freshly built Simulator)."""
        self.clock = clock

    @property
    def recorded(self) -> int:
        """Events ever recorded, including those the ring overwrote."""
        return self._count

    @property
    def dropped(self) -> int:
        """Events lost to ring wraparound."""
        return max(0, self._count - self.capacity)

    def __len__(self) -> int:
        return min(self._count, self.capacity)

    # ------------------------------------------------------------------
    def _record(self, ev: TraceEvent) -> None:
        self._buf[self._count % self.capacity] = ev
        self._count += 1

    def complete(
        self,
        name: str,
        *,
        ts_ns: float | None = None,
        dur_ns: float = 0.0,
        pid: str = "sim",
        tid: str = "main",
        args: Mapping[str, Any] | None = None,
        cat: str = "",
    ) -> None:
        """Record a span with an explicit start and duration.

        This is the workhorse for DES components: the simulator knows
        every interval analytically (a write occupies ``[now, now +
        service_ns)``), so spans are emitted retrospectively rather than
        via enter/exit pairs.
        """
        if ts_ns is None:
            ts_ns = self.clock.now_ns()
        self._record(
            TraceEvent(SPAN, name, float(ts_ns), pid, tid, self._count,
                       dur_ns=float(dur_ns), args=args, cat=cat)
        )

    def instant(
        self,
        name: str,
        *,
        ts_ns: float | None = None,
        pid: str = "sim",
        tid: str = "main",
        args: Mapping[str, Any] | None = None,
        cat: str = "",
    ) -> None:
        """Record a point event (a retry, a retirement, a stall)."""
        if ts_ns is None:
            ts_ns = self.clock.now_ns()
        self._record(
            TraceEvent(INSTANT, name, float(ts_ns), pid, tid, self._count,
                       args=args, cat=cat)
        )

    def counter(
        self,
        name: str,
        value: float,
        *,
        ts_ns: float | None = None,
        pid: str = "sim",
        cat: str = "",
    ) -> None:
        """Record one sample of a numeric signal (queue depth, current)."""
        if ts_ns is None:
            ts_ns = self.clock.now_ns()
        self._record(
            TraceEvent(COUNTER, name, float(ts_ns), pid, name, self._count,
                       value=float(value), cat=cat)
        )

    def span(
        self,
        name: str,
        *,
        pid: str = "sim",
        tid: str = "main",
        cat: str = "",
        args: dict | None = None,
    ) -> SpanHandle:
        """Clock-measured span context manager (for live code blocks)."""
        return SpanHandle(self, name, pid, tid, cat, args)

    # ------------------------------------------------------------------
    def events(self) -> list[TraceEvent]:
        """Surviving events, oldest first (ring order reconstructed)."""
        if self._count <= self.capacity:
            return [ev for ev in self._buf[: self._count] if ev is not None]
        head = self._count % self.capacity
        return [ev for ev in (self._buf[head:] + self._buf[:head]) if ev is not None]

    def clear(self) -> None:
        """Drop all recorded events (capacity and clock are kept)."""
        self._buf = [None] * self.capacity
        self._count = 0
