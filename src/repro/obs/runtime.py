"""Tracer installation and config-driven resolution.

One simulation run shares one :class:`~repro.obs.tracer.Tracer` so the
engine, controller, schemes, chips and fault model all land on a single
merged timeline.  Components do **not** thread a tracer through every
constructor; they resolve it once at construction time::

    self._obs = tracer_for(config)   # None unless config.trace.enabled

and guard every hot-path emission with ``if self._obs is not None`` —
the single attribute test that keeps disabled runs bit-identical and
within the <2% overhead bar (``benchmarks/bench_obs_overhead.py``).

:func:`tracer_for` returns the process-wide installed tracer, creating
and installing one sized by ``config.trace.buffer_events`` on first use
when tracing is enabled.  Experiments and tests should prefer the
:func:`tracing` context manager, which guarantees the global slot is
restored afterwards (a leaked tracer would silently attach the *next*
run's events to the previous run's timeline).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from repro.obs.tracer import ManualClock, Tracer, WallClock

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.config import SystemConfig

__all__ = [
    "install_tracer",
    "uninstall_tracer",
    "active_tracer",
    "tracer_for",
    "tracing",
    "emit_schedule",
]

_ACTIVE: Tracer | None = None


def install_tracer(tracer: Tracer) -> Tracer:
    """Make ``tracer`` the process-wide active tracer; returns it."""
    global _ACTIVE
    _ACTIVE = tracer
    return tracer


def uninstall_tracer() -> Tracer | None:
    """Clear the active tracer slot; returns whatever was installed."""
    global _ACTIVE
    tracer, _ACTIVE = _ACTIVE, None
    return tracer


def active_tracer() -> Tracer | None:
    return _ACTIVE


def tracer_for(config: "SystemConfig | None") -> Tracer | None:
    """The tracer an instrumented component should record into.

    ``None`` (the overwhelmingly common case) unless the configuration
    enables tracing; when it does, the installed tracer is returned —
    one is created and installed on first demand so deep construction
    sites (``get_scheme(name, config)``) need no extra plumbing.
    """
    tc = getattr(config, "trace", None)
    if tc is None or not tc.enabled:
        return None
    tracer = _ACTIVE
    if tracer is None:
        clock = WallClock() if tc.clock == "wall" else ManualClock()
        tracer = install_tracer(Tracer(capacity=tc.buffer_events, clock=clock))
    return tracer


@contextmanager
def tracing(tracer: Tracer | None = None, *, capacity: int = 1 << 16) -> Iterator[Tracer]:
    """Install a tracer for the dynamic extent of a block, then restore.

    The previously installed tracer (usually ``None``) comes back on
    exit even if the block raises, so traced experiments cannot leak
    their timeline into later runs in the same process.
    """
    global _ACTIVE
    prev = _ACTIVE
    t = tracer if tracer is not None else Tracer(capacity=capacity)
    _ACTIVE = t
    try:
        yield t
    finally:
        _ACTIVE = prev


# ----------------------------------------------------------------------
# Timeline helper shared by chip- and scheme-level instrumentation.
# ----------------------------------------------------------------------
def emit_schedule(
    tracer: Tracer,
    schedule,
    *,
    base_ns: float,
    t_set_ns: float,
    pid: str,
    bits_of=None,
    budget: float | None = None,
) -> int:
    """Emit one Tetris schedule as FSM0/FSM1 lane slices + a GCP counter.

    ``schedule`` is a :class:`~repro.core.schedule.TetrisSchedule`;
    write-1 bursts land on the ``FSM1 write-1`` lane (one slice of
    ``t_set`` per write unit) and write-0 bursts on the ``FSM0 write-0``
    lane (one slice of ``t_set/K`` per sub-slot) — the rendering whose
    overlap is the paper's Figure 4.  ``bits_of(op) -> int`` lets a chip
    restrict the slices to its own lane bits (ops programming zero cells
    on this chip are skipped); ``budget`` adds per-sub-slot current
    counter samples against the charge-pump budget.  Returns the number
    of slices emitted.
    """
    K = schedule.K
    t_sub = t_set_ns / K
    emitted = 0
    for op in schedule.write1_queue:
        bits = op.n_bits if bits_of is None else bits_of(op)
        if bits <= 0:
            continue
        tracer.complete(
            f"write1 u{op.unit}",
            ts_ns=base_ns + op.slot * t_set_ns,
            dur_ns=t_set_ns,
            pid=pid,
            tid="FSM1 write-1",
            cat="fsm",
            args={"unit": op.unit, "slot": op.slot, "bits": int(bits),
                  "chunk": op.chunk},
        )
        emitted += 1
    for op in schedule.write0_queue:
        bits = op.n_bits if bits_of is None else bits_of(op)
        if bits <= 0:
            continue
        tracer.complete(
            f"write0 u{op.unit}",
            ts_ns=base_ns + op.slot * t_sub,
            dur_ns=t_sub,
            pid=pid,
            tid="FSM0 write-0",
            cat="fsm",
            args={"unit": op.unit, "subslot": op.slot, "bits": int(bits),
                  "chunk": op.chunk},
        )
        emitted += 1
    if budget is not None:
        occ = schedule.occupancy()
        for s, current in enumerate(occ):
            tracer.counter(
                f"{pid}.gcp_current",
                float(current),
                ts_ns=base_ns + s * t_sub,
                pid=pid,
                cat="fsm",
            )
        # Close the signal at the end of the schedule so the counter
        # track drops back to zero between writes.
        tracer.counter(
            f"{pid}.gcp_current",
            0.0,
            ts_ns=base_ns + max(len(occ), 1) * t_sub,
            pid=pid,
            cat="fsm",
        )
    return emitted
