"""``repro.obs`` — tracing + metrics observability (docs/OBSERVABILITY.md).

The subsystem has four small layers:

* :mod:`repro.obs.tracer` — the ring-buffer event recorder
  (:class:`Tracer`, :class:`TraceEvent`) and its clock domains
  (:class:`SimClock`, :class:`ManualClock`, :class:`WallClock`);
* :mod:`repro.obs.metrics` — the hierarchical :class:`MetricRegistry`
  of counters / gauges / streaming distributions;
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto-loadable)
  and flamegraph collapsed-stack exporters, plus the schema validator
  used by the tests and CI;
* :mod:`repro.obs.runtime` — the process-wide tracer slot instrumented
  components resolve against (:func:`tracer_for`, :func:`tracing`).

Tracing is **off by default** (``SystemConfig.trace.enabled=False``);
a disabled run executes bit-identically to a build without this package
and pays one attribute check per instrumentation site.
"""

from repro.obs.export import (
    chrome_trace,
    collapsed_stacks,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
)
from repro.obs.metrics import CounterMetric, GaugeMetric, MetricRegistry, ScopedRegistry
from repro.obs.runtime import (
    active_tracer,
    emit_schedule,
    install_tracer,
    tracer_for,
    tracing,
    uninstall_tracer,
)
from repro.obs.tracer import (
    ManualClock,
    SimClock,
    SpanHandle,
    TraceEvent,
    Tracer,
    WallClock,
)

__all__ = [
    # tracer
    "Tracer",
    "TraceEvent",
    "SpanHandle",
    "SimClock",
    "ManualClock",
    "WallClock",
    # metrics
    "MetricRegistry",
    "ScopedRegistry",
    "CounterMetric",
    "GaugeMetric",
    # export
    "chrome_trace",
    "write_chrome_trace",
    "collapsed_stacks",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
    # runtime
    "install_tracer",
    "uninstall_tracer",
    "active_tracer",
    "tracer_for",
    "tracing",
    "emit_schedule",
]
