"""Analysis-stage overhead model (paper §IV.D).

The authors synthesized Algorithm 2 with Vivado HLS onto a Virtex-7 and
measured a worst case of **41 cycles at 400 MHz** (102.5 ns) for 8 data
units, dominated by the two 8-element sorts and the first-fit scans.  They
also report the added logic draws < 4 mW against a 125 mW pump budget
(~3.2 %).

We expose both the measured constant (used by the scheme model) and an
analytic cycle estimate derived from the algorithm's operation count, so
ablations over the number of data units (e.g. 128 B / 256 B cache lines,
which the introduction motivates) can scale the overhead plausibly instead
of pretending it stays flat.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AnalysisOverheadModel"]


@dataclass(frozen=True)
class AnalysisOverheadModel:
    """Latency / power overhead of the Tetris Write logic.

    Attributes
    ----------
    clock_mhz:
        Clock of the analysis logic (paper: the 400 MHz memory bus clock;
        an ASIC port could run faster — §IV.D calls the FPGA number
        "primitive and pessimistic").
    measured_worst_cycles:
        The paper's measured worst case for 8 data units.
    logic_power_mw / pump_power_mw:
        Added logic power vs. the pump's division-write power.
    """

    clock_mhz: float = 400.0
    measured_worst_cycles: int = 41
    reference_units: int = 8
    logic_power_mw: float = 4.0
    pump_power_mw: float = 125.0

    #: schedule cost of the pipeline: 2 sorts + 2 placement passes,
    #: each burning one cycle per data unit (matches
    #: ``TetrisLogicModel.CYCLES_PER_UNIT``)
    CYCLES_PER_UNIT = 4

    @property
    def measured_worst_ns(self) -> float:
        """The constant the scheme model charges per write (102.5 ns)."""
        return self.measured_worst_cycles / self.clock_mhz * 1e3

    @property
    def power_overhead_fraction(self) -> float:
        """§IV.D's ~3.2 % figure."""
        return self.logic_power_mw / self.pump_power_mw

    def estimated_cycles(self, n_units: int) -> int:
        """Analytic worst-case cycle estimate for ``n_units`` data units.

        The dominant costs in Algorithm 2 are two sorts of ``n`` elements
        (an odd-even sorting network needs ``n`` stages of 1 cycle each in
        the HLS mapping) and two first-fit passes whose inner scans touch
        at most ``n`` bins / ``n*K`` sub-slots but are bounded by the
        sequential outer loop of ``n`` iterations each.  Calibrated so the
        paper's measured 41 cycles is reproduced at ``n = 8``:
        ``2n (sorts) + 2n (scans) + n/8 constant-ish control ≈ 41``.
        """
        if n_units < 1:
            raise ValueError("need at least one data unit")
        n = n_units
        # 2 sorting networks (n stages each) + 2 greedy passes (n stages
        # each, scans pipelined) + fixed control/setup overhead.
        control = self.measured_worst_cycles - self.CYCLES_PER_UNIT * self.reference_units
        return self.CYCLES_PER_UNIT * n + max(control, 0)

    def estimated_ns(self, n_units: int) -> float:
        return self.estimated_cycles(n_units) / self.clock_mhz * 1e3
