"""Tetris Write core: the paper's primary contribution.

The write path has three stages (paper §III.B):

1. **Read** (:mod:`repro.core.read_stage`) — read the stored line, decide
   per data unit whether to flip (Flip-N-Write style), and count the SET
   (write-1) and RESET (write-0) operations actually required.
2. **Analysis** (:mod:`repro.core.analysis`) — greedy first-fit-decreasing
   packing: write-1s claim whole write units under the power budget, then
   write-0s are "Tetris-dropped" into the leftover sub-write-unit budget.
3. **Individually write** (:mod:`repro.core.fsm`) — two independent finite
   state machines drain the write-1 and write-0 queues simultaneously.
"""

from repro.core.analysis import TetrisScheduler, analyze
from repro.core.batch import BatchPackResult, pack_batch, service_units_batch
from repro.core.fsm import FSMExecutor, execute_schedule
from repro.core.generalized import BurstClass, GeneralizedScheduler
from repro.core.hwmodel import AreaModel, SortingNetwork, TetrisLogicModel
from repro.core.overhead import AnalysisOverheadModel
from repro.core.packers import (
    best_fit_decreasing_bins,
    ffd_bins,
    optimal_bins,
    worst_fit_decreasing_bins,
)
from repro.core.read_stage import ReadStageResult, cost_aware_flip, read_stage
from repro.core.schedule import ScheduledOp, TetrisSchedule

__all__ = [
    "AnalysisOverheadModel",
    "AreaModel",
    "BatchPackResult",
    "BurstClass",
    "FSMExecutor",
    "GeneralizedScheduler",
    "ReadStageResult",
    "ScheduledOp",
    "SortingNetwork",
    "TetrisLogicModel",
    "TetrisScheduler",
    "TetrisSchedule",
    "analyze",
    "best_fit_decreasing_bins",
    "cost_aware_flip",
    "execute_schedule",
    "ffd_bins",
    "optimal_bins",
    "pack_batch",
    "read_stage",
    "service_units_batch",
    "worst_fit_decreasing_bins",
]
