"""Hardware model of the Tetris Write Logic (paper Figs 6-7, §IV.D).

The paper measures Algorithm 2 at 41 cycles (worst case, 8 data units)
after HLS synthesis.  This module rebuilds that datapath at the
register-transfer level of abstraction so the figure can be *derived*
instead of assumed:

* :class:`SortingNetwork` — an odd-even transposition network: ``n``
  compare-exchange stages of ``n/2`` parallel comparators, one stage per
  cycle.  Two instances sort the IN1 and IN0 vectors (Reg0/Reg1 feed it).
* :class:`FirstFitUnit` — the greedy placement pipeline: one data unit
  retires per cycle; the per-unit scan over open write units is a
  parallel comparator tree, so it does not add cycles at n = 8.
* :class:`TetrisLogicModel` — the full analyzer: load, two sorts (run
  back to back on the shared network, as the HLS schedule does), two
  placement passes and the queue write-out, with a cycle counter.

With the default structure the model yields 41 cycles at 8 data units,
matching §IV.D exactly, and produces the same schedule counts as
:class:`~repro.core.analysis.TetrisScheduler` (cross-checked in tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SortingNetwork", "FirstFitUnit", "TetrisLogicModel"]


class SortingNetwork:
    """Odd-even transposition network: n stages, one cycle per stage.

    Each stage applies n/2 compare-exchange operations in parallel —
    the canonical low-area hardware sorter for small n.
    """

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("network width must be >= 1")
        self.n = n
        self.cycles_per_sort = n
        self.compare_exchanges = 0

    def sort_descending(
        self, keys: np.ndarray, tags: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sort keys (descending) carrying per-entry tags; returns both.

        ``tags`` default to the entry indices — the data-unit labels the
        hardware keeps in Reg0 next to the counts in Reg1.
        """
        keys = np.asarray(keys, dtype=np.float64).copy()
        if keys.size != self.n:
            raise ValueError(f"expected {self.n} keys, got {keys.size}")
        tags = (
            np.arange(self.n, dtype=np.int64)
            if tags is None
            else np.asarray(tags, dtype=np.int64).copy()
        )
        for stage in range(self.n):
            start = stage % 2
            for i in range(start, self.n - 1, 2):
                self.compare_exchanges += 1
                if keys[i] < keys[i + 1]:
                    keys[i], keys[i + 1] = keys[i + 1], keys[i]
                    tags[i], tags[i + 1] = tags[i + 1], tags[i]
        return keys, tags


@dataclass
class FirstFitUnit:
    """Greedy placement pipeline: one burst per cycle.

    The residual-capacity comparison against every open bin happens in
    parallel combinational logic (a comparator per bin); the sequential
    cost is the burst stream itself.
    """

    budget: float
    cycles: int = 0
    bins: list[float] = field(default_factory=list)

    def place(self, demand: float) -> int:
        """Place one burst; returns its bin index.  Costs one cycle."""
        self.cycles += 1
        if demand > self.budget:
            raise ValueError(f"demand {demand} exceeds budget {self.budget}")
        for j, used in enumerate(self.bins):
            if used + demand <= self.budget:
                self.bins[j] = used + demand
                return j
        self.bins.append(demand)
        return len(self.bins) - 1


@dataclass
class SubSlotFitUnit:
    """Write-0 placement against the sub-slot residuals, one per cycle."""

    budget: float
    K: int
    cycles: int = 0
    occ: np.ndarray = field(default_factory=lambda: np.zeros(0))
    extra: list[float] = field(default_factory=list)

    def load_interspace(self, wu_bins: list[float]) -> None:
        """Latch the write-1 pass's residuals into the slot registers."""
        self.occ = np.repeat(np.asarray(wu_bins, dtype=np.float64), self.K)

    def place(self, demand: float) -> int:
        self.cycles += 1
        if demand > self.budget:
            raise ValueError(f"demand {demand} exceeds budget {self.budget}")
        for s in range(self.occ.size):
            if self.occ[s] + demand <= self.budget:
                self.occ[s] += demand
                return s
        for e, used in enumerate(self.extra):
            if used + demand <= self.budget:
                self.extra[e] = used + demand
                return self.occ.size + e
        self.extra.append(demand)
        return self.occ.size + len(self.extra) - 1


class TetrisLogicModel:
    """Cycle-accounted model of the full analyzer block.

    Cycle budget for ``n`` data units (HLS-style schedule):

    ======================  ============  =======================
    phase                   cycles        hardware
    ======================  ============  =======================
    load Reg0/Reg1          1             register latch
    current scaling (xL)    1             shifters (L = 2)
    sort IN1                n             sorting network pass 1
    sort IN0                n             sorting network pass 2
    place write-1s          n             first-fit pipeline
    place write-0s          n             sub-slot pipeline
    queue write-out         6             two queues, 3 beats each
    control                 1             FSM epilogue
    ======================  ============  =======================

    Total ``4n + 9`` — **41 cycles at n = 8**, the paper's measurement.
    """

    LOAD_CYCLES = 1
    SCALE_CYCLES = 1
    WRITEOUT_CYCLES = 6
    CONTROL_CYCLES = 1
    #: two sort passes + two placement passes, each 1 cycle/unit
    CYCLES_PER_UNIT = 4

    def __init__(self, n_units: int, K: int, L: float, budget: float) -> None:
        self.n = n_units
        self.K = K
        self.L = L
        self.budget = budget
        self.network = SortingNetwork(n_units)
        self.cycles = 0

    # ------------------------------------------------------------------
    def analyze(
        self, n_set: np.ndarray, n_reset: np.ndarray
    ) -> tuple[int, int]:
        """Run the analyzer; returns (result, subresult) and accumulates
        the cycle count in :attr:`cycles`."""
        n_set = np.asarray(n_set, dtype=np.int64)
        n_reset = np.asarray(n_reset, dtype=np.int64)
        if n_set.size != self.n or n_reset.size != self.n:
            raise ValueError(f"expected {self.n} data units")

        self.cycles += self.LOAD_CYCLES
        in1 = n_set.astype(np.float64)
        in0 = n_reset.astype(np.float64) * self.L
        self.cycles += self.SCALE_CYCLES

        keys1, _ = self.network.sort_descending(in1)
        self.cycles += self.network.cycles_per_sort
        keys0, _ = self.network.sort_descending(in0)
        self.cycles += self.network.cycles_per_sort

        ffu = FirstFitUnit(self.budget)
        for d in keys1:
            if d > 0:
                ffu.place(float(d))
        self.cycles += self.n  # pipeline runs a fixed n beats

        ssu = SubSlotFitUnit(self.budget, self.K)
        ssu.load_interspace(ffu.bins)
        for d in keys0:
            if d > 0:
                ssu.place(float(d))
        self.cycles += self.n

        self.cycles += self.WRITEOUT_CYCLES + self.CONTROL_CYCLES
        return len(ffu.bins), len(ssu.extra)

    # ------------------------------------------------------------------
    @classmethod
    def worst_case_cycles(cls, n_units: int) -> int:
        """Closed form of the schedule above: ``4n + 9``."""
        return (
            cls.CYCLES_PER_UNIT * n_units
            + cls.LOAD_CYCLES
            + cls.SCALE_CYCLES
            + cls.WRITEOUT_CYCLES
            + cls.CONTROL_CYCLES
        )


@dataclass(frozen=True)
class AreaModel:
    """Gate-count footing for §IV.D's "the area overhead is minimal".

    Counts the added blocks of Figs 6-9 in 2-input-gate equivalents
    (GE), using the standard conversions (1-bit full adder ≈ 5 GE,
    1-bit 2:1 mux ≈ 3 GE, DFF ≈ 4 GE, comparator bit ≈ 3 GE):

    * Reg0/Reg1 — two 48-bit label/count registers;
    * 0/1 counters — two ``count_width``-bit popcount adder trees over
      the chip's data width;
    * the sorting network — n stages of n/2 compare-exchange units on
      ``count_width``-bit keys + tags;
    * two first-fit scan stages — ``n`` parallel comparators + adders;
    * the write-driver change — one XOR + one AND per data bit.

    For the Table II chip the total lands in the low thousands of GE —
    orders of magnitude below a charge pump or P&V control block, which
    is the paper's argument made checkable.
    """

    n_units: int = 8
    count_width: int = 6      # Reg1 stores counts 0..32
    data_bits_per_chip: int = 16

    @property
    def register_ge(self) -> int:
        return 2 * 48 * 4  # two 48-bit register files in DFFs

    @property
    def counter_ge(self) -> int:
        # A W-input popcount tree needs ~W full adders; two polarities.
        return 2 * self.data_bits_per_chip * 5

    @property
    def sorter_ge(self) -> int:
        n = self.n_units
        per_ce = self.count_width * (3 + 2 * 3)  # comparator + 2 muxes/bit
        return n * (n // 2) * per_ce

    @property
    def scan_ge(self) -> int:
        # n residual comparators + one accumulator adder, two passes.
        per = self.n_units * self.count_width * 3 + self.count_width * 5
        return 2 * per

    @property
    def driver_ge(self) -> int:
        # XOR (PROG enable) + AND (gating) per data bit + flip bit.
        return (self.data_bits_per_chip + 1) * 2

    @property
    def total_ge(self) -> int:
        return (
            self.register_ge
            + self.counter_ge
            + self.sorter_ge
            + self.scan_ge
            + self.driver_ge
        )

    def fraction_of(self, reference_ge: float = 2_000_000.0) -> float:
        """Share of a (conservatively small) 2M-GE PCM chip periphery."""
        return self.total_ge / reference_ge
