"""Stage 2 of Tetris Write: the analysis (scheduling) stage, Algorithm 2.

The scheduler is a greedy first-fit-decreasing bin packer with two passes
run over the data units of one cache line:

1. **Write-1 pass** — data units are sorted by the current their SET
   burst draws (``IN1[i] = n_set[i]``, one SET unit per cell).  Each burst
   occupies a *whole write unit* (duration ``t_set``) and is placed in the
   first existing write unit whose residual budget fits it; a new write
   unit is opened when none fits.  The number of write units opened is the
   paper's ``result``.
2. **Write-0 pass** — bursts draw ``IN0[i] = n_reset[i] * L`` and last one
   *sub-write-unit* (``t_set / K``).  They are dropped, largest first,
   into the earliest sub-slot whose residual budget fits — the interspace
   left by the long write-1s, like a Tetris piece slotting into a gap.
   Only when no existing sub-slot fits is an extra sub-write-unit appended
   after the write units; the count of those is ``subresult``.

Service time is Equation 5: ``(result + subresult / K) * Tset``.

This module holds the clear scalar implementation used by the chip model,
tests and examples; :mod:`repro.core.batch` provides the semantically
identical vectorized version used to pre-compute service times for whole
traces.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.core.schedule import ScheduledOp, TetrisSchedule

__all__ = ["TetrisScheduler", "analyze"]


class ScheduleError(ValueError):
    """A burst cannot fit the power budget even in an empty slot."""


class TetrisScheduler:
    """Reusable Algorithm 2 engine for a fixed (K, L, budget) operating point.

    Parameters
    ----------
    K:
        Time asymmetry — sub-write-units per write unit (paper: 8).
    L:
        Power asymmetry — RESET current in SET units (paper: 2).
    power_budget:
        Maximum total current per sub-slot, in SET units (paper: 32 per
        chip, 128 per GCP-pooled bank).
    exclusive_unit_slots:
        Ablation knob.  When true, a data unit's write-0 burst may not
        share a sub-slot with its own write-1 burst (models a shared
        per-unit select line).  The paper's worked example overlaps them,
        so the default is ``False``.
    memo_size:
        Bound of the per-instance LRU memo on :meth:`schedule`.  Write
        bit-profiles repeat heavily (Fig 3: ~9.6 changed bits per 64-bit
        unit on average), so the chip path re-packs the same count tuples
        constantly; memoized schedules are returned *shared* and must not
        be mutated (nothing in the simulator does after ``validate()``).
        ``0`` disables memoization.
    """

    #: Default bound of the per-instance schedule memo.
    MEMO_SIZE = 4096

    def __init__(
        self,
        K: int,
        L: float,
        power_budget: float,
        *,
        exclusive_unit_slots: bool = False,
        allow_split: bool = False,
        memo_size: int | None = None,
    ) -> None:
        if K < 1:
            raise ValueError("K must be >= 1")
        if L <= 0 or power_budget <= 0:
            raise ValueError("L and power_budget must be positive")
        self.K = int(K)
        self.L = float(L)
        self.power_budget = float(power_budget)
        self.exclusive_unit_slots = bool(exclusive_unit_slots)
        # Mobile division modes shrink the budget below one unit's worst
        # case; with allow_split an oversized burst is divided into
        # budget-sized chunks scheduled independently (distinct cells of
        # the same unit programmed in different write units).
        self.allow_split = bool(allow_split)
        self.memo_size = self.MEMO_SIZE if memo_size is None else int(memo_size)
        self._memo: OrderedDict[tuple[bytes, bytes], TetrisSchedule] = OrderedDict()
        self.memo_hits = 0
        self.memo_misses = 0

    # ------------------------------------------------------------------
    def schedule(self, n_set: np.ndarray, n_reset: np.ndarray) -> TetrisSchedule:
        """Pack one cache line's per-unit SET/RESET counts into a schedule.

        ``n_set`` / ``n_reset`` are the read stage's per-unit program
        counts.  Returns a validated :class:`TetrisSchedule` — possibly a
        shared, memoized instance (treat schedules as immutable).
        """
        n_set = np.atleast_1d(np.asarray(n_set, dtype=np.int64))
        n_reset = np.atleast_1d(np.asarray(n_reset, dtype=np.int64))
        if n_set.shape != n_reset.shape or n_set.ndim != 1:
            raise ValueError("n_set / n_reset must be matching 1-D arrays")
        if int(n_set.min(initial=0)) < 0 or int(n_reset.min(initial=0)) < 0:
            raise ValueError("program counts must be non-negative")

        memo = self._memo if self.memo_size > 0 else None
        if memo is not None:
            key = (n_set.tobytes(), n_reset.tobytes())
            cached = memo.get(key)
            if cached is not None:
                memo.move_to_end(key)
                self.memo_hits += 1
                # Serve a copy: the memoized entry must survive callers
                # that mutate their schedule (fault-retry re-pricing).
                return cached.copy()
            self.memo_misses += 1

        sched = TetrisSchedule(K=self.K, power_budget=self.power_budget)
        in1 = n_set.astype(np.float64)  # SET draws 1 current unit per cell
        in0 = n_reset.astype(np.float64) * self.L

        self._pack_write1(sched, in1, n_set)
        self._pack_write0(sched, in0, n_reset)
        sched.validate()

        if memo is not None:
            # Keep a pristine copy; the caller gets the working object.
            memo[key] = sched.copy()
            if len(memo) > self.memo_size:
                memo.popitem(last=False)
        return sched

    # ------------------------------------------------------------------
    def _chunks(
        self, unit: int, n_cells: int, cost: float, kind: str
    ) -> list[tuple[int, int, float, int]]:
        """Split one burst into budget-sized chunks: (unit, chunk, current, bits).

        The split is *bit-integral*: each chunk programs a whole number
        of cells (``floor(budget / cost)`` per full chunk) and the chunk
        bit counts sum exactly to ``n_cells``.  Slicing by current
        instead — the historical behavior — both lost cells to rounding
        (``int(round(...))`` per chunk need not conserve the total) and
        fabricated capacity a cell-integral device cannot realize
        (2.5 bits per sub-slot), which the differential oracle flags as
        executed-vs-reported latency divergence.
        """
        budget = self.power_budget
        need = n_cells * cost
        if need <= budget:
            return [(unit, 0, need, n_cells)]
        if not self.allow_split:
            raise ScheduleError(
                f"{kind} burst of unit {unit} needs {need} > budget {budget} "
                "(pass allow_split=True to divide oversized bursts)"
            )
        cells_per_chunk = int(budget // cost)
        if cells_per_chunk < 1:
            raise ScheduleError(
                f"power budget {budget} below one {kind} cell's current {cost}"
            )
        out = []
        chunk = 0
        remaining = n_cells
        while remaining > 0:
            bits = min(remaining, cells_per_chunk)
            out.append((unit, chunk, bits * cost, bits))
            remaining -= bits
            chunk += 1
        return out

    def _pack_write1(
        self, sched: TetrisSchedule, in1: np.ndarray, n_set: np.ndarray
    ) -> None:
        budget = self.power_budget
        # First-fit-decreasing over write units; wu_used[j] is the current
        # already committed to write unit j (uniform across its K slots
        # because only write-1s are placed in this pass).
        wu_used: list[float] = []
        bursts: list[tuple[int, int, float, int]] = []
        for i in np.argsort(-in1, kind="stable"):
            if in1[i] > 0:
                bursts.extend(
                    self._chunks(int(i), int(n_set[i]), 1.0, "write-1")
                )
        bursts.sort(key=lambda b: -b[2])
        for unit, chunk, need, bits in bursts:
            for j, used in enumerate(wu_used):
                if used + need <= budget:
                    wu_used[j] = used + need
                    break
            else:
                wu_used.append(need)
                j = len(wu_used) - 1
            sched.write1_queue.append(
                ScheduledOp(
                    unit=unit, kind="write1", slot=j,
                    current=need, n_bits=bits, chunk=chunk,
                )
            )
        sched.result = len(wu_used)

    def _pack_write0(
        self, sched: TetrisSchedule, in0: np.ndarray, n_reset: np.ndarray
    ) -> None:
        budget = self.power_budget
        K = self.K
        # Residual budget per global sub-slot.  Slots [0, result*K) are
        # the interspaces of the write-1 units; extra slots are appended
        # on demand.
        occ = np.zeros(sched.result * K, dtype=np.float64)
        for op in sched.write1_queue:
            occ[op.slot * K : (op.slot + 1) * K] += op.current
        # Map data unit -> its write-1 unit for the exclusive-slot ablation.
        own_unit = {op.unit: op.slot for op in sched.write1_queue}

        extra: list[float] = []  # occupancy of appended sub-slots
        bursts: list[tuple[int, int, float, int]] = []
        for i in np.argsort(-in0, kind="stable"):
            if in0[i] > 0:
                bursts.extend(
                    self._chunks(int(i), int(n_reset[i]), self.L, "write-0")
                )
        bursts.sort(key=lambda b: -b[2])
        for unit, chunk, need, bits in bursts:
            placed = -1
            for s in range(occ.size):
                if occ[s] + need > budget:
                    continue
                if (
                    self.exclusive_unit_slots
                    and unit in own_unit
                    and s // K == own_unit[unit]
                ):
                    continue
                placed = s
                break
            if placed < 0:
                for e, used in enumerate(extra):
                    if used + need <= budget:
                        extra[e] = used + need
                        placed = occ.size + e
                        break
                else:
                    extra.append(need)
                    placed = occ.size + len(extra) - 1
            else:
                occ[placed] += need
            sched.write0_queue.append(
                ScheduledOp(
                    unit=unit, kind="write0", slot=placed,
                    current=need, n_bits=bits, chunk=chunk,
                )
            )
        sched.subresult = len(extra)


def analyze(
    n_set: np.ndarray,
    n_reset: np.ndarray,
    *,
    K: int = 8,
    L: float = 2.0,
    power_budget: float = 128.0,
    exclusive_unit_slots: bool = False,
    allow_split: bool = False,
) -> TetrisSchedule:
    """One-shot convenience wrapper around :class:`TetrisScheduler`.

    Defaults correspond to the paper's bank-level operating point with the
    Global Charge Pump pooling four chips (budget 128, K=8, L=2).
    """
    return TetrisScheduler(
        K,
        L,
        power_budget,
        exclusive_unit_slots=exclusive_unit_slots,
        allow_split=allow_split,
    ).schedule(n_set, n_reset)
