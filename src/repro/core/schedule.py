"""Schedule datatypes produced by the Tetris analysis stage.

A :class:`TetrisSchedule` is the contract between the analysis stage
(Algorithm 2) and the execution stage (the FSM pair): it says, for every
data unit, *which write unit* its write-1s run in and *which
sub-write-unit* its write-0s run in, plus the derived occupancy matrix
used to verify the power budget.

Time axis convention
--------------------
Write units are numbered from 0 and each lasts ``t_set``.  Each write unit
is divided into ``K`` sub-write-units of ``t_set / K``; the global
sub-slot index of write unit *j*, slot *k* is ``j*K + k``.  Additional
sub-write-units for overflow write-0s are appended after the last write
unit, i.e. they start at global sub-slot ``result*K``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ScheduledOp", "TetrisSchedule"]


@dataclass(frozen=True)
class ScheduledOp:
    """One queue entry: a data unit's write-1 or write-0 burst.

    Attributes
    ----------
    unit:
        Index of the data unit within the cache line.
    kind:
        ``"write1"`` (SET burst) or ``"write0"`` (RESET burst).
    chunk:
        Split index when one unit's burst exceeds the budget and is
        divided across write units (mobile division modes); 0 otherwise.
    slot:
        For write-1s: the write-unit index.  For write-0s: the *global*
        sub-write-unit index.
    current:
        Instantaneous current the burst draws, in SET units
        (``n_set`` for write-1s, ``n_reset * L`` for write-0s).
    n_bits:
        Number of cells programmed by the burst.
    """

    unit: int
    kind: str
    slot: int
    current: float
    n_bits: int
    chunk: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("write1", "write0"):
            raise ValueError(f"bad op kind: {self.kind}")
        if self.slot < 0:
            raise ValueError("slot must be non-negative")
        if self.chunk < 0:
            raise ValueError("chunk index must be non-negative")
        # A burst programs at least one cell and draws positive current:
        # a zero-bit op would occupy a sub-slot (stretching Eq. 5) while
        # programming nothing — the chunk-split rounding bug the oracle
        # harness pins in tests/fixtures/oracle/.
        if self.n_bits < 1:
            raise ValueError(f"burst must program >= 1 cell, got {self.n_bits}")
        if not self.current > 0 or not np.isfinite(self.current):
            raise ValueError(f"burst current must be positive, got {self.current}")


@dataclass
class TetrisSchedule:
    """Complete schedule for one cache-line write.

    ``result`` and ``subresult`` are the two quantities of the paper's
    Equation 5: the number of full write units consumed by write-1s and
    the number of *extra* sub-write-units appended for overflow write-0s.
    """

    K: int
    power_budget: float
    write1_queue: list[ScheduledOp] = field(default_factory=list)
    write0_queue: list[ScheduledOp] = field(default_factory=list)
    result: int = 0
    subresult: int = 0

    # ------------------------------------------------------------------
    def copy(self) -> "TetrisSchedule":
        """Independent copy sharing only the frozen :class:`ScheduledOp` s.

        The scheduler's memo serves schedules to many callers; handing
        each one a copy keeps a caller that re-prices a schedule in
        place (e.g. fault-retry accounting) from corrupting the memo
        entry every later cache hit would receive.
        """
        return TetrisSchedule(
            K=self.K,
            power_budget=self.power_budget,
            write1_queue=list(self.write1_queue),
            write0_queue=list(self.write0_queue),
            result=self.result,
            subresult=self.subresult,
        )

    # ------------------------------------------------------------------
    @property
    def total_sub_slots(self) -> int:
        """Number of occupied sub-write-unit slots on the time axis."""
        return self.result * self.K + self.subresult

    def service_units(self) -> float:
        """Service time in units of ``t_set`` (Equation 5 without Tset)."""
        return self.result + self.subresult / self.K

    def service_time_ns(self, t_set_ns: float) -> float:
        """Equation 5: ``(result + subresult / K) * Tset``."""
        return self.service_units() * t_set_ns

    # ------------------------------------------------------------------
    def occupancy(self) -> np.ndarray:
        """Current drawn in every sub-write-unit slot (verification aid).

        Returns an array of length :attr:`total_sub_slots` whose entry
        ``s`` is the total current (in SET units) flowing during global
        sub-slot ``s``.  A write-1 op in write unit *j* contributes its
        current to all ``K`` sub-slots of *j*; a write-0 op contributes to
        its single sub-slot.
        """
        n = self.total_sub_slots
        # Size defensively so a malformed schedule (slots beyond the
        # declared range) can still be inspected by validate().
        span = max(
            [n, 1]
            + [(op.slot + 1) * self.K for op in self.write1_queue]
            + [op.slot + 1 for op in self.write0_queue]
        )
        occ = np.zeros(span, dtype=np.float64)
        for op in self.write1_queue:
            base = op.slot * self.K
            occ[base : base + self.K] += op.current
        for op in self.write0_queue:
            occ[op.slot] += op.current
        return occ[:n]

    def validate(self) -> None:
        """Raise ``AssertionError`` if the schedule breaks an invariant.

        Checked invariants (see DESIGN.md §6):

        * no sub-slot draws more than the power budget;
        * write-1 slots lie inside ``[0, result)``;
        * write-0 slots lie inside ``[0, result*K + subresult)``;
        * no data unit appears twice in the same queue.
        """
        occ = self.occupancy()
        assert occ.size == 0 or float(occ.max()) <= self.power_budget + 1e-9, (
            f"power budget exceeded: {occ.max()} > {self.power_budget}"
        )
        for op in self.write1_queue:
            assert 0 <= op.slot < self.result, f"write-1 slot out of range: {op}"
        for op in self.write0_queue:
            assert 0 <= op.slot < self.total_sub_slots, (
                f"write-0 slot out of range: {op}"
            )
        for queue in (self.write1_queue, self.write0_queue):
            keys = [(op.unit, op.chunk) for op in queue]
            assert len(keys) == len(set(keys)), "data unit burst scheduled twice"

    def units_in_queue(self, kind: str) -> set[int]:
        queue = self.write1_queue if kind == "write1" else self.write0_queue
        return {op.unit for op in queue}
