"""Stage 3 of Tetris Write: the two-FSM execution model (paper Fig. 8).

``FSM1`` drains the write-1 queue: every ``t_set`` it selects the data
units whose write-1 bursts belong to the current write unit, raises their
MUX select and SET signals, and counts down ``Counter1``.  ``FSM0``
independently drains the write-0 queue every ``t_reset`` (one
sub-write-unit).  The two state machines share nothing but the memory
clock, which is exactly why a write-0 can hide inside a write-1's slot.

:class:`FSMExecutor` replays a :class:`~repro.core.schedule.TetrisSchedule`
on a discrete sub-slot clock, recording which bursts are active in every
sub-slot and the current drawn.  It is deliberately independent of the
analysis stage's own bookkeeping so tests can cross-check the two:
the executor must finish at exactly Equation 5's time and must never see
a sub-slot draw above the power budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.schedule import TetrisSchedule

__all__ = ["FSMExecutor", "FSMTrace", "execute_schedule"]


@dataclass
class FSMTrace:
    """Cycle-by-cycle record of one schedule's execution.

    ``active[s]`` lists ``(unit, kind)`` bursts driving cells during
    global sub-slot ``s``; ``current[s]`` is the summed current.
    ``completion_ns`` is when the last burst's last cell finishes.
    """

    K: int
    t_set_ns: float
    active: list[list[tuple[int, str]]] = field(default_factory=list)
    current: np.ndarray = field(default_factory=lambda: np.zeros(0))
    completion_ns: float = 0.0
    set_bits: int = 0
    reset_bits: int = 0

    @property
    def t_sub_ns(self) -> float:
        return self.t_set_ns / self.K

    def peak_current(self) -> float:
        return float(self.current.max()) if self.current.size else 0.0


class FSMExecutor:
    """Replays schedules on the sub-slot clock, mimicking FSM0/FSM1.

    Parameters mirror the chip operating point.  ``power_budget`` is only
    used for the safety check — the executor trusts the schedule's slot
    assignments, as the hardware FSMs trust the analyzer.
    """

    def __init__(self, t_set_ns: float, power_budget: float) -> None:
        if t_set_ns <= 0:
            raise ValueError("t_set must be positive")
        self.t_set_ns = float(t_set_ns)
        self.power_budget = float(power_budget)

    def execute(self, schedule: TetrisSchedule) -> FSMTrace:
        """Run the schedule; returns the execution trace.

        Raises ``RuntimeError`` if the FSMs would ever draw more current
        than the budget — the analyzer guarantee the hardware relies on.
        """
        K = schedule.K
        n_slots = schedule.total_sub_slots
        trace = FSMTrace(K=K, t_set_ns=self.t_set_ns)
        trace.active = [[] for _ in range(n_slots)]
        current = np.zeros(max(n_slots, 1), dtype=np.float64)

        # FSM1: each write-1 burst holds its select line for the K
        # consecutive sub-slots of its write unit (Counter1 counts Tset).
        for op in schedule.write1_queue:
            base = op.slot * K
            for s in range(base, base + K):
                trace.active[s].append((op.unit, "write1"))
                current[s] += op.current
            trace.set_bits += op.n_bits

        # FSM0: each write-0 burst holds its select line for one sub-slot
        # (Counter0 counts Treset).
        for op in schedule.write0_queue:
            trace.active[op.slot].append((op.unit, "write0"))
            current[op.slot] += op.current
            trace.reset_bits += op.n_bits

        trace.current = current[:n_slots]
        if n_slots and float(trace.current.max()) > self.power_budget + 1e-9:
            raise RuntimeError(
                "FSM execution exceeded the power budget: "
                f"{trace.current.max()} > {self.power_budget}"
            )

        # Completion: write units run back to back; an appended write-0
        # sub-slot adds t_set/K.  This is Equation 5 by construction, but
        # computed from the actual last active slot so tests can compare.
        last_active = -1
        for s in range(n_slots - 1, -1, -1):
            if trace.active[s]:
                last_active = s
                break
        trace.completion_ns = (last_active + 1) * self.t_set_ns / K if last_active >= 0 else 0.0
        return trace


def execute_schedule(
    schedule: TetrisSchedule, *, t_set_ns: float = 430.0, power_budget: float | None = None
) -> FSMTrace:
    """Convenience wrapper: execute with the schedule's own budget."""
    budget = schedule.power_budget if power_budget is None else power_budget
    return FSMExecutor(t_set_ns, budget).execute(schedule)
