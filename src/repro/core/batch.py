"""Vectorized Algorithm 2 over whole traces.

The full-system experiments (Figs 11-14) need the Tetris service time of
every write in a trace — hundreds of thousands of cache-line writes.
Running the scalar :class:`~repro.core.analysis.TetrisScheduler` per write
would put a Python loop on the hot path, so this module re-implements the
two first-fit-decreasing passes as a *column sweep*: the per-line data
units are sorted once (descending), then one loop over the at-most-8 unit
positions updates the bin state of **all** writes simultaneously with
NumPy ufuncs.  The result is bit-for-bit the same ``(result, subresult)``
pair the scalar scheduler produces (property-tested in
``tests/test_batch_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BatchPackResult", "pack_batch", "service_units_batch"]


@dataclass(frozen=True)
class BatchPackResult:
    """Per-write packing outcome for a batch of cache-line writes."""

    result: np.ndarray     # (W,) number of write units for write-1s
    subresult: np.ndarray  # (W,) extra sub-write-units for write-0s
    K: int

    def service_units(self) -> np.ndarray:
        """Equation 5 in units of ``t_set``: ``result + subresult/K``."""
        return self.result + self.subresult / self.K

    def service_ns(self, t_set_ns: float) -> np.ndarray:
        return self.service_units() * t_set_ns


def _ffd_pass(
    demand: np.ndarray, capacity: np.ndarray, budget: float
) -> tuple[np.ndarray, np.ndarray]:
    """Exact first-fit-decreasing, one column at a time across all rows.

    ``demand`` is (W, U), already sorted descending per row; zeros are
    skipped.  ``capacity`` is the (W, B) matrix of current already
    committed per bin (mutated in place).  Returns the per-row bin count
    and the per-row bin index chosen for every column (-1 where skipped).
    """
    W, U = demand.shape
    B = capacity.shape[1]
    nbins = np.zeros(W, dtype=np.int64)
    choice = np.full((W, U), -1, dtype=np.int64)
    cols = np.arange(B)
    for t in range(U):
        need = demand[:, t]
        active = need > 0
        if not active.any():
            break
        if float(need.max()) > budget:
            raise ValueError(
                f"burst current {need.max()} exceeds the power budget {budget}"
            )
        open_mask = cols[None, :] < nbins[:, None]
        fits = open_mask & (capacity + need[:, None] <= budget)
        has_fit = fits.any(axis=1) & active
        first = np.argmax(fits, axis=1)

        rows_fit = np.nonzero(has_fit)[0]
        capacity[rows_fit, first[rows_fit]] += need[rows_fit]
        choice[rows_fit, t] = first[rows_fit]

        rows_new = np.nonzero(active & ~has_fit)[0]
        if rows_new.size:
            if int(nbins[rows_new].max()) >= B:
                raise ValueError("bin matrix too small for this demand")
            capacity[rows_new, nbins[rows_new]] += need[rows_new]
            choice[rows_new, t] = nbins[rows_new]
            nbins[rows_new] += 1
    return nbins, choice


def _split_demand(counts: np.ndarray, budget: float, cost: float) -> np.ndarray:
    """Divide oversized bursts into budget-sized chunks (column-expand).

    Input (W, U) per-unit *cell counts*; output (W, U * C) current
    demands, where C = max chunks any burst needs.  The split is
    bit-integral, mirroring the scalar ``TetrisScheduler._chunks``:
    each chunk programs at most ``floor(budget / cost)`` whole cells, so
    the chunk bit counts sum exactly to the demand and no chunk claims
    fractional-cell capacity.  Zero columns are ignored by the packer.
    """
    peak = float(counts.max(initial=0.0)) * cost
    if peak <= budget:
        return counts * cost
    cells_per_chunk = int(budget // cost)
    if cells_per_chunk < 1:
        raise ValueError(f"power budget {budget} below one cell's current {cost}")
    C = int(np.ceil(float(counts.max(initial=0.0)) / cells_per_chunk))
    chunks = [
        np.clip(counts - c * cells_per_chunk, 0.0, cells_per_chunk)
        for c in range(C)
    ]
    return np.concatenate(chunks, axis=1) * cost


def pack_batch(
    n_set: np.ndarray,
    n_reset: np.ndarray,
    *,
    K: int = 8,
    L: float = 2.0,
    power_budget: float = 128.0,
    allow_split: bool = False,
) -> BatchPackResult:
    """Vectorized Algorithm 2: pack many cache-line writes at once.

    Parameters
    ----------
    n_set / n_reset:
        ``(n_writes, units_per_line)`` int matrices from the batch read
        stage.
    K, L, power_budget:
        The chip/bank operating point, as in
        :class:`~repro.core.analysis.TetrisScheduler`.
    allow_split:
        Divide bursts that exceed the budget into chunks (mobile
        division modes); without it such a burst raises ``ValueError``.
    """
    n_set = np.atleast_2d(np.asarray(n_set, dtype=np.int64))
    n_reset = np.atleast_2d(np.asarray(n_reset, dtype=np.int64))
    if n_set.shape != n_reset.shape:
        raise ValueError("n_set / n_reset shape mismatch")
    W, U = n_set.shape

    # ---- write-1 pass: FFD into whole write units --------------------
    in1 = n_set.astype(np.float64)
    if allow_split:
        in1 = _split_demand(n_set.astype(np.float64), power_budget, 1.0)
    in1 = np.sort(in1, axis=1)[:, ::-1]
    wu_used = np.zeros((W, in1.shape[1]), dtype=np.float64)
    result, _ = _ffd_pass(in1, wu_used, power_budget)

    # ---- write-0 pass: first-fit over sub-slots, then extras ---------
    in0 = n_reset.astype(np.float64) * L
    if allow_split:
        in0 = _split_demand(n_reset.astype(np.float64), power_budget, L)
    in0 = np.sort(in0, axis=1)[:, ::-1]
    U1 = wu_used.shape[1]
    U0 = in0.shape[1]
    # Residual occupancy of the result*K interspace sub-slots: slot s of
    # a row belongs to write unit s // K and is valid when s < result*K.
    occ = np.repeat(wu_used, K, axis=1)  # (W, U1*K)
    slot_idx = np.arange(U1 * K)
    valid = slot_idx[None, :] < (result[:, None] * K)

    extra = np.zeros((W, U0), dtype=np.float64)
    n_extra = np.zeros(W, dtype=np.int64)
    extra_cols = np.arange(U0)
    for t in range(U0):
        need = in0[:, t]
        active = need > 0
        if not active.any():
            break
        if float(need.max()) > power_budget:
            raise ValueError(
                f"burst current {need.max()} exceeds the power budget {power_budget}"
            )
        fits_main = valid & (occ + need[:, None] <= power_budget)
        has_main = fits_main.any(axis=1) & active
        first_main = np.argmax(fits_main, axis=1)
        rows_main = np.nonzero(has_main)[0]
        occ[rows_main, first_main[rows_main]] += need[rows_main]

        rest = active & ~has_main
        if rest.any():
            fits_extra = (extra_cols[None, :] < n_extra[:, None]) & (
                extra + need[:, None] <= power_budget
            )
            has_extra = fits_extra.any(axis=1) & rest
            first_extra = np.argmax(fits_extra, axis=1)
            rows_extra = np.nonzero(has_extra)[0]
            extra[rows_extra, first_extra[rows_extra]] += need[rows_extra]

            rows_new = np.nonzero(rest & ~has_extra)[0]
            if rows_new.size:
                extra[rows_new, n_extra[rows_new]] += need[rows_new]
                n_extra[rows_new] += 1

    return BatchPackResult(result=result, subresult=n_extra, K=K)


def service_units_batch(
    n_set: np.ndarray,
    n_reset: np.ndarray,
    *,
    K: int = 8,
    L: float = 2.0,
    power_budget: float = 128.0,
) -> np.ndarray:
    """Shortcut returning only Equation 5's per-write unit counts."""
    return pack_batch(
        n_set, n_reset, K=K, L=L, power_budget=power_budget
    ).service_units()
