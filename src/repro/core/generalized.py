"""Generalized Tetris scheduling over arbitrary burst classes.

Algorithm 2 hard-codes two burst classes — write-1 (duration ``K``
sub-slots, 1 current unit per cell) and write-0 (duration 1, ``L`` per
cell).  MLC PCM breaks that dichotomy: programming a 2-bit cell to one of
four levels takes a level-dependent number of program-and-verify
iterations at a level-dependent current.  This module generalizes the
analysis stage to any set of :class:`BurstClass` es:

* bursts are sorted longest-duration first, then highest-current first
  (the Tetris intuition: lay the long pieces, fill gaps with short ones);
* each burst greedily takes the **earliest offset** on the sub-slot
  timeline where every sub-slot it spans has headroom;
* completion is the last occupied sub-slot.

For SLC demands this relaxes Algorithm 2's write-unit alignment (a
write-1 may start mid-unit), so its completion time is a lower-bound-
style comparison point for the aligned hardware scheduler; the property
tests pin the invariants (budget, coverage) and the relationship to
Algorithm 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["BurstClass", "GeneralizedSchedule", "GeneralizedScheduler", "PlacedBurst"]


@dataclass(frozen=True)
class BurstClass:
    """One kind of cell program.

    ``duration_subslots`` — how many sub-slots the burst holds its cells'
    current; ``current_per_cell`` — instantaneous draw per cell in SET
    units.  SLC: ``write1 = BurstClass("write1", K, 1.0)``,
    ``write0 = BurstClass("write0", 1, L)``.
    """

    name: str
    duration_subslots: int
    current_per_cell: float

    def __post_init__(self) -> None:
        if self.duration_subslots < 1:
            raise ValueError("burst duration must be >= 1 sub-slot")
        if self.current_per_cell <= 0:
            raise ValueError("burst current must be positive")


@dataclass(frozen=True)
class PlacedBurst:
    """A scheduled burst: which unit, which class, where on the timeline."""

    unit: int
    burst_class: BurstClass
    start_subslot: int
    n_cells: int

    @property
    def current(self) -> float:
        return self.n_cells * self.burst_class.current_per_cell

    @property
    def end_subslot(self) -> int:
        return self.start_subslot + self.burst_class.duration_subslots


@dataclass
class GeneralizedSchedule:
    """Outcome of a generalized packing run."""

    sub_slot_ns: float
    power_budget: float
    bursts: list[PlacedBurst] = field(default_factory=list)
    total_subslots: int = 0

    def completion_ns(self) -> float:
        return self.total_subslots * self.sub_slot_ns

    def occupancy(self) -> np.ndarray:
        occ = np.zeros(max(self.total_subslots, 1), dtype=np.float64)
        for b in self.bursts:
            occ[b.start_subslot : b.end_subslot] += b.current
        return occ[: self.total_subslots]

    def validate(self) -> None:
        occ = self.occupancy()
        assert occ.size == 0 or occ.max() <= self.power_budget + 1e-9, (
            f"budget exceeded: {occ.max()} > {self.power_budget}"
        )
        for b in self.bursts:
            assert b.end_subslot <= self.total_subslots


class GeneralizedScheduler:
    """Earliest-fit packing of heterogeneous bursts under one budget."""

    def __init__(self, power_budget: float, sub_slot_ns: float) -> None:
        if power_budget <= 0 or sub_slot_ns <= 0:
            raise ValueError("budget and sub-slot duration must be positive")
        self.power_budget = float(power_budget)
        self.sub_slot_ns = float(sub_slot_ns)

    def schedule(
        self, demands: dict[BurstClass, np.ndarray]
    ) -> GeneralizedSchedule:
        """Pack per-unit cell counts for each burst class.

        ``demands[cls][i]`` is the number of cells of data unit ``i``
        programmed by a burst of class ``cls``.  Oversized bursts
        (current above the budget) are split into budget-sized chunks.
        """
        sched = GeneralizedSchedule(
            sub_slot_ns=self.sub_slot_ns, power_budget=self.power_budget
        )
        items: list[tuple[int, float, BurstClass, int, int]] = []
        for cls, counts in demands.items():
            counts = np.atleast_1d(np.asarray(counts, dtype=np.int64))
            for unit, n in enumerate(counts):
                n = int(n)
                while n > 0:
                    max_cells = int(self.power_budget // cls.current_per_cell)
                    if max_cells < 1:
                        raise ValueError(
                            f"budget below one {cls.name} cell's current"
                        )
                    chunk = min(n, max_cells)
                    items.append(
                        (cls.duration_subslots, chunk * cls.current_per_cell,
                         cls, unit, chunk)
                    )
                    n -= chunk
        # Longest first, then most current — the Tetris ordering.
        items.sort(key=lambda it: (-it[0], -it[1]))

        occ = np.zeros(0, dtype=np.float64)
        for duration, current, cls, unit, cells in items:
            start = self._earliest_fit(occ, duration, current)
            end = start + duration
            if end > occ.size:
                occ = np.concatenate([occ, np.zeros(end - occ.size)])
            occ[start:end] += current
            sched.bursts.append(
                PlacedBurst(unit=unit, burst_class=cls,
                            start_subslot=start, n_cells=cells)
            )
        sched.total_subslots = occ.size
        sched.validate()
        return sched

    def _earliest_fit(
        self, occ: np.ndarray, duration: int, current: float
    ) -> int:
        budget = self.power_budget
        n = occ.size
        for start in range(n):
            end = min(start + duration, n)
            if np.all(occ[start:end] + current <= budget + 1e-12):
                return start
        return n
