"""Alternative packers: how good is Algorithm 2's greedy first-fit?

Algorithm 2 is first-fit-decreasing (FFD) in both passes.  This module
provides the comparison points for the optimality-gap ablation:

* :func:`best_fit_decreasing_bins` — BFD, the classic tighter greedy
  (place each burst in the *fullest* bin that still fits);
* :func:`optimal_bins` — exact minimal bin count by dynamic programming
  over subsets (8 data units -> 3^8 ≈ 6.6 k transitions per write, cheap
  enough to run over thousands of real writes);
* :func:`ffd_bins` — the write-1 pass of Algorithm 2 in isolation, for a
  like-for-like comparison.

Classic bin-packing theory bounds FFD at 11/9·OPT + 6/9; for the paper's
workloads the write-1 demands are so far below the budget that FFD is
optimal on virtually every write — the bench quantifies exactly how
often (``benchmarks/bench_ablation_packers.py``).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ffd_bins",
    "best_fit_decreasing_bins",
    "optimal_bins",
    "worst_fit_decreasing_bins",
]


def _clean(demands, budget: float) -> list[float]:
    out = [float(d) for d in np.atleast_1d(np.asarray(demands, dtype=np.float64)) if d > 0]
    for d in out:
        if d > budget:
            raise ValueError(f"demand {d} exceeds budget {budget}")
    return out


def ffd_bins(demands, budget: float) -> int:
    """First-fit-decreasing bin count (Algorithm 2's write-1 pass)."""
    bins: list[float] = []
    for d in sorted(_clean(demands, budget), reverse=True):
        for i, used in enumerate(bins):
            if used + d <= budget:
                bins[i] = used + d
                break
        else:
            bins.append(d)
    return len(bins)


def best_fit_decreasing_bins(demands, budget: float) -> int:
    """Best-fit-decreasing: place each burst in the tightest fitting bin."""
    bins: list[float] = []
    for d in sorted(_clean(demands, budget), reverse=True):
        best, best_left = -1, None
        for i, used in enumerate(bins):
            left = budget - used - d
            if left >= 0 and (best_left is None or left < best_left):
                best, best_left = i, left
        if best >= 0:
            bins[best] += d
        else:
            bins.append(d)
    return len(bins)


def worst_fit_decreasing_bins(demands, budget: float) -> int:
    """Worst-fit-decreasing: place each burst in the emptiest fitting bin.

    Spreads load instead of concentrating it — the natural hardware
    alternative when the goal is headroom per write unit (e.g. to leave
    interspace for write-0s in *every* unit, not just the last)."""
    bins: list[float] = []
    for d in sorted(_clean(demands, budget), reverse=True):
        best, best_left = -1, -1.0
        for i, used in enumerate(bins):
            left = budget - used - d
            if left >= 0 and left > best_left:
                best, best_left = i, left
        if best >= 0:
            bins[best] += d
        else:
            bins.append(d)
    return len(bins)


def optimal_bins(demands, budget: float) -> int:
    """Exact minimal number of bins (subset DP, <= ~16 items).

    ``dp[mask]`` = (min bins, max residual capacity of the last open bin)
    over all packings of the subset ``mask``; items are added one at a
    time into the last open bin when they fit, or open a new bin.  This
    is the standard O(2^n * n) bin-packing DP — exact, and fast enough
    for per-write use at n = 8.
    """
    items = _clean(demands, budget)
    n = len(items)
    if n == 0:
        return 0
    if n > 16:
        raise ValueError("optimal_bins supports at most 16 items")

    full = (1 << n) - 1
    # dp[mask] = (bins_used, space_left_in_last_bin), lexicographically
    # minimized on bins then maximized on space.
    dp = [(n + 1, 0.0)] * (full + 1)
    dp[0] = (0, 0.0)
    for mask in range(full + 1):
        bins_used, space = dp[mask]
        if bins_used > n:
            continue
        for i in range(n):
            if mask & (1 << i):
                continue
            nxt = mask | (1 << i)
            if items[i] <= space + 1e-12:
                cand = (bins_used, space - items[i])
            else:
                cand = (bins_used + 1, budget - items[i])
            cur = dp[nxt]
            if cand[0] < cur[0] or (cand[0] == cur[0] and cand[1] > cur[1]):
                dp[nxt] = cand
    return dp[full][0]
