"""Stage 1 of Tetris Write: read-before-write, flip decision, 0/1 counting.

Implements the paper's Algorithm 1.  The stored image of a data unit is a
pair ``(D', F')`` of physical cell contents and a flip tag; the logical
value is ``D' ^ (F' ? ~0 : 0)``.  Given new logical data ``D`` we choose
the physical encoding ``(D, 0)`` or ``(~D, 1)`` that minimizes the Hamming
distance to the stored physical image — i.e. the number of cells that must
actually be programmed.  After the choice, ``N1`` counts cells going
0 -> 1 (SET / write-1) and ``N0`` counts cells going 1 -> 0 (RESET /
write-0); those two vectors are all the analysis stage needs.

Everything is vectorized over the data units of a cache line (and, for the
trace pre-computation path, over *all* writes of a trace at once).  A
pure-Python scalar reference path — bit-identical, selected process-wide
by ``REPRO_NO_VECTOR=1`` — backs every vectorized kernel (see
:mod:`repro.util.kernelstats`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util import kernelstats
from repro.util.bits import popcount64

__all__ = ["ReadStageResult", "read_stage", "read_stage_batch", "cost_aware_flip"]

_U64 = np.uint64
_ONES = np.uint64(0xFFFF_FFFF_FFFF_FFFF)


@dataclass(frozen=True)
class ReadStageResult:
    """Per-data-unit outcome of the read stage.

    Attributes
    ----------
    flip:
        Boolean per unit — whether the new data is stored inverted.
    physical:
        The uint64 cell image that will be stored (already inverted where
        ``flip`` is set).
    n_set:
        Number of write-1 (SET) cell programs required per unit.
    n_reset:
        Number of write-0 (RESET) cell programs required per unit.
    """

    flip: np.ndarray
    physical: np.ndarray
    n_set: np.ndarray
    n_reset: np.ndarray

    @property
    def total_bit_writes(self) -> int:
        """Total programmed cells across the line (Fig 3's quantity)."""
        return int(self.n_set.sum() + self.n_reset.sum())


def read_stage(
    old_physical: np.ndarray,
    old_flip: np.ndarray,
    new_logical: np.ndarray,
    *,
    unit_bits: int = 64,
    count_flip_bit: bool = False,
) -> ReadStageResult:
    """Run Algorithm 1 over the data units of one cache line.

    Parameters
    ----------
    old_physical:
        Stored cell contents per unit (uint64 array).
    old_flip:
        Stored flip tags per unit (bool array).
    new_logical:
        New logical data per unit (uint64 array).
    unit_bits:
        Width of a data unit; the flip threshold is ``unit_bits / 2``.
    count_flip_bit:
        When true, a change of the flip-tag cell itself is charged as one
        extra RESET/SET.  The paper ignores this cost; we keep it as an
        option for sensitivity analysis.

    Notes
    -----
    The flip rule follows Algorithm 1 line 3: flip iff the Hamming
    distance between ``{D, 0}`` and ``{D', F'}`` exceeds ``N/2`` — i.e.
    the *straight* encoding is compared against the threshold and the
    flipped encoding is used when straight would program more than half
    the cells.  This guarantees at most ``N/2`` (+ flip bit) programs.
    """
    old_physical = np.atleast_1d(np.asarray(old_physical, dtype=_U64))
    new_logical = np.atleast_1d(np.asarray(new_logical, dtype=_U64))
    old_flip = np.atleast_1d(np.asarray(old_flip, dtype=bool))
    if not (old_physical.shape == new_logical.shape == old_flip.shape):
        raise ValueError("old/new/flip arrays must have matching shapes")

    if kernelstats.use_scalar():
        kernelstats.record("scalar")
        return _read_stage_scalar(
            old_physical,
            old_flip,
            new_logical,
            unit_bits=unit_bits,
            count_flip_bit=count_flip_bit,
        )
    kernelstats.record("vectorized")

    mask = _ONES if unit_bits == 64 else _U64((1 << unit_bits) - 1)

    straight = new_logical & mask  # encode as (D, 0)
    flipped = ~new_logical & mask  # encode as (~D, 1)
    old_physical = old_physical & mask

    # Algorithm 1 includes the flip-tag cell in the Hamming comparison:
    # {D, 0} vs {D', F'} differs in the tag iff F' = 1.  Because the
    # straight and flipped encodings differ in every one of the N+1 cells,
    # dist_straight + dist_flipped = N + 1, so flipping whenever
    # dist_straight exceeds (N+1)/2 always picks the cheaper encoding.
    dist_straight = (
        np.bitwise_count(old_physical ^ straight).astype(np.int64)
        + old_flip.astype(np.int64)
    )

    flip = dist_straight > (unit_bits + 1) // 2
    physical = np.where(flip, flipped, straight)

    n_set = np.bitwise_count(~old_physical & physical & mask).astype(np.int64)
    n_reset = np.bitwise_count(old_physical & ~physical).astype(np.int64)

    if count_flip_bit:
        tag_changed = flip != old_flip
        # Programming the tag cell to 1 is a SET, to 0 a RESET.
        n_set = n_set + (tag_changed & flip).astype(np.int64)
        n_reset = n_reset + (tag_changed & ~flip).astype(np.int64)

    # Invariant check (cheap): post-flip program count never exceeds half
    # the unit width plus the tag cell.
    assert int((n_set + n_reset).max(initial=0)) <= unit_bits // 2 + 1, (
        "flip rule violated: more than half the cells would be programmed"
    )
    return ReadStageResult(flip=flip, physical=physical, n_set=n_set, n_reset=n_reset)


def _read_stage_scalar(
    old_physical: np.ndarray,
    old_flip: np.ndarray,
    new_logical: np.ndarray,
    *,
    unit_bits: int,
    count_flip_bit: bool,
) -> ReadStageResult:
    """Pure-Python Algorithm 1 — the vectorized kernel's reference.

    Operates on builtin ints per data unit; must stay bit-identical to
    the ufunc path (property-tested in ``tests/test_fastpath.py``).
    """
    mask = (1 << unit_bits) - 1
    threshold = (unit_bits + 1) // 2
    n = old_physical.shape[0]
    flip = np.zeros(n, dtype=bool)
    physical = np.zeros(n, dtype=_U64)
    n_set = np.zeros(n, dtype=np.int64)
    n_reset = np.zeros(n, dtype=np.int64)
    for i in range(n):
        old = int(old_physical[i]) & mask
        straight = int(new_logical[i]) & mask
        flipped = straight ^ mask
        tag = bool(old_flip[i])
        dist_straight = (old ^ straight).bit_count() + int(tag)
        f = dist_straight > threshold
        phys = flipped if f else straight
        diff = old ^ phys
        ns = (diff & phys).bit_count()
        nr = (diff & old).bit_count()
        if count_flip_bit and f != tag:
            if f:
                ns += 1
            else:
                nr += 1
        flip[i] = f
        physical[i] = phys
        n_set[i] = ns
        n_reset[i] = nr
    assert int((n_set + n_reset).max(initial=0)) <= unit_bits // 2 + 1, (
        "flip rule violated: more than half the cells would be programmed"
    )
    return ReadStageResult(flip=flip, physical=physical, n_set=n_set, n_reset=n_reset)


def read_stage_batch(
    old_physical: np.ndarray,
    old_flip: np.ndarray,
    new_logical: np.ndarray,
    *,
    unit_bits: int = 64,
) -> ReadStageResult:
    """Vectorized read stage over a whole trace: shape (n_writes, units).

    Semantically identical to calling :func:`read_stage` per row, but one
    set of ufunc passes over the full payload matrix.  Used by the trace
    pre-computation path that turns a workload trace into per-write
    service times before the discrete-event simulation starts.
    """
    old_physical = np.asarray(old_physical, dtype=_U64)
    new_logical = np.asarray(new_logical, dtype=_U64)
    old_flip = np.asarray(old_flip, dtype=bool)
    if old_physical.ndim != 2:
        raise ValueError("batch read stage expects (n_writes, units) matrices")

    if kernelstats.use_scalar():
        kernelstats.record("scalar")
        rows = [
            _read_stage_scalar(
                old_physical[w],
                old_flip[w],
                new_logical[w],
                unit_bits=unit_bits,
                count_flip_bit=False,
            )
            for w in range(old_physical.shape[0])
        ]
        shape = old_physical.shape
        return ReadStageResult(
            flip=np.array([r.flip for r in rows], dtype=bool).reshape(shape),
            physical=np.array([r.physical for r in rows], dtype=_U64).reshape(shape),
            n_set=np.array([r.n_set for r in rows], dtype=np.int64).reshape(shape),
            n_reset=np.array([r.n_reset for r in rows], dtype=np.int64).reshape(shape),
        )
    kernelstats.record("vectorized")

    mask = _ONES if unit_bits == 64 else _U64((1 << unit_bits) - 1)
    straight = new_logical & mask
    flipped = ~new_logical & mask
    old_physical = old_physical & mask

    dist_straight = np.bitwise_count(old_physical ^ straight).astype(np.int64)
    dist_straight += old_flip

    flip = dist_straight > (unit_bits + 1) // 2
    physical = np.where(flip, flipped, straight)
    n_set = np.bitwise_count(~old_physical & physical & mask).astype(np.int64)
    n_reset = np.bitwise_count(old_physical & ~physical).astype(np.int64)
    return ReadStageResult(flip=flip, physical=physical, n_set=n_set, n_reset=n_reset)


def popcount_line(units: np.ndarray) -> int:
    """Convenience: total 1-bits across a line's data units."""
    if kernelstats.use_scalar():
        kernelstats.record("scalar")
        flat = np.atleast_1d(np.asarray(units, dtype=_U64))
        return sum(int(u).bit_count() for u in flat)
    kernelstats.record("vectorized")
    return int(np.asarray(popcount64(units)).sum())


def cost_aware_flip(
    old_physical: np.ndarray,
    old_flip: np.ndarray,
    new_logical: np.ndarray,
    *,
    set_cost: float = 430.0,
    reset_cost: float = 106.0,
    unit_bits: int = 64,
    max_programs: int | None = None,
    charge_tag: bool = True,
) -> ReadStageResult:
    """CAFO-style flip (Maddah et al., HPCA 2015 — the paper's ref [22]).

    Plain Flip-N-Write minimizes the *count* of programmed cells; with
    asymmetric per-cell costs that is not the cheapest encoding — a SET
    costs ~4x a RESET in energy at the paper's operating point.  This
    variant picks, per unit, the encoding minimizing
    ``set_cost * n_set + reset_cost * n_reset`` (ties go to the straight
    encoding).  With equal costs it reduces to the standard flip rule up
    to tie handling.

    ``max_programs`` (typically ``unit_bits // 2``) keeps schemes whose
    *timing/power guarantee* rests on the count bound safe: an encoding
    programming more cells than the bound is infeasible even when it is
    energy-cheaper, because cheap RESETs still draw double current.
    With the bound set, exactly one encoding can exceed it (the two
    program counts sum to ``unit_bits + 1``), so a feasible choice
    always exists.

    ``charge_tag=False`` drops the flip-tag program from the objective
    (the WIRE encoding's rule: the flag cell lives in a cheap side
    structure, so only data-cell transitions are priced).  The reported
    ``n_set`` / ``n_reset`` never include the tag either way — that is
    :func:`read_stage`'s ``count_flip_bit`` knob.

    Returns the same :class:`ReadStageResult` shape as
    :func:`read_stage`, so it drops into any flip-family scheme.
    """
    old_physical = np.atleast_1d(np.asarray(old_physical, dtype=_U64))
    new_logical = np.atleast_1d(np.asarray(new_logical, dtype=_U64))
    old_flip = np.atleast_1d(np.asarray(old_flip, dtype=bool))
    mask = _ONES if unit_bits == 64 else _U64((1 << unit_bits) - 1)

    straight = new_logical & mask
    flipped = ~new_logical & mask
    old_physical = old_physical & mask

    def cost_of(candidate: np.ndarray, tag: np.ndarray) -> np.ndarray:
        n_set = np.bitwise_count(~old_physical & candidate & mask)
        n_reset = np.bitwise_count(old_physical & ~candidate)
        data_cost = n_set * set_cost + n_reset * reset_cost
        if not charge_tag:
            return data_cost
        tag_changed = tag != old_flip
        tag_cost = np.where(
            tag_changed, np.where(tag, set_cost, reset_cost), 0.0
        )
        return data_cost + tag_cost

    ones = np.ones(straight.shape, dtype=bool)
    cost_straight = cost_of(straight, ~ones)
    cost_flipped = cost_of(flipped, ones)

    flip = cost_flipped < cost_straight
    if max_programs is not None:
        progs_straight = np.bitwise_count(old_physical ^ straight).astype(np.int64)
        progs_flipped = np.bitwise_count(old_physical ^ flipped).astype(np.int64)
        # Override the cost choice where it breaks the count bound.
        flip = np.where(progs_flipped > max_programs, False, flip)
        flip = np.where(progs_straight > max_programs, True, flip)
    physical = np.where(flip, flipped, straight)
    n_set = np.bitwise_count(~old_physical & physical & mask).astype(np.int64)
    n_reset = np.bitwise_count(old_physical & ~physical).astype(np.int64)
    return ReadStageResult(flip=flip, physical=physical, n_set=n_set, n_reset=n_reset)
