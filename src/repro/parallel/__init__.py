"""Parallel experiment infrastructure: supervised fan-out + durability.

Public surface:

* :class:`~repro.parallel.engine.SweepEngine` — fan the (scheme x
  workload x seed x config-variant) grid over supervised worker
  processes, with deterministic seeding, structured failure capture,
  and checkpoint/resume.
* :class:`~repro.parallel.supervisor.WorkerSupervisor` — the supervised
  pool itself: per-task deadlines, worker-death detection, bounded
  deterministic retry, quarantine, and serial fallback
  (``docs/RESILIENCE.md``).
* :class:`~repro.parallel.journal.SweepJournal` — append-only fsync'd
  completion log enabling ``run(resume=True)`` after a crash.
* :func:`~repro.parallel.engine.parallel_map` — ordered fail-fast
  supervised map for the smaller analytical sweeps.
* :class:`~repro.parallel.resultcache.ResultCache` — content-addressed
  on-disk store keyed by (config, trace, scheme, code-version salt),
  with per-entry digests and quarantine of corrupt entries.
"""

from repro.parallel.engine import (
    CellError,
    CellOutcome,
    SweepCell,
    SweepCellError,
    SweepEngine,
    SweepResult,
    SweepStats,
    default_workers,
    derive_cell_seeds,
    parallel_map,
)
from repro.parallel.journal import (
    StaleJournalError,
    SweepJournal,
    journal_cell_key,
)
from repro.parallel.resultcache import (
    CacheStats,
    ResultCache,
    cache_disabled_by_env,
    code_salt,
    default_cache_dir,
    row_digest,
)
from repro.parallel.supervisor import (
    RetryPolicy,
    TaskFailure,
    TaskReport,
    WorkerSupervisor,
    WorkerTaskError,
    retry_jitter,
)

__all__ = [
    "CacheStats",
    "CellError",
    "CellOutcome",
    "ResultCache",
    "StaleJournalError",
    "RetryPolicy",
    "SweepCell",
    "SweepCellError",
    "SweepEngine",
    "SweepJournal",
    "SweepResult",
    "SweepStats",
    "TaskFailure",
    "TaskReport",
    "WorkerSupervisor",
    "WorkerTaskError",
    "cache_disabled_by_env",
    "code_salt",
    "default_cache_dir",
    "default_workers",
    "derive_cell_seeds",
    "journal_cell_key",
    "parallel_map",
    "retry_jitter",
    "row_digest",
]
