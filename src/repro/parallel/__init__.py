"""Parallel experiment infrastructure: sweep fan-out + result caching.

Public surface:

* :class:`~repro.parallel.engine.SweepEngine` — fan the (scheme x
  workload x seed x config-variant) grid over a process pool, with
  deterministic seeding and structured failure capture.
* :func:`~repro.parallel.engine.parallel_map` — ordered fail-fast pool
  map for the smaller analytical sweeps.
* :class:`~repro.parallel.resultcache.ResultCache` — content-addressed
  on-disk store keyed by (config, trace, scheme, code-version salt).
"""

from repro.parallel.engine import (
    CellError,
    CellOutcome,
    SweepCell,
    SweepCellError,
    SweepEngine,
    SweepResult,
    SweepStats,
    default_workers,
    derive_cell_seeds,
    parallel_map,
)
from repro.parallel.resultcache import (
    CacheStats,
    ResultCache,
    cache_disabled_by_env,
    code_salt,
    default_cache_dir,
)

__all__ = [
    "CacheStats",
    "CellError",
    "CellOutcome",
    "ResultCache",
    "SweepCell",
    "SweepCellError",
    "SweepEngine",
    "SweepResult",
    "SweepStats",
    "cache_disabled_by_env",
    "code_salt",
    "default_cache_dir",
    "default_workers",
    "derive_cell_seeds",
    "parallel_map",
]
